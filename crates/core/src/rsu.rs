//! The cluster head (RSU) state machine: membership, detection, isolation.
//!
//! This is the trusted, semi-centric half of BlackDP (Section III-B). A
//! cluster head:
//!
//! * manages cluster membership (JREQ/JREP/leave, member and history
//!   tables);
//! * receives authenticated detection requests, deduplicates them in the
//!   verification table, and either probes a local suspect or forwards the
//!   request to the suspect's own cluster head;
//! * runs the two-probe fake-destination examination: `RREQ₁` with a
//!   disposable identity (any reply to a nonexistent destination is
//!   suspicious), then `RREQ₂` with a **higher** destination sequence
//!   number and a next-hop inquiry (a reply violates AODV's freshness rule
//!   and may disclose a cooperative teammate, which is then probed too);
//! * hands detection off to the next cluster head when the suspect moves;
//! * on confirmation, requests certificate revocation from the trusted
//!   authority, blacklists the attacker, and answers every reporter.

use std::collections::BTreeMap;

use blackdp_aodv::{Addr, Message as AodvMessage, Rrep, Rreq, SeqNo};
use blackdp_crypto::{PseudonymId, PublicKey, RevocationList, RevocationNotice, TaId};
use blackdp_mobility::ClusterId;
use blackdp_sim::{Duration, Time};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::config::BlackDpConfig;
use crate::table::{VerStatus, VerificationTable};
use crate::verifier::VerifyQueue;
use crate::wire::{
    addr_of, BlackDpMessage, DReq, DetectionHandoff, DetectionOutcome, DetectionResponse,
    SuspicionReason, Wire,
};

/// An instruction for the host embedding a [`ClusterHead`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChAction {
    /// Transmit over the radio to the node currently using address `to`.
    Radio {
        /// Destination protocol address.
        to: Addr,
        /// The packet.
        wire: Wire,
    },
    /// Broadcast over the radio to everyone in range.
    RadioBroadcast {
        /// The packet.
        wire: Wire,
    },
    /// Send to a peer cluster head over the wired backbone.
    WiredCh {
        /// The destination cluster.
        cluster: ClusterId,
        /// The message.
        msg: BlackDpMessage,
    },
    /// Send to a trusted authority over the wired backbone.
    WiredTa {
        /// The destination authority.
        ta: TaId,
        /// The message.
        msg: BlackDpMessage,
    },
    /// An observable protocol event (no transmission implied).
    Event(ChEvent),
}

/// Observable cluster-head events, used by scenarios for metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum ChEvent {
    /// A vehicle registered with this cluster.
    MemberJoined(PseudonymId),
    /// A vehicle deregistered (moved on).
    MemberLeft(PseudonymId),
    /// A join was refused (revoked or unverifiable certificate).
    JoinRejected(PseudonymId),
    /// A detection episode began against `suspect`.
    DetectionStarted {
        /// The suspect under examination.
        suspect: Addr,
    },
    /// A detection episode ended.
    DetectionConcluded {
        /// The suspect examined.
        suspect: Addr,
        /// The verdict.
        outcome: DetectionOutcome,
        /// Total detection packets spent across all involved RSUs
        /// (the quantity Figure 5 reports).
        packets: u32,
    },
    /// A revocation request was sent to the TA for `pseudonym`.
    IsolationRequested(PseudonymId),
    /// The cluster head rebooted: volatile tables were lost and a fresh
    /// membership epoch was announced (see [`ClusterHead::restart`]).
    Restarted,
    /// A revocation request unacknowledged by the TA was re-sent.
    RevocationRetried {
        /// The attacker whose revocation is still pending.
        suspect: PseudonymId,
        /// Which retry this was (1-based).
        attempt: u32,
    },
    /// A revocation request exhausted its retries without a TA answer;
    /// only the local (degraded-mode) blacklist entry isolates the
    /// attacker now.
    RevocationAbandoned(PseudonymId),
    /// A detection request named a suspect that has not re-registered
    /// since this CH rebooted; the request was parked for the
    /// post-restart grace window instead of being answered `SuspectGone`.
    DetectionDeferred {
        /// The suspect awaited.
        suspect: Addr,
    },
    /// A peer cluster head announced a fresh epoch (it rebooted), so a
    /// detection request previously forwarded there was sent again.
    ForwardReplayed {
        /// The suspect whose forwarded request was replayed.
        suspect: Addr,
        /// The rebooted peer.
        to: ClusterId,
    },
}

#[derive(Debug, Clone)]
struct DetectionState {
    suspect: Addr,
    disposable: Addr,
    fake_dest: Addr,
    stage: Stage,
    deadline: Time,
    retries_left: u32,
    packets: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    AwaitRrep1,
    /// `RREP₁` arrived; `RREQ₂` goes out after the RSU processing delay.
    PendingRreq2 {
        s1: SeqNo,
    },
    AwaitRrep2 {
        s1: SeqNo,
    },
    AwaitTeammate {
        teammate: Addr,
        s1: SeqNo,
    },
}

#[derive(Debug, Clone, Copy)]
struct MemberInfo {
    joined: Time,
}

/// A revocation request awaiting the TA's `Revoked` acknowledgement.
#[derive(Debug, Clone, Copy)]
struct PendingRevocation {
    next_retry: Time,
    attempts: u32,
}

/// A detection request naming a suspect that has not (re-)registered yet,
/// parked during the post-restart grace window.
#[derive(Debug, Clone, Copy)]
struct DeferredDreq {
    dreq: DReq,
    packets: u32,
    deadline: Time,
}

/// How many consecutive ticks a restarted cluster head repeats its
/// `Resync` broadcast (covers radio loss without a steady-state beacon).
const RESYNC_BROADCASTS: u32 = 3;

/// The RSU / cluster head protocol instance.
///
/// Sans-io: feed messages via [`handle_blackdp`](Self::handle_blackdp) and
/// [`on_probe_rrep`](Self::on_probe_rrep), pump [`tick`](Self::tick), and
/// execute the returned [`ChAction`]s.
#[derive(Debug)]
pub struct ClusterHead {
    cluster: ClusterId,
    addr: Addr,
    ta: TaId,
    ta_key: PublicKey,
    cluster_count: u32,
    cfg: BlackDpConfig,
    members: BTreeMap<PseudonymId, MemberInfo>,
    history: BTreeMap<PseudonymId, Time>,
    verification: VerificationTable,
    detections: BTreeMap<Addr, DetectionState>,
    blacklist: RevocationList,
    pending_revocations: BTreeMap<PseudonymId, PendingRevocation>,
    epoch: u64,
    resync_remaining: u32,
    /// Latest epoch heard from each peer CH; a new value means the peer
    /// rebooted and forwarded detections must be replayed.
    peer_epochs: BTreeMap<ClusterId, u64>,
    /// Detection requests parked until their suspect re-registers (or the
    /// post-restart grace expires).
    deferred_dreqs: BTreeMap<Addr, DeferredDreq>,
    /// When this CH last rebooted, if ever.
    restarted_at: Option<Time>,
    /// Batch-backed envelope verification with retained buffers; see
    /// [`VerifyQueue`].
    queue: VerifyQueue,
    rng: StdRng,
}

impl ClusterHead {
    /// Creates the cluster head for `cluster` (of `cluster_count` total),
    /// reporting to authority `ta` and validating certificates against
    /// `ta_key`.
    pub fn new(
        cluster: ClusterId,
        addr: Addr,
        ta: TaId,
        ta_key: PublicKey,
        cluster_count: u32,
        cfg: BlackDpConfig,
        seed: u64,
    ) -> Self {
        let max_entries = cfg.max_verification_entries;
        let mut rng = StdRng::seed_from_u64(seed);
        let epoch = rng.random();
        ClusterHead {
            cluster,
            addr,
            ta,
            ta_key,
            cluster_count,
            cfg,
            members: BTreeMap::new(),
            history: BTreeMap::new(),
            verification: VerificationTable::new(max_entries),
            detections: BTreeMap::new(),
            blacklist: RevocationList::new(),
            pending_revocations: BTreeMap::new(),
            epoch,
            resync_remaining: 0,
            peer_epochs: BTreeMap::new(),
            deferred_dreqs: BTreeMap::new(),
            restarted_at: None,
            queue: VerifyQueue::new(),
            rng,
        }
    }

    /// This cluster head's cluster.
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// This cluster head's protocol address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Registered members.
    pub fn members(&self) -> impl Iterator<Item = PseudonymId> + '_ {
        self.members.keys().copied()
    }

    /// True if `pseudonym` is currently a member.
    pub fn is_member(&self, pseudonym: PseudonymId) -> bool {
        self.members.contains_key(&pseudonym)
    }

    /// The revocation blacklist.
    pub fn blacklist(&self) -> &RevocationList {
        &self.blacklist
    }

    /// The current membership epoch (redrawn on every [`restart`](Self::restart)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Revocation requests still awaiting a TA acknowledgement.
    pub fn pending_revocation_count(&self) -> usize {
        self.pending_revocations.len()
    }

    /// The verification table (read access for tests and metrics).
    pub fn verification(&self) -> &VerificationTable {
        &self.verification
    }

    /// True if `orig` is the disposable identity of an active probe —
    /// the host uses this to route incoming RREPs into
    /// [`on_probe_rrep`](Self::on_probe_rrep).
    pub fn is_probe_orig(&self, orig: Addr) -> bool {
        self.detections.values().any(|d| d.disposable == orig)
    }

    /// Processes a BlackDP message (radio or wired).
    pub fn handle_blackdp(&mut self, from: Addr, msg: BlackDpMessage, now: Time) -> Vec<ChAction> {
        match msg {
            BlackDpMessage::Jreq(sealed) => {
                let pseudonym = sealed.signer();
                if self.blacklist.is_revoked(pseudonym)
                    || self.queue.verify_one(&sealed, self.ta_key, now).is_err()
                {
                    return vec![ChAction::Event(ChEvent::JoinRejected(pseudonym))];
                }
                self.history.remove(&pseudonym);
                self.members.insert(pseudonym, MemberInfo { joined: now });
                let blacklist: Vec<_> = self.blacklist.iter().copied().collect();
                let mut actions = vec![
                    ChAction::Radio {
                        to: addr_of(pseudonym),
                        wire: Wire::BlackDp(BlackDpMessage::Jrep {
                            cluster: self.cluster,
                            ch_addr: self.addr,
                            epoch: self.epoch,
                            blacklist,
                        }),
                    },
                    ChAction::Event(ChEvent::MemberJoined(pseudonym)),
                ];
                // A parked post-restart detection request waiting for this
                // suspect can run now.
                if let Some(d) = self.deferred_dreqs.remove(&addr_of(pseudonym)) {
                    actions.extend(self.start_detection(d.dreq.suspect, d.packets, now));
                }
                actions
            }
            BlackDpMessage::Leave { vehicle } => {
                let mut actions = Vec::new();
                if self.members.remove(&vehicle).is_some() {
                    self.history.insert(vehicle, now);
                    actions.push(ChAction::Event(ChEvent::MemberLeft(vehicle)));
                }
                // Suspect moving mid-detection: hand the episode to the
                // next cluster head (Figure 5's 8/9-packet scenarios).
                let suspect = addr_of(vehicle);
                if let Some(state) = self.detections.remove(&suspect) {
                    actions.extend(self.handoff_or_conclude(state, now));
                }
                actions
            }
            BlackDpMessage::DetectionRequest(sealed) => {
                if self.queue.verify_one(&sealed, self.ta_key, now).is_err() {
                    return Vec::new(); // unauthenticated report: ignored
                }
                // The vehicle's radio d_req is the episode's first packet.
                self.process_dreq(sealed.body, 1, now)
            }
            BlackDpMessage::ForwardedDetection {
                dreq,
                packets_so_far,
            } => self.process_dreq(dreq, packets_so_far, now),
            BlackDpMessage::Handoff(handoff) => self.resume_from_handoff(handoff, now),
            BlackDpMessage::Response(resp) => {
                // Verdict for one of our members: relay over the radio and
                // remember the outcome for dedup.
                self.verification.set_status(
                    resp.suspect,
                    VerStatus::Done {
                        outcome: resp.outcome,
                        at: now,
                    },
                );
                vec![ChAction::Radio {
                    to: addr_of(resp.reporter),
                    wire: Wire::BlackDp(BlackDpMessage::Response(resp)),
                }]
            }
            BlackDpMessage::Revoked(notice) => {
                // The authority's answer doubles as the acknowledgement for
                // a pending (possibly retried) revocation request.
                self.pending_revocations.remove(&notice.pseudonym);
                self.blacklist.insert(notice);
                vec![ChAction::RadioBroadcast {
                    wire: Wire::BlackDp(BlackDpMessage::BlacklistAdvisory {
                        notices: vec![notice],
                    }),
                }]
            }
            BlackDpMessage::RenewRequest {
                current,
                issuer,
                new_key,
                ..
            } => {
                // Relay to the issuing TA, stamping ourselves as the reply
                // path.
                vec![ChAction::WiredTa {
                    ta: issuer,
                    msg: BlackDpMessage::RenewRequest {
                        current,
                        issuer,
                        new_key,
                        reply_cluster: self.cluster,
                    },
                }]
            }
            BlackDpMessage::RenewReply { current, cert } => {
                // Relay the verdict back to the vehicle (under its old
                // pseudonym address).
                vec![ChAction::Radio {
                    to: addr_of(current),
                    wire: Wire::BlackDp(BlackDpMessage::RenewReply { current, cert }),
                }]
            }
            BlackDpMessage::Resync { cluster, epoch, .. } => {
                if cluster == self.cluster {
                    return Vec::new(); // our own announcement echoed back
                }
                if self.peer_epochs.insert(cluster, epoch) == Some(epoch) {
                    return Vec::new(); // rebroadcast of an epoch already handled
                }
                // The peer rebooted and lost its volatile tables: any
                // detection we forwarded there died with it. Replay those
                // requests — the peer's verification table dedups any that
                // in fact survived, and its post-restart grace parks them
                // until the suspect re-registers.
                type ReplayEntry = (Addr, Option<ClusterId>, Vec<(PseudonymId, ClusterId)>);
                let forwarded: Vec<ReplayEntry> = self
                    .verification
                    .iter()
                    .filter(|e| matches!(e.status, VerStatus::Forwarded { to } if to == cluster))
                    .map(|e| (e.suspect, e.suspect_cluster, e.reporters.clone()))
                    .collect();
                let mut actions = Vec::new();
                for (suspect, suspect_cluster, reporters) in forwarded {
                    let Some(&(reporter, reporter_cluster)) = reporters.first() else {
                        continue;
                    };
                    actions.push(ChAction::Event(ChEvent::ForwardReplayed {
                        suspect,
                        to: cluster,
                    }));
                    actions.push(ChAction::WiredCh {
                        cluster,
                        msg: BlackDpMessage::ForwardedDetection {
                            dreq: DReq {
                                reporter,
                                reporter_cluster,
                                suspect,
                                suspect_cluster,
                                // The original reason died with the peer;
                                // the ladder it triggers is the same.
                                reason: SuspicionReason::NoHelloResponse,
                            },
                            packets_so_far: 1, // the replay itself
                        },
                    });
                }
                actions
            }
            // Messages cluster heads never consume.
            BlackDpMessage::Jrep { .. }
            | BlackDpMessage::HelloProbe(_)
            | BlackDpMessage::HelloReply(_)
            | BlackDpMessage::RevocationRequest { .. }
            | BlackDpMessage::PauseRenewal { .. }
            | BlackDpMessage::BlacklistAdvisory { .. } => {
                let _ = from;
                Vec::new()
            }
        }
    }

    /// Processes an AODV RREP whose originator is one of our disposable
    /// probe identities.
    pub fn on_probe_rrep(&mut self, from: Addr, rrep: &Rrep, now: Time) -> Vec<ChAction> {
        let Some(suspect) = self
            .detections
            .values()
            .find(|d| d.disposable == rrep.orig)
            .map(|d| d.suspect)
        else {
            return Vec::new();
        };
        let mut state = self.detections.remove(&suspect).expect("found above");
        let mut actions = Vec::new();
        match state.stage {
            Stage::PendingRreq2 { .. } => {
                // A duplicate RREP₁ while RREQ₂ is still being prepared:
                // ignore it.
                self.detections.insert(suspect, state);
            }
            Stage::AwaitRrep1 => {
                if from != state.suspect {
                    // Someone else answered a probe for a nonexistent
                    // destination — possible second attacker; out of scope
                    // for this episode.
                    self.detections.insert(suspect, state);
                    return Vec::new();
                }
                state.packets += 1; // RREP₁ received
                let s1 = rrep.dest_seq;
                // Defer RREQ₂ by the RSU processing delay; `tick` emits it.
                state.stage = Stage::PendingRreq2 { s1 };
                state.deadline = now + self.cfg.probe_processing_delay;
                self.detections.insert(suspect, state);
            }
            Stage::AwaitRrep2 { s1 } => {
                if from != state.suspect {
                    self.detections.insert(suspect, state);
                    return Vec::new();
                }
                state.packets += 1; // RREP₂ received
                if rrep.dest_seq > s1 {
                    // AODV violation confirmed: it cannot hold a route
                    // fresher than one that never existed.
                    match rrep.next_hop {
                        Some(teammate) if teammate != state.suspect => {
                            // Probe the disclosed teammate before the
                            // verdict (cooperative check).
                            let rreq3 = self.make_probe_rreq(
                                state.disposable,
                                state.fake_dest,
                                Some(s1 + 2),
                                false,
                            );
                            state.packets += 1;
                            state.stage = Stage::AwaitTeammate { teammate, s1 };
                            state.deadline = now + self.cfg.probe_rrep_timeout;
                            actions.push(ChAction::Radio {
                                to: teammate,
                                wire: Wire::Aodv(AodvMessage::Rreq(rreq3)),
                            });
                            self.detections.insert(suspect, state);
                        }
                        _ => {
                            actions.extend(self.conclude(
                                state,
                                DetectionOutcome::ConfirmedSingle,
                                now,
                            ));
                        }
                    }
                } else {
                    // It backed off to a plausible answer: not provably
                    // misbehaving.
                    actions.extend(self.conclude(state, DetectionOutcome::Unconfirmed, now));
                }
            }
            Stage::AwaitTeammate { teammate, .. } => {
                if from != teammate {
                    self.detections.insert(suspect, state);
                    return Vec::new();
                }
                state.packets += 1; // teammate's endorsement received
                actions.extend(self.conclude(
                    state,
                    DetectionOutcome::ConfirmedCooperative { teammate },
                    now,
                ));
            }
        }
        actions
    }

    /// Periodic maintenance: probe timeouts, TA-retry pumping, post-restart
    /// resync broadcasts, and blacklist expiry.
    pub fn tick(&mut self, now: Time) -> Vec<ChAction> {
        self.blacklist.purge_expired(now);
        let mut actions = Vec::new();
        if self.resync_remaining > 0 {
            self.resync_remaining -= 1;
            actions.push(self.resync_action());
        }
        self.pump_revocation_retries(now, &mut actions);
        // Parked post-restart requests whose suspect never re-registered.
        let expired: Vec<Addr> = self
            .deferred_dreqs
            .iter()
            .filter(|(_, d)| now >= d.deadline)
            .map(|(&a, _)| a)
            .collect();
        for suspect in expired {
            let d = self.deferred_dreqs.remove(&suspect).expect("just listed");
            actions.extend(self.respond_all(
                suspect,
                DetectionOutcome::SuspectGone,
                d.packets,
                now,
            ));
            actions.push(ChAction::Event(ChEvent::DetectionConcluded {
                suspect,
                outcome: DetectionOutcome::SuspectGone,
                packets: d.packets + 1,
            }));
        }
        let due: Vec<Addr> = self
            .detections
            .values()
            .filter(|d| now >= d.deadline)
            .map(|d| d.suspect)
            .collect();
        for suspect in due {
            let mut state = self.detections.remove(&suspect).expect("just listed");
            match state.stage {
                Stage::PendingRreq2 { s1 } => {
                    // RREQ₂: same fake destination, *higher* sequence
                    // demand, next-hop inquiry set (Section III-B.3).
                    // Saturating: an attacker advertising u32::MAX in
                    // RREP₁ must not panic the CH — the demand simply
                    // becomes unsatisfiable and the episode concludes
                    // Unconfirmed.
                    let rreq2 = self.make_probe_rreq(
                        state.disposable,
                        state.fake_dest,
                        Some(s1.saturating_add(1)),
                        true,
                    );
                    state.packets += 1;
                    state.stage = Stage::AwaitRrep2 { s1 };
                    state.deadline = now + self.cfg.probe_rrep_timeout;
                    actions.push(ChAction::Radio {
                        to: state.suspect,
                        wire: Wire::Aodv(AodvMessage::Rreq(rreq2)),
                    });
                    self.detections.insert(suspect, state);
                }
                Stage::AwaitRrep1 if state.retries_left > 0 => {
                    state.retries_left -= 1;
                    let rreq =
                        self.make_probe_rreq(state.disposable, state.fake_dest, Some(0), false);
                    state.packets += 1;
                    state.deadline = now + self.cfg.probe_rrep_timeout;
                    actions.push(ChAction::Radio {
                        to: state.suspect,
                        wire: Wire::Aodv(AodvMessage::Rreq(rreq)),
                    });
                    self.detections.insert(suspect, state);
                }
                Stage::AwaitTeammate { .. } => {
                    // The teammate stayed silent; the primary suspect is
                    // confirmed regardless.
                    actions.extend(self.conclude(state, DetectionOutcome::ConfirmedSingle, now));
                }
                _ => {
                    let outcome = if self.members.contains_key(&PseudonymId(suspect.0)) {
                        // Present but silent: acted legitimately; nothing
                        // provable (the attack was still prevented).
                        DetectionOutcome::Unconfirmed
                    } else {
                        DetectionOutcome::SuspectGone
                    };
                    actions.extend(self.conclude(state, outcome, now));
                }
            }
        }
        actions
    }

    fn process_dreq(&mut self, dreq: DReq, packets: u32, now: Time) -> Vec<ChAction> {
        // Dedup against the verification table first.
        if self.verification.get(dreq.suspect).is_some() && !self.cfg.dedup_detection_requests {
            // Ablation mode: treat every report as new work. The entry
            // still records the reporter so responses reach everyone.
            self.verification.record(
                dreq.suspect,
                dreq.suspect_cluster,
                dreq.reporter,
                dreq.reporter_cluster,
                now,
            );
            if self.detections.contains_key(&dreq.suspect) {
                // Restart the probe ladder from scratch — the redundant
                // work dedup would have saved.
                return self.start_detection(dreq.suspect, packets, now);
            }
        }
        if let Some(entry) = self.verification.get(dreq.suspect) {
            match entry.status {
                VerStatus::Done { outcome, .. } => {
                    // Cached verdict: answer immediately.
                    return self.respond_one(
                        dreq.reporter,
                        dreq.reporter_cluster,
                        dreq.suspect,
                        outcome,
                    );
                }
                VerStatus::Pending | VerStatus::Forwarded { .. } => {
                    self.verification.record(
                        dreq.suspect,
                        dreq.suspect_cluster,
                        dreq.reporter,
                        dreq.reporter_cluster,
                        now,
                    );
                    return Vec::new(); // redundant request suppressed
                }
            }
        }
        self.verification.record(
            dreq.suspect,
            dreq.suspect_cluster,
            dreq.reporter,
            dreq.reporter_cluster,
            now,
        );

        let suspect_pseudonym = PseudonymId(dreq.suspect.0);
        if self.members.contains_key(&suspect_pseudonym) {
            return self.start_detection(dreq.suspect, packets, now);
        }

        // Not ours: forward to the suspect's cluster head if known.
        if let Some(target) = dreq.suspect_cluster.filter(|&c| c != self.cluster) {
            self.verification
                .set_status(dreq.suspect, VerStatus::Forwarded { to: target });
            return vec![ChAction::WiredCh {
                cluster: target,
                msg: BlackDpMessage::ForwardedDetection {
                    dreq,
                    packets_so_far: packets + 1, // the forward itself
                },
            }];
        }

        // Freshly rebooted: the suspect may simply not have re-registered
        // yet. Park the request for the grace window instead of declaring
        // it gone — a re-join releases it, expiry concludes `SuspectGone`.
        let recovering = self
            .restarted_at
            .is_some_and(|t| now < t + self.cfg.post_restart_grace);
        if recovering && dreq.suspect_cluster.is_none_or(|c| c == self.cluster) {
            self.deferred_dreqs.entry(dreq.suspect).or_insert(DeferredDreq {
                dreq,
                packets,
                deadline: now + self.cfg.post_restart_grace,
            });
            return vec![ChAction::Event(ChEvent::DetectionDeferred {
                suspect: dreq.suspect,
            })];
        }

        // Unknown whereabouts (e.g. it already fled): answer SuspectGone.
        let mut actions =
            self.respond_all(dreq.suspect, DetectionOutcome::SuspectGone, packets, now);
        actions.push(ChAction::Event(ChEvent::DetectionConcluded {
            suspect: dreq.suspect,
            outcome: DetectionOutcome::SuspectGone,
            packets: packets + 1,
        }));
        actions
    }

    fn start_detection(&mut self, suspect: Addr, packets: u32, now: Time) -> Vec<ChAction> {
        let disposable = self.fresh_identity();
        let fake_dest = self.fresh_identity();
        let rreq1 = self.make_probe_rreq(disposable, fake_dest, Some(0), false);
        let state = DetectionState {
            suspect,
            disposable,
            fake_dest,
            stage: Stage::AwaitRrep1,
            deadline: now + self.cfg.probe_rrep_timeout,
            retries_left: self.cfg.probe_retries,
            packets: packets + 1, // RREQ₁
        };
        self.detections.insert(suspect, state);
        vec![
            ChAction::Event(ChEvent::DetectionStarted { suspect }),
            ChAction::Radio {
                to: suspect,
                wire: Wire::Aodv(AodvMessage::Rreq(rreq1)),
            },
        ]
    }

    fn resume_from_handoff(&mut self, handoff: DetectionHandoff, now: Time) -> Vec<ChAction> {
        self.verification
            .record_bulk(handoff.suspect, Some(self.cluster), &handoff.reporters, now);
        let disposable = self.fresh_identity();
        let fake_dest = self.fresh_identity();
        let (stage, rreq) = match handoff.rrep1_seq {
            Some(s1) => (
                Stage::AwaitRrep2 { s1 },
                // Saturating: the handoff's s1 arrives over the wire and
                // may be forged as u32::MAX; never panic on it.
                self.make_probe_rreq(disposable, fake_dest, Some(s1.saturating_add(1)), true),
            ),
            None => (
                Stage::AwaitRrep1,
                self.make_probe_rreq(disposable, fake_dest, Some(0), false),
            ),
        };
        let state = DetectionState {
            suspect: handoff.suspect,
            disposable,
            fake_dest,
            stage,
            deadline: now + self.cfg.probe_rrep_timeout,
            retries_left: self.cfg.probe_retries,
            packets: handoff.packets_so_far.saturating_add(1), // the probe just sent
        };
        let suspect = handoff.suspect;
        self.detections.insert(suspect, state);
        vec![
            ChAction::Event(ChEvent::DetectionStarted { suspect }),
            ChAction::Radio {
                to: suspect,
                wire: Wire::Aodv(AodvMessage::Rreq(rreq)),
            },
        ]
    }

    fn handoff_or_conclude(&mut self, state: DetectionState, now: Time) -> Vec<ChAction> {
        let next = ClusterId(self.cluster.0 + 1);
        if next.0 > self.cluster_count {
            // Leaving the last cluster means leaving the instrumented
            // highway entirely.
            return self.conclude(state, DetectionOutcome::SuspectGone, now);
        }
        let rrep1_seq = match state.stage {
            Stage::AwaitRrep1 => None,
            Stage::PendingRreq2 { s1 }
            | Stage::AwaitRrep2 { s1 }
            | Stage::AwaitTeammate { s1, .. } => Some(s1),
        };
        let reporters = self.verification.take_reporters(state.suspect);
        self.verification
            .set_status(state.suspect, VerStatus::Forwarded { to: next });
        vec![ChAction::WiredCh {
            cluster: next,
            msg: BlackDpMessage::Handoff(DetectionHandoff {
                suspect: state.suspect,
                rrep1_seq,
                reporters,
                packets_so_far: state.packets + 1, // the handoff message
            }),
        }]
    }

    fn conclude(
        &mut self,
        mut state: DetectionState,
        outcome: DetectionOutcome,
        now: Time,
    ) -> Vec<ChAction> {
        let suspect = state.suspect;
        let mut actions = Vec::new();

        // Answer every reporter (same-cluster: one radio packet;
        // cross-cluster: wired relay + the peer's radio leg).
        let reporters = self.verification.take_reporters(suspect);
        for (reporter, cluster) in reporters {
            let resp = DetectionResponse {
                suspect,
                outcome,
                reporter,
            };
            if cluster == self.cluster {
                state.packets += 1;
                actions.push(ChAction::Radio {
                    to: addr_of(reporter),
                    wire: Wire::BlackDp(BlackDpMessage::Response(resp)),
                });
            } else {
                state.packets += 2;
                actions.push(ChAction::WiredCh {
                    cluster,
                    msg: BlackDpMessage::Response(resp),
                });
            }
        }

        // Isolation phase for confirmed attackers.
        let isolate = |this: &mut Self, addr: Addr, actions: &mut Vec<ChAction>| {
            let pseudonym = PseudonymId(addr.0);
            this.members.remove(&pseudonym);
            // Track the request until the TA's `Revoked` answer lands: a TA
            // outage triggers bounded retries plus local degraded-mode
            // isolation (see `pump_revocation_retries`). A reachable TA
            // acknowledges within a couple of wired hops, well inside the
            // base delay, so the retry never fires in healthy runs.
            let jitter = this.retry_jitter();
            this.pending_revocations.insert(
                pseudonym,
                PendingRevocation {
                    next_retry: now + this.cfg.ta_retry_base + jitter,
                    attempts: 0,
                },
            );
            actions.push(ChAction::WiredTa {
                ta: this.ta,
                msg: BlackDpMessage::RevocationRequest {
                    suspect: pseudonym,
                    reporting_cluster: this.cluster,
                },
            });
            actions.push(ChAction::Event(ChEvent::IsolationRequested(pseudonym)));
        };
        match outcome {
            DetectionOutcome::ConfirmedSingle => isolate(self, suspect, &mut actions),
            DetectionOutcome::ConfirmedCooperative { teammate } => {
                isolate(self, suspect, &mut actions);
                isolate(self, teammate, &mut actions);
            }
            DetectionOutcome::Unconfirmed | DetectionOutcome::SuspectGone => {}
        }

        self.verification
            .set_status(suspect, VerStatus::Done { outcome, at: now });
        actions.push(ChAction::Event(ChEvent::DetectionConcluded {
            suspect,
            outcome,
            packets: state.packets,
        }));
        actions
    }

    fn respond_all(
        &mut self,
        suspect: Addr,
        outcome: DetectionOutcome,
        _packets: u32,
        now: Time,
    ) -> Vec<ChAction> {
        let reporters = self.verification.take_reporters(suspect);
        self.verification
            .set_status(suspect, VerStatus::Done { outcome, at: now });
        reporters
            .into_iter()
            .flat_map(|(p, c)| self.respond_one(p, c, suspect, outcome))
            .collect()
    }

    fn respond_one(
        &self,
        reporter: PseudonymId,
        reporter_cluster: ClusterId,
        suspect: Addr,
        outcome: DetectionOutcome,
    ) -> Vec<ChAction> {
        let resp = DetectionResponse {
            suspect,
            outcome,
            reporter,
        };
        if reporter_cluster == self.cluster {
            vec![ChAction::Radio {
                to: addr_of(reporter),
                wire: Wire::BlackDp(BlackDpMessage::Response(resp)),
            }]
        } else {
            vec![ChAction::WiredCh {
                cluster: reporter_cluster,
                msg: BlackDpMessage::Response(resp),
            }]
        }
    }

    /// Reboots the cluster head after a crash.
    ///
    /// Volatile state — member and history tables, the verification table,
    /// in-flight probe ladders, and the TA retry queue — is lost; key
    /// material, configuration, and the blacklist are modeled as persisted
    /// to flash. Every in-flight detection concludes `Unconfirmed` (a
    /// bookkeeping event only: a crashed CH cannot answer reporters, which
    /// re-report through their normal traffic path), and a fresh membership
    /// epoch is broadcast via `Resync` so surviving members re-register.
    ///
    /// For [`post_restart_grace`](BlackDpConfig::post_restart_grace) after
    /// `now`, detection requests naming suspects that have not
    /// re-registered yet are parked rather than answered `SuspectGone`.
    pub fn restart(&mut self, now: Time) -> Vec<ChAction> {
        let mut actions = vec![ChAction::Event(ChEvent::Restarted)];
        for state in std::mem::take(&mut self.detections).into_values() {
            actions.push(ChAction::Event(ChEvent::DetectionConcluded {
                suspect: state.suspect,
                outcome: DetectionOutcome::Unconfirmed,
                packets: state.packets,
            }));
        }
        self.members.clear();
        self.history.clear();
        self.verification = VerificationTable::new(self.cfg.max_verification_entries);
        self.pending_revocations.clear();
        self.peer_epochs.clear();
        self.deferred_dreqs.clear();
        self.restarted_at = Some(now);
        self.epoch = self.rng.random();
        self.resync_remaining = RESYNC_BROADCASTS;
        actions.push(self.resync_action());
        actions
    }

    fn resync_action(&self) -> ChAction {
        ChAction::RadioBroadcast {
            wire: Wire::BlackDp(BlackDpMessage::Resync {
                cluster: self.cluster,
                ch_addr: self.addr,
                epoch: self.epoch,
            }),
        }
    }

    /// Re-sends revocation requests the TA has not acknowledged, backing
    /// off exponentially, and engages degraded mode on the first retry:
    /// the CH fabricates a provisional blacklist notice and advises its
    /// members, so a confirmed attacker stays isolated locally while the
    /// authority backhaul is down.
    fn pump_revocation_retries(&mut self, now: Time, actions: &mut Vec<ChAction>) {
        let due: Vec<PseudonymId> = self
            .pending_revocations
            .iter()
            .filter(|(_, p)| now >= p.next_retry)
            .map(|(s, _)| *s)
            .collect();
        for suspect in due {
            let attempts = self.pending_revocations[&suspect].attempts;
            if attempts >= self.cfg.ta_retry_max_attempts {
                self.pending_revocations.remove(&suspect);
                actions.push(ChAction::Event(ChEvent::RevocationAbandoned(suspect)));
                continue;
            }
            let attempt = attempts + 1;
            if attempt == 1 {
                let notice = RevocationNotice {
                    pseudonym: suspect,
                    serial: 0, // provisional; a real TA notice supersedes it
                    expires: now + self.cfg.cert_validity,
                };
                self.blacklist.insert(notice);
                actions.push(ChAction::RadioBroadcast {
                    wire: Wire::BlackDp(BlackDpMessage::BlacklistAdvisory {
                        notices: vec![notice],
                    }),
                });
            }
            let gap = Duration::from_micros(
                self.cfg
                    .ta_retry_base
                    .as_micros()
                    .saturating_mul(1u64 << attempt.min(10)),
            );
            let jitter = self.retry_jitter();
            if let Some(p) = self.pending_revocations.get_mut(&suspect) {
                p.attempts = attempt;
                p.next_retry = now + gap + jitter;
            }
            actions.push(ChAction::WiredTa {
                ta: self.ta,
                msg: BlackDpMessage::RevocationRequest {
                    suspect,
                    reporting_cluster: self.cluster,
                },
            });
            actions.push(ChAction::Event(ChEvent::RevocationRetried { suspect, attempt }));
        }
    }

    fn retry_jitter(&mut self) -> Duration {
        let max = self.cfg.ta_retry_jitter.as_micros();
        if max == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.rng.random_range(0..=max))
    }

    fn make_probe_rreq(
        &mut self,
        disposable: Addr,
        fake_dest: Addr,
        dest_seq: Option<SeqNo>,
        next_hop_inquiry: bool,
    ) -> Rreq {
        Rreq {
            rreq_id: self.rng.random(),
            dest: fake_dest,
            dest_seq,
            orig: disposable,
            orig_seq: 1,
            hop_count: 0,
            // TTL 1: honest receivers may reflood once at most, keeping the
            // probe from polluting the network.
            ttl: 1,
            next_hop_inquiry,
        }
    }

    /// Draws a fresh random identity never used by real members
    /// (Section III-B: "generating a disposable identity that is used to
    /// fool the attacker").
    fn fresh_identity(&mut self) -> Addr {
        Addr(self.rng.random::<u64>() | (1 << 63))
    }

    /// Time the member joined, if registered (test/metrics helper).
    pub fn member_since(&self, pseudonym: PseudonymId) -> Option<Time> {
        self.members.get(&pseudonym).map(|m| m.joined)
    }

    /// A storage snapshot: `(members, history, verification entries,
    /// blacklist notices, active detections)` — the per-RSU footprint the
    /// paper's future work wants reduced.
    pub fn storage_summary(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.members.len(),
            self.history.len(),
            self.verification.len(),
            self.blacklist.len(),
            self.detections.len(),
        )
    }

    /// True if `pseudonym` recently left this cluster.
    pub fn in_history(&self, pseudonym: PseudonymId) -> bool {
        self.history.contains_key(&pseudonym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{JoinBody, Sealed, SuspicionReason};
    use blackdp_crypto::{Certificate, Keypair, LongTermId, TrustedAuthority};
    use blackdp_sim::Duration;

    struct Fixture {
        rng: StdRng,
        ta: TrustedAuthority,
        ch: ClusterHead,
    }

    fn fixture() -> Fixture {
        let mut rng = StdRng::seed_from_u64(21);
        let ta = TrustedAuthority::new(TaId(1), &mut rng);
        let ch = ClusterHead::new(
            ClusterId(2),
            Addr(9_000_002),
            TaId(1),
            ta.public_key(),
            10,
            BlackDpConfig::default(),
            77,
        );
        Fixture { rng, ta, ch }
    }

    fn enroll(fx: &mut Fixture, lt: u64) -> (Keypair, Certificate) {
        let keys = Keypair::generate(&mut fx.rng);
        let cert = fx.ta.enroll(
            LongTermId(lt),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut fx.rng,
        );
        (keys, cert)
    }

    fn join(fx: &mut Fixture, keys: &Keypair, cert: Certificate, now: Time) -> Vec<ChAction> {
        let jreq = Sealed::seal(
            JoinBody {
                pos_x: 1_500.0,
                pos_y: 50.0,
                speed_kmh: 70.0,
                forward: true,
            },
            cert,
            None,
            keys,
            &mut fx.rng,
        );
        fx.ch
            .handle_blackdp(addr_of(cert.pseudonym), BlackDpMessage::Jreq(jreq), now)
    }

    fn dreq_for(fx: &mut Fixture, suspect: Addr, reporter_lt: u64) -> Sealed<DReq> {
        let (rkeys, rcert) = enroll(fx, reporter_lt);
        let dreq = DReq {
            reporter: rcert.pseudonym,
            reporter_cluster: ClusterId(2),
            suspect,
            suspect_cluster: Some(ClusterId(2)),
            reason: SuspicionReason::NoHelloResponse,
        };
        Sealed::seal(dreq, rcert, Some(ClusterId(2)), &rkeys, &mut fx.rng)
    }

    fn probe_sent_to(actions: &[ChAction], to: Addr) -> Option<Rreq> {
        actions.iter().find_map(|a| match a {
            ChAction::Radio {
                to: t,
                wire: Wire::Aodv(AodvMessage::Rreq(r)),
            } if *t == to => Some(*r),
            _ => None,
        })
    }

    #[test]
    fn join_accepts_and_advertises_blacklist() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 1);
        let actions = join(&mut fx, &keys, cert, Time::ZERO);
        assert!(actions.iter().any(
            |a| matches!(a, ChAction::Event(ChEvent::MemberJoined(p)) if *p == cert.pseudonym)
        ));
        let jrep = actions.iter().find_map(|a| match a {
            ChAction::Radio {
                wire: Wire::BlackDp(BlackDpMessage::Jrep { cluster, .. }),
                ..
            } => Some(*cluster),
            _ => None,
        });
        assert_eq!(jrep, Some(ClusterId(2)));
        assert!(fx.ch.is_member(cert.pseudonym));
    }

    #[test]
    fn revoked_vehicle_cannot_rejoin() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 1);
        // Revocation notice arrives first.
        let rev = fx.ta.revoke(cert.pseudonym).unwrap();
        let _ = fx
            .ch
            .handle_blackdp(Addr(0), BlackDpMessage::Revoked(rev.notice), Time::ZERO);
        let actions = join(&mut fx, &keys, cert, Time::from_secs(1));
        assert!(actions
            .iter()
            .any(|a| matches!(a, ChAction::Event(ChEvent::JoinRejected(_)))));
        assert!(!fx.ch.is_member(cert.pseudonym));
    }

    #[test]
    fn full_single_black_hole_detection_ladder() {
        let mut fx = fixture();
        let (bkeys, bcert) = enroll(&mut fx, 66);
        let _ = join(&mut fx, &bkeys, bcert, Time::ZERO);
        let suspect = addr_of(bcert.pseudonym);

        // d_req arrives.
        let sealed = dreq_for(&mut fx, suspect, 2);
        let actions = fx.ch.handle_blackdp(
            Addr(1),
            BlackDpMessage::DetectionRequest(sealed),
            Time::ZERO,
        );
        let rreq1 = probe_sent_to(&actions, suspect).expect("RREQ1 to suspect");
        assert_eq!(rreq1.dest_seq, Some(0));
        assert!(!rreq1.next_hop_inquiry);
        assert!(fx.ch.is_probe_orig(rreq1.orig));

        // Attacker answers RREP1 with a huge sequence number.
        let rrep1 = Rrep {
            dest: rreq1.dest,
            dest_seq: 250,
            orig: rreq1.orig,
            hop_count: 4,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        };
        let actions = fx.ch.on_probe_rrep(suspect, &rrep1, Time::from_millis(10));
        assert!(
            probe_sent_to(&actions, suspect).is_none(),
            "RREQ2 is deferred by the RSU processing delay"
        );
        let actions = fx.ch.tick(Time::from_millis(150));
        let rreq2 = probe_sent_to(&actions, suspect).expect("RREQ2 to suspect");
        assert_eq!(rreq2.dest_seq, Some(251));
        assert!(rreq2.next_hop_inquiry);

        // Attacker answers RREP2 with an even higher sequence number.
        let rrep2 = Rrep {
            dest: rreq2.dest,
            dest_seq: 300,
            orig: rreq2.orig,
            hop_count: 4,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        };
        let actions = fx.ch.on_probe_rrep(suspect, &rrep2, Time::from_millis(200));
        let concluded = actions.iter().find_map(|a| match a {
            ChAction::Event(ChEvent::DetectionConcluded {
                outcome, packets, ..
            }) => Some((*outcome, *packets)),
            _ => None,
        });
        let (outcome, packets) = concluded.expect("episode concluded");
        assert_eq!(outcome, DetectionOutcome::ConfirmedSingle);
        // d_req(1) + RREQ1(1) + RREP1(1) + RREQ2(1) + RREP2(1) + response(1)
        // = 6, the paper's same-cluster count.
        assert_eq!(packets, 6);
        assert!(actions.iter().any(|a| matches!(
            a,
            ChAction::WiredTa {
                msg: BlackDpMessage::RevocationRequest { .. },
                ..
            }
        )));
        assert!(!fx.ch.is_member(bcert.pseudonym), "attacker expelled");
    }

    #[test]
    fn cooperative_attack_probes_the_teammate() {
        let mut fx = fixture();
        let (b1keys, b1cert) = enroll(&mut fx, 66);
        let (b2keys, b2cert) = enroll(&mut fx, 67);
        let _ = join(&mut fx, &b1keys, b1cert, Time::ZERO);
        let _ = join(&mut fx, &b2keys, b2cert, Time::ZERO);
        let b1 = addr_of(b1cert.pseudonym);
        let b2 = addr_of(b2cert.pseudonym);

        let sealed = dreq_for(&mut fx, b1, 2);
        let actions = fx.ch.handle_blackdp(
            Addr(1),
            BlackDpMessage::DetectionRequest(sealed),
            Time::ZERO,
        );
        let rreq1 = probe_sent_to(&actions, b1).unwrap();
        let rrep1 = Rrep {
            dest: rreq1.dest,
            dest_seq: 250,
            orig: rreq1.orig,
            hop_count: 4,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        };
        let _ = fx.ch.on_probe_rrep(b1, &rrep1, Time::from_millis(10));
        let actions = fx.ch.tick(Time::from_millis(150));
        let rreq2 = probe_sent_to(&actions, b1).unwrap();
        // RREP2 discloses the teammate.
        let rrep2 = Rrep {
            dest: rreq2.dest,
            dest_seq: 300,
            orig: rreq2.orig,
            hop_count: 4,
            lifetime: Duration::from_secs(6),
            next_hop: Some(b2),
        };
        let actions = fx.ch.on_probe_rrep(b1, &rrep2, Time::from_millis(200));
        let rreq3 = probe_sent_to(&actions, b2).expect("teammate probe");
        // Teammate endorses the fake route.
        let rrep3 = Rrep {
            dest: rreq3.dest,
            dest_seq: 400,
            orig: rreq3.orig,
            hop_count: 2,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        };
        let actions = fx.ch.on_probe_rrep(b2, &rrep3, Time::from_millis(250));
        let (outcome, packets) = actions
            .iter()
            .find_map(|a| match a {
                ChAction::Event(ChEvent::DetectionConcluded {
                    outcome, packets, ..
                }) => Some((*outcome, *packets)),
                _ => None,
            })
            .expect("concluded");
        assert_eq!(
            outcome,
            DetectionOutcome::ConfirmedCooperative { teammate: b2 }
        );
        // Same-cluster single (6) + teammate RREQ + teammate RREP = 8,
        // the bottom of the paper's 8–11 cooperative band.
        assert_eq!(packets, 8);
        // Both attackers are reported to the TA.
        let revocations = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    ChAction::WiredTa {
                        msg: BlackDpMessage::RevocationRequest { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(revocations, 2);
    }

    #[test]
    fn silent_suspect_is_unconfirmed_after_retry() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 5); // an honest member
        let _ = join(&mut fx, &keys, cert, Time::ZERO);
        let suspect = addr_of(cert.pseudonym);
        let sealed = dreq_for(&mut fx, suspect, 2);
        let a0 = fx.ch.handle_blackdp(
            Addr(1),
            BlackDpMessage::DetectionRequest(sealed),
            Time::ZERO,
        );
        assert!(probe_sent_to(&a0, suspect).is_some());

        // First timeout: retry.
        let t1 = Time::from_secs(1);
        let a1 = fx.ch.tick(t1);
        assert!(probe_sent_to(&a1, suspect).is_some(), "one retry");
        // Second timeout: conclude Unconfirmed.
        let t2 = Time::from_secs(2);
        let a2 = fx.ch.tick(t2);
        let (outcome, packets) = a2
            .iter()
            .find_map(|a| match a {
                ChAction::Event(ChEvent::DetectionConcluded {
                    outcome, packets, ..
                }) => Some((*outcome, *packets)),
                _ => None,
            })
            .expect("concluded");
        assert_eq!(outcome, DetectionOutcome::Unconfirmed);
        // d_req(1) + RREQ1(1) + retry(1) + response(1) = 4: the paper's
        // no-attacker lower bound.
        assert_eq!(packets, 4);
        assert!(
            fx.ch.is_member(cert.pseudonym),
            "honest member must NOT be isolated — zero false positives"
        );
    }

    #[test]
    fn suspect_in_other_cluster_is_forwarded() {
        let mut fx = fixture();
        let suspect = Addr(12345);
        let (rkeys, rcert) = enroll(&mut fx, 2);
        let dreq = DReq {
            reporter: rcert.pseudonym,
            reporter_cluster: ClusterId(2),
            suspect,
            suspect_cluster: Some(ClusterId(5)),
            reason: SuspicionReason::NoHelloResponse,
        };
        let sealed = Sealed::seal(dreq, rcert, Some(ClusterId(2)), &rkeys, &mut fx.rng);
        let actions = fx.ch.handle_blackdp(
            Addr(1),
            BlackDpMessage::DetectionRequest(sealed),
            Time::ZERO,
        );
        match &actions[..] {
            [ChAction::WiredCh {
                cluster,
                msg: BlackDpMessage::ForwardedDetection { packets_so_far, .. },
            }] => {
                assert_eq!(*cluster, ClusterId(5));
                assert_eq!(*packets_so_far, 2, "d_req + the forward");
            }
            other => panic!("expected a forward, got {other:?}"),
        }
    }

    #[test]
    fn redundant_dreqs_are_suppressed() {
        let mut fx = fixture();
        let (bkeys, bcert) = enroll(&mut fx, 66);
        let _ = join(&mut fx, &bkeys, bcert, Time::ZERO);
        let suspect = addr_of(bcert.pseudonym);
        let s1 = dreq_for(&mut fx, suspect, 2);
        let s2 = dreq_for(&mut fx, suspect, 3);
        let a1 = fx
            .ch
            .handle_blackdp(Addr(1), BlackDpMessage::DetectionRequest(s1), Time::ZERO);
        assert!(probe_sent_to(&a1, suspect).is_some());
        let a2 = fx
            .ch
            .handle_blackdp(Addr(2), BlackDpMessage::DetectionRequest(s2), Time::ZERO);
        assert!(
            a2.is_empty(),
            "second report must not trigger a second probe"
        );
        assert_eq!(
            fx.ch.verification().get(suspect).unwrap().reporters.len(),
            2
        );
    }

    #[test]
    fn leave_mid_detection_hands_off_to_next_cluster() {
        let mut fx = fixture();
        let (bkeys, bcert) = enroll(&mut fx, 66);
        let _ = join(&mut fx, &bkeys, bcert, Time::ZERO);
        let suspect = addr_of(bcert.pseudonym);
        let sealed = dreq_for(&mut fx, suspect, 2);
        let a0 = fx.ch.handle_blackdp(
            Addr(1),
            BlackDpMessage::DetectionRequest(sealed),
            Time::ZERO,
        );
        let rreq1 = probe_sent_to(&a0, suspect).unwrap();
        // Attacker answers RREP1 then leaves.
        let rrep1 = Rrep {
            dest: rreq1.dest,
            dest_seq: 250,
            orig: rreq1.orig,
            hop_count: 4,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        };
        let _ = fx.ch.on_probe_rrep(suspect, &rrep1, Time::from_millis(10));
        let actions = fx.ch.handle_blackdp(
            suspect,
            BlackDpMessage::Leave {
                vehicle: bcert.pseudonym,
            },
            Time::from_millis(20),
        );
        match actions.iter().find_map(|a| match a {
            ChAction::WiredCh {
                cluster,
                msg: BlackDpMessage::Handoff(h),
            } => Some((*cluster, h.clone())),
            _ => None,
        }) {
            Some((cluster, handoff)) => {
                assert_eq!(cluster, ClusterId(3), "next cluster along the highway");
                assert_eq!(handoff.rrep1_seq, Some(250));
                assert_eq!(handoff.reporters.len(), 1);
                // d_req(1) + RREQ1(1) + RREP1(1) + handoff(1) = 4 so far
                // (RREQ2 was still pending when the suspect left).
                assert_eq!(handoff.packets_so_far, 4);
            }
            None => panic!("expected a handoff"),
        }
    }

    #[test]
    fn handoff_resumes_at_rreq2_and_concludes() {
        let mut fx = fixture();
        let (bkeys, bcert) = enroll(&mut fx, 66);
        let _ = join(&mut fx, &bkeys, bcert, Time::ZERO); // joined the new cluster
        let suspect = addr_of(bcert.pseudonym);
        let handoff = DetectionHandoff {
            suspect,
            rrep1_seq: Some(250),
            reporters: vec![(PseudonymId(1), ClusterId(1))],
            packets_so_far: 4,
        };
        let actions = fx
            .ch
            .handle_blackdp(Addr(0), BlackDpMessage::Handoff(handoff), Time::ZERO);
        let rreq2 = probe_sent_to(&actions, suspect).expect("resumed at RREQ2");
        assert_eq!(rreq2.dest_seq, Some(251));
        assert!(rreq2.next_hop_inquiry);
        let rrep2 = Rrep {
            dest: rreq2.dest,
            dest_seq: 300,
            orig: rreq2.orig,
            hop_count: 4,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        };
        let actions = fx.ch.on_probe_rrep(suspect, &rrep2, Time::from_millis(10));
        let (outcome, packets) = actions
            .iter()
            .find_map(|a| match a {
                ChAction::Event(ChEvent::DetectionConcluded {
                    outcome, packets, ..
                }) => Some((*outcome, *packets)),
                _ => None,
            })
            .expect("concluded");
        assert_eq!(outcome, DetectionOutcome::ConfirmedSingle);
        // 4 (handed off) + RREQ2(1) + RREP2(1) + cross-cluster response(2)
        // = 8: the paper's same-cluster-then-moved count. With the
        // additional initial d_req forward of a cross-cluster start this
        // becomes 9, the paper's other figure.
        assert_eq!(packets, 8);
    }

    #[test]
    fn cached_verdict_answers_immediately() {
        let mut fx = fixture();
        let (bkeys, bcert) = enroll(&mut fx, 66);
        let _ = join(&mut fx, &bkeys, bcert, Time::ZERO);
        let suspect = addr_of(bcert.pseudonym);
        // Run a full confirmation.
        let sealed = dreq_for(&mut fx, suspect, 2);
        let a0 = fx.ch.handle_blackdp(
            Addr(1),
            BlackDpMessage::DetectionRequest(sealed),
            Time::ZERO,
        );
        let rreq1 = probe_sent_to(&a0, suspect).unwrap();
        let rrep1 = Rrep {
            dest: rreq1.dest,
            dest_seq: 250,
            orig: rreq1.orig,
            hop_count: 4,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        };
        let _ = fx.ch.on_probe_rrep(suspect, &rrep1, Time::from_millis(10));
        let a1 = fx.ch.tick(Time::from_millis(150));
        let rreq2 = probe_sent_to(&a1, suspect).unwrap();
        let rrep2 = Rrep {
            dest: rreq2.dest,
            dest_seq: 300,
            orig: rreq2.orig,
            hop_count: 4,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        };
        let _ = fx.ch.on_probe_rrep(suspect, &rrep2, Time::from_millis(200));

        // A late reporter gets the cached verdict, no new probes.
        let late = dreq_for(&mut fx, suspect, 9);
        let actions = fx.ch.handle_blackdp(
            Addr(3),
            BlackDpMessage::DetectionRequest(late),
            Time::from_secs(1),
        );
        assert!(probe_sent_to(&actions, suspect).is_none());
        assert!(actions.iter().any(|a| matches!(
            a,
            ChAction::Radio {
                wire: Wire::BlackDp(BlackDpMessage::Response(r)),
                ..
            } if r.outcome == DetectionOutcome::ConfirmedSingle
        )));
    }

    #[test]
    fn revocation_notice_updates_blacklist_and_members() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 1);
        let rev = fx.ta.revoke(cert.pseudonym).unwrap();
        let actions =
            fx.ch
                .handle_blackdp(Addr(0), BlackDpMessage::Revoked(rev.notice), Time::ZERO);
        assert!(fx.ch.blacklist().is_revoked(cert.pseudonym));
        assert!(actions.iter().any(|a| matches!(
            a,
            ChAction::RadioBroadcast {
                wire: Wire::BlackDp(BlackDpMessage::BlacklistAdvisory { .. })
            }
        )));
        let _ = keys;
    }

    #[test]
    fn renewal_messages_are_relayed() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 1);
        let actions = fx.ch.handle_blackdp(
            addr_of(cert.pseudonym),
            BlackDpMessage::RenewRequest {
                current: cert.pseudonym,
                issuer: TaId(1),
                new_key: keys.public(),
                reply_cluster: ClusterId(0), // overwritten by the CH
            },
            Time::ZERO,
        );
        match &actions[..] {
            [ChAction::WiredTa {
                ta,
                msg: BlackDpMessage::RenewRequest { reply_cluster, .. },
            }] => {
                assert_eq!(*ta, TaId(1));
                assert_eq!(*reply_cluster, ClusterId(2));
            }
            other => panic!("expected a TA relay, got {other:?}"),
        }
    }

    /// Starts a detection against a freshly joined member and returns the
    /// suspect's address (episode left in `AwaitRrep1`).
    fn start_episode(fx: &mut Fixture, lt: u64) -> Addr {
        let (keys, cert) = enroll(fx, lt);
        let _ = join(fx, &keys, cert, Time::ZERO);
        let suspect = addr_of(cert.pseudonym);
        let sealed = dreq_for(fx, suspect, lt + 100);
        let actions =
            fx.ch
                .handle_blackdp(Addr(1), BlackDpMessage::DetectionRequest(sealed), Time::ZERO);
        assert!(probe_sent_to(&actions, suspect).is_some());
        suspect
    }

    #[test]
    fn restart_loses_members_and_concludes_inflight_unconfirmed() {
        let mut fx = fixture();
        let suspect = start_episode(&mut fx, 66);
        let old_epoch = fx.ch.epoch();
        assert_eq!(fx.ch.storage_summary().4, 1, "one in-flight detection");

        let actions = fx.ch.restart(Time::from_secs(1));
        assert!(actions
            .iter()
            .any(|a| matches!(a, ChAction::Event(ChEvent::Restarted))));
        assert!(actions.iter().any(|a| matches!(
            a,
            ChAction::Event(ChEvent::DetectionConcluded {
                suspect: s,
                outcome: DetectionOutcome::Unconfirmed,
                ..
            }) if *s == suspect
        )));
        let resync_epoch = actions.iter().find_map(|a| match a {
            ChAction::RadioBroadcast {
                wire: Wire::BlackDp(BlackDpMessage::Resync { cluster, epoch, .. }),
            } => Some((*cluster, *epoch)),
            _ => None,
        });
        let (cluster, epoch) = resync_epoch.expect("resync broadcast");
        assert_eq!(cluster, ClusterId(2));
        assert_ne!(epoch, old_epoch, "epoch redrawn on restart");
        assert_eq!(epoch, fx.ch.epoch());

        // Everything volatile is gone; the next tick repeats the resync.
        let (members, history, verification, _, detections) = fx.ch.storage_summary();
        assert_eq!((members, history, verification, detections), (0, 0, 0, 0));
        let tick = fx.ch.tick(Time::from_secs(3));
        assert!(tick.iter().any(|a| matches!(
            a,
            ChAction::RadioBroadcast {
                wire: Wire::BlackDp(BlackDpMessage::Resync { .. })
            }
        )));

        // A member can re-register and be probed again afterwards.
        let (keys2, cert2) = enroll(&mut fx, 66);
        let t = Time::from_secs(4);
        let _ = join(&mut fx, &keys2, cert2, t);
        assert!(fx.ch.is_member(cert2.pseudonym));
    }

    #[test]
    fn blacklist_survives_restart() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 9);
        let rev = fx.ta.revoke(cert.pseudonym).unwrap();
        let _ = fx
            .ch
            .handle_blackdp(Addr(0), BlackDpMessage::Revoked(rev.notice), Time::ZERO);
        let _ = fx.ch.restart(Time::ZERO);
        assert!(fx.ch.blacklist().is_revoked(cert.pseudonym));
        let actions = join(&mut fx, &keys, cert, Time::from_secs(1));
        assert!(actions
            .iter()
            .any(|a| matches!(a, ChAction::Event(ChEvent::JoinRejected(_)))));
    }

    /// Drives the full ladder to a `ConfirmedSingle` verdict and returns
    /// the confirmed pseudonym.
    fn confirm_attacker(fx: &mut Fixture, lt: u64) -> PseudonymId {
        let (keys, cert) = enroll(fx, lt);
        let _ = join(fx, &keys, cert, Time::ZERO);
        let suspect = addr_of(cert.pseudonym);
        let sealed = dreq_for(fx, suspect, lt + 100);
        let actions =
            fx.ch
                .handle_blackdp(Addr(1), BlackDpMessage::DetectionRequest(sealed), Time::ZERO);
        let rreq1 = probe_sent_to(&actions, suspect).unwrap();
        let rrep1 = Rrep {
            dest: rreq1.dest,
            dest_seq: 250,
            orig: rreq1.orig,
            hop_count: 4,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        };
        let _ = fx.ch.on_probe_rrep(suspect, &rrep1, Time::from_millis(10));
        let actions = fx.ch.tick(Time::from_millis(150));
        let rreq2 = probe_sent_to(&actions, suspect).unwrap();
        let rrep2 = Rrep {
            dest: rreq2.dest,
            dest_seq: 300,
            orig: rreq2.orig,
            hop_count: 4,
            lifetime: Duration::from_secs(6),
            next_hop: None,
        };
        let _ = fx.ch.on_probe_rrep(suspect, &rrep2, Time::from_millis(200));
        cert.pseudonym
    }

    #[test]
    fn revoked_ack_clears_the_retry_queue() {
        let mut fx = fixture();
        let pseudonym = confirm_attacker(&mut fx, 66);
        assert_eq!(fx.ch.pending_revocation_count(), 1);
        let rev = fx.ta.revoke(pseudonym).unwrap();
        let _ = fx
            .ch
            .handle_blackdp(Addr(0), BlackDpMessage::Revoked(rev.notice), Time::from_millis(205));
        assert_eq!(fx.ch.pending_revocation_count(), 0);
        // Much later, no retry fires.
        let actions = fx.ch.tick(Time::from_secs(30));
        assert!(!actions
            .iter()
            .any(|a| matches!(a, ChAction::Event(ChEvent::RevocationRetried { .. }))));
    }

    #[test]
    fn unacked_revocation_goes_degraded_then_backs_off_then_abandons() {
        let mut fx = fixture();
        let pseudonym = confirm_attacker(&mut fx, 66);
        assert_eq!(fx.ch.pending_revocation_count(), 1);
        assert!(!fx.ch.blacklist().is_revoked(pseudonym));

        // First retry (the TA never answers): degraded mode engages — a
        // provisional local blacklist entry plus a member advisory.
        let t1 = Time::from_secs(1);
        let a1 = fx.ch.tick(t1);
        assert!(a1.iter().any(|a| matches!(
            a,
            ChAction::Event(ChEvent::RevocationRetried { suspect, attempt: 1 }) if *suspect == pseudonym
        )));
        assert!(a1.iter().any(|a| matches!(
            a,
            ChAction::RadioBroadcast {
                wire: Wire::BlackDp(BlackDpMessage::BlacklistAdvisory { .. })
            }
        )));
        assert!(
            fx.ch.blacklist().is_revoked(pseudonym),
            "degraded mode isolates locally"
        );
        let resend = a1
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    ChAction::WiredTa {
                        msg: BlackDpMessage::RevocationRequest { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(resend, 1);

        // Backoff: immediately after the first retry nothing is due.
        let a = fx.ch.tick(t1 + Duration::from_millis(100));
        assert!(!a
            .iter()
            .any(|a| matches!(a, ChAction::Event(ChEvent::RevocationRetried { .. }))));

        // Drive far past every backoff gap; the queue must drain with an
        // abandonment event after `ta_retry_max_attempts` retries.
        let mut retries = 1u32;
        let mut abandoned = false;
        for step in 2..4000u64 {
            let actions = fx.ch.tick(Time::from_millis(step * 100));
            for action in &actions {
                match action {
                    ChAction::Event(ChEvent::RevocationRetried { attempt, .. }) => {
                        assert_eq!(*attempt, retries + 1, "attempts increase one at a time");
                        retries = *attempt;
                    }
                    ChAction::Event(ChEvent::RevocationAbandoned(s)) => {
                        assert_eq!(*s, pseudonym);
                        abandoned = true;
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(retries, fx.ch.cfg.ta_retry_max_attempts);
        assert!(abandoned, "queue abandons after max attempts");
        assert_eq!(fx.ch.pending_revocation_count(), 0);
        assert!(
            fx.ch.blacklist().is_revoked(pseudonym),
            "local isolation outlives the abandoned request"
        );
    }

    #[test]
    fn peer_resync_replays_forwarded_dreq_once_per_epoch() {
        let mut fx = fixture();
        // A report for a cluster-5 suspect is forwarded there.
        let suspect = Addr(12345);
        let (rkeys, rcert) = enroll(&mut fx, 2);
        let dreq = DReq {
            reporter: rcert.pseudonym,
            reporter_cluster: ClusterId(2),
            suspect,
            suspect_cluster: Some(ClusterId(5)),
            reason: SuspicionReason::NoHelloResponse,
        };
        let sealed = Sealed::seal(dreq, rcert, Some(ClusterId(2)), &rkeys, &mut fx.rng);
        let _ = fx.ch.handle_blackdp(
            Addr(1),
            BlackDpMessage::DetectionRequest(sealed),
            Time::ZERO,
        );

        // Cluster 5's CH announces a fresh epoch: the forward is replayed.
        let resync = |epoch| BlackDpMessage::Resync {
            cluster: ClusterId(5),
            ch_addr: Addr(9_000_005),
            epoch,
        };
        let replayed = |actions: &[ChAction]| {
            actions.iter().any(|a| matches!(
                a,
                ChAction::WiredCh {
                    cluster: ClusterId(5),
                    msg: BlackDpMessage::ForwardedDetection { dreq, .. },
                } if dreq.suspect == suspect
            ))
        };
        let a1 = fx
            .ch
            .handle_blackdp(Addr(2), resync(41), Time::from_secs(3));
        assert!(replayed(&a1), "new epoch replays the forward: {a1:?}");
        assert!(a1.iter().any(|a| matches!(
            a,
            ChAction::Event(ChEvent::ForwardReplayed { suspect: s, to: ClusterId(5) }) if *s == suspect
        )));

        // The same epoch again (a rebroadcast) is a no-op; a second reboot
        // replays once more.
        let a2 = fx
            .ch
            .handle_blackdp(Addr(2), resync(41), Time::from_secs(3));
        assert!(a2.is_empty(), "duplicate resync suppressed: {a2:?}");
        let a3 = fx
            .ch
            .handle_blackdp(Addr(2), resync(42), Time::from_secs(8));
        assert!(replayed(&a3), "second reboot replays again");

        // Our own cluster's resync echoed back is ignored.
        let own = fx.ch.handle_blackdp(
            Addr(3),
            BlackDpMessage::Resync {
                cluster: ClusterId(2),
                ch_addr: fx.ch.addr(),
                epoch: 9,
            },
            Time::from_secs(9),
        );
        assert!(own.is_empty());
    }

    #[test]
    fn post_restart_dreq_is_parked_until_the_suspect_rejoins() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 66);
        let _ = join(&mut fx, &keys, cert, Time::ZERO);
        let suspect = addr_of(cert.pseudonym);

        let t_crash = Time::from_secs(1);
        let _ = fx.ch.restart(t_crash);

        // The re-submitted report lands before the suspect re-registered:
        // parked, not `SuspectGone`.
        let sealed = dreq_for(&mut fx, suspect, 3);
        let t_report = Time::from_millis(1_100);
        let actions =
            fx.ch
                .handle_blackdp(Addr(1), BlackDpMessage::DetectionRequest(sealed), t_report);
        assert!(
            actions.iter().any(|a| matches!(
                a,
                ChAction::Event(ChEvent::DetectionDeferred { suspect: s }) if *s == suspect
            )),
            "expected deferral, got {actions:?}"
        );

        // The suspect re-joins: the parked request starts the probe ladder.
        let t_rejoin = Time::from_millis(1_400);
        let actions = join(&mut fx, &keys, cert, t_rejoin);
        assert!(actions.iter().any(|a| matches!(
            a,
            ChAction::Event(ChEvent::DetectionStarted { suspect: s }) if *s == suspect
        )));
        assert!(probe_sent_to(&actions, suspect).is_some());
    }

    #[test]
    fn parked_dreq_expires_to_suspect_gone() {
        let mut fx = fixture();
        let (keys, cert) = enroll(&mut fx, 66);
        let _ = join(&mut fx, &keys, cert, Time::ZERO);
        let suspect = addr_of(cert.pseudonym);

        let _ = fx.ch.restart(Time::from_secs(1));
        let sealed = dreq_for(&mut fx, suspect, 3);
        let _ = fx.ch.handle_blackdp(
            Addr(1),
            BlackDpMessage::DetectionRequest(sealed),
            Time::from_millis(1_100),
        );

        // No re-join within the grace window: the park expires.
        let grace = fx.ch.cfg.post_restart_grace;
        let actions = fx.ch.tick(Time::from_millis(1_100) + grace);
        assert!(
            actions.iter().any(|a| matches!(
                a,
                ChAction::Event(ChEvent::DetectionConcluded {
                    suspect: s,
                    outcome: DetectionOutcome::SuspectGone,
                    ..
                }) if *s == suspect
            )),
            "expected SuspectGone conclusion, got {actions:?}"
        );
    }
}
