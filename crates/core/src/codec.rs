//! Byte codec for [`Wire`] — the on-air encoding the `blackdpd` daemon
//! speaks over real UDP sockets.
//!
//! Until this module existed the only canonical byte form was
//! [`SignBytes`](crate::SignBytes), which covers signed *subsets* of fields;
//! the simulator moved `Wire` values between nodes as in-memory clones. The
//! daemon needs the whole value on the wire, so every variant gets a full
//! `encode`/`decode` here.
//!
//! ## Framing
//!
//! The frame reuses the BDPTRACE journal conventions from
//! `scenario/src/trace.rs`: a magic tag, a little-endian `u32` version, a
//! length prefix, fixed-layout little-endian fields (`Option` as a flag
//! byte then the value, `Vec` as a `u32` count then items, `f64` by bits),
//! and a trailing FNV-64 checksum over everything before it:
//!
//! ```text
//! "BDPW" | version u32 | body_len u32 | body … | fnv64 checksum
//! ```
//!
//! The checksum is verified **first** on decode, so any corruption —
//! including of the magic, version, or length fields it covers — surfaces as
//! [`WireDecodeError::ChecksumMismatch`] rather than a mis-parse. Signed
//! floats and signatures round-trip bit-exactly, so a [`Sealed`] envelope
//! still verifies after decode.

use blackdp_aodv::{Addr, DataPacket, Hello, Message as AodvMessage, Rerr, Rreq, Rrep, SeqNo};
use blackdp_crypto::{
    Certificate, LongTermId, PseudonymId, PublicKey, RevocationNotice, Signature, TaId,
};
use blackdp_mobility::ClusterId;
use blackdp_sim::{Duration, Time};

use crate::wire::{
    BlackDpMessage, DReq, DetectionHandoff, DetectionOutcome, DetectionResponse, HelloProbe,
    HelloReply, JoinBody, Sealed, SuspicionReason, Wire,
};

/// Frame magic: "BlackDP Wire".
const MAGIC: [u8; 4] = *b"BDPW";
/// Current codec version.
const VERSION: u32 = 1;
/// Magic + version + body length.
const HEADER_LEN: usize = 4 + 4 + 4;
/// Trailing FNV-64 checksum.
const TRAILER_LEN: usize = 8;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a byte buffer failed to decode as a [`Wire`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireDecodeError {
    /// The buffer is smaller than the fixed header + checksum trailer.
    TooShort {
        /// Observed buffer length.
        len: usize,
    },
    /// The trailing checksum does not match the frame contents.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the frame.
        computed: u64,
    },
    /// The frame does not start with the `BDPW` magic.
    BadMagic,
    /// The frame declares a codec version this decoder does not speak.
    UnsupportedVersion(u32),
    /// The declared body length disagrees with the buffer size.
    LengthMismatch {
        /// Body length from the header.
        declared: usize,
        /// Body bytes actually present.
        actual: usize,
    },
    /// The body ended in the middle of a field.
    Truncated {
        /// The field being read.
        what: &'static str,
        /// Byte offset within the body where the read started.
        offset: usize,
    },
    /// A variant/flag byte holds a value outside its domain.
    BadTag {
        /// The tagged domain (e.g. `"wire"`, `"option"`).
        what: &'static str,
        /// The offending byte.
        tag: u8,
        /// Byte offset within the body.
        offset: usize,
    },
    /// The body parsed completely but bytes were left over.
    TrailingBytes {
        /// Unconsumed body bytes.
        extra: usize,
    },
}

impl std::fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireDecodeError::TooShort { len } => {
                write!(f, "frame too short ({len} bytes) for header + checksum")
            }
            WireDecodeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            WireDecodeError::BadMagic => write!(f, "bad magic (expected \"BDPW\")"),
            WireDecodeError::UnsupportedVersion(v) => write!(f, "unsupported codec version {v}"),
            WireDecodeError::LengthMismatch { declared, actual } => write!(
                f,
                "declared body length {declared} but {actual} body bytes present"
            ),
            WireDecodeError::Truncated { what, offset } => {
                write!(f, "body truncated reading {what} at offset {offset}")
            }
            WireDecodeError::BadTag { what, tag, offset } => {
                write!(f, "bad {what} tag {tag} at offset {offset}")
            }
            WireDecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
        }
    }
}

impl std::error::Error for WireDecodeError {}

// ---------------------------------------------------------------------------
// Body reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireDecodeError> {
        let start = self.pos;
        let end = start
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireDecodeError::Truncated { what, offset: start })?;
        self.pos = end;
        Ok(&self.buf[start..end])
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireDecodeError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireDecodeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireDecodeError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, WireDecodeError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, WireDecodeError> {
        let offset = self.pos;
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireDecodeError::BadTag { what, tag, offset }),
        }
    }

    /// Reads an `Option` flag byte, then `inner` when present.
    fn option<T>(
        &mut self,
        what: &'static str,
        inner: impl FnOnce(&mut Self) -> Result<T, WireDecodeError>,
    ) -> Result<Option<T>, WireDecodeError> {
        if self.bool(what)? {
            Ok(Some(inner(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a `u32` count then that many items. The count is sanity-checked
    /// against the bytes remaining (each item is at least one byte), so a
    /// corrupted length can never force a huge allocation.
    fn vec<T>(
        &mut self,
        what: &'static str,
        item: impl Fn(&mut Self) -> Result<T, WireDecodeError>,
    ) -> Result<Vec<T>, WireDecodeError> {
        let offset = self.pos;
        let count = self.u32(what)? as usize;
        if count > self.buf.len() - self.pos {
            return Err(WireDecodeError::Truncated { what, offset });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(item(self)?);
        }
        Ok(out)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// ---------------------------------------------------------------------------
// Field encoders / decoders (little-endian throughout, like BDPTRACE)
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_option<T>(out: &mut Vec<u8>, v: &Option<T>, put: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        Some(inner) => {
            out.push(1);
            put(out, inner);
        }
        None => out.push(0),
    }
}

fn put_signature(out: &mut Vec<u8>, sig: &Signature) {
    put_u64(out, sig.e);
    put_u64(out, sig.s);
}

fn get_signature(r: &mut Reader<'_>) -> Result<Signature, WireDecodeError> {
    Ok(Signature {
        e: r.u64("signature.e")?,
        s: r.u64("signature.s")?,
    })
}

fn put_cert(out: &mut Vec<u8>, cert: &Certificate) {
    put_u64(out, cert.pseudonym.0);
    put_u64(out, cert.public_key.raw());
    put_u64(out, cert.serial);
    put_u32(out, cert.issuer.0);
    put_u64(out, cert.issued.as_micros());
    put_u64(out, cert.expires.as_micros());
    put_signature(out, &cert.signature);
}

fn get_cert(r: &mut Reader<'_>) -> Result<Certificate, WireDecodeError> {
    Ok(Certificate {
        pseudonym: PseudonymId(r.u64("cert.pseudonym")?),
        public_key: PublicKey::from_raw(r.u64("cert.public_key")?),
        serial: r.u64("cert.serial")?,
        issuer: TaId(r.u32("cert.issuer")?),
        issued: Time::from_micros(r.u64("cert.issued")?),
        expires: Time::from_micros(r.u64("cert.expires")?),
        signature: get_signature(r)?,
    })
}

fn put_notice(out: &mut Vec<u8>, n: &RevocationNotice) {
    put_u64(out, n.pseudonym.0);
    put_u64(out, n.serial);
    put_u64(out, n.expires.as_micros());
}

fn get_notice(r: &mut Reader<'_>) -> Result<RevocationNotice, WireDecodeError> {
    Ok(RevocationNotice {
        pseudonym: PseudonymId(r.u64("notice.pseudonym")?),
        serial: r.u64("notice.serial")?,
        expires: Time::from_micros(r.u64("notice.expires")?),
    })
}

fn put_sealed<T>(out: &mut Vec<u8>, s: &Sealed<T>, put_body: impl FnOnce(&mut Vec<u8>, &T)) {
    put_body(out, &s.body);
    put_cert(out, &s.cert);
    put_option(out, &s.cluster, |o, c| put_u32(o, c.0));
    put_signature(out, &s.signature);
}

fn get_sealed<T>(
    r: &mut Reader<'_>,
    get_body: impl FnOnce(&mut Reader<'_>) -> Result<T, WireDecodeError>,
) -> Result<Sealed<T>, WireDecodeError> {
    Ok(Sealed {
        body: get_body(r)?,
        cert: get_cert(r)?,
        cluster: r.option("sealed.cluster", |r| Ok(ClusterId(r.u32("cluster")?)))?,
        signature: get_signature(r)?,
    })
}

fn put_rreq(out: &mut Vec<u8>, m: &Rreq) {
    put_u64(out, m.rreq_id);
    put_u64(out, m.dest.0);
    put_option(out, &m.dest_seq, |o, s| put_u32(o, *s));
    put_u64(out, m.orig.0);
    put_u32(out, m.orig_seq);
    out.push(m.hop_count);
    out.push(m.ttl);
    out.push(m.next_hop_inquiry as u8);
}

fn get_rreq(r: &mut Reader<'_>) -> Result<Rreq, WireDecodeError> {
    Ok(Rreq {
        rreq_id: r.u64("rreq.id")?,
        dest: Addr(r.u64("rreq.dest")?),
        dest_seq: r.option("rreq.dest_seq", |r| r.u32("rreq.dest_seq"))?,
        orig: Addr(r.u64("rreq.orig")?),
        orig_seq: r.u32("rreq.orig_seq")?,
        hop_count: r.u8("rreq.hop_count")?,
        ttl: r.u8("rreq.ttl")?,
        next_hop_inquiry: r.bool("rreq.next_hop_inquiry")?,
    })
}

fn put_rrep(out: &mut Vec<u8>, m: &Rrep) {
    put_u64(out, m.dest.0);
    put_u32(out, m.dest_seq);
    put_u64(out, m.orig.0);
    out.push(m.hop_count);
    put_u64(out, m.lifetime.as_micros());
    put_option(out, &m.next_hop, |o, a| put_u64(o, a.0));
}

fn get_rrep(r: &mut Reader<'_>) -> Result<Rrep, WireDecodeError> {
    Ok(Rrep {
        dest: Addr(r.u64("rrep.dest")?),
        dest_seq: r.u32("rrep.dest_seq")?,
        orig: Addr(r.u64("rrep.orig")?),
        hop_count: r.u8("rrep.hop_count")?,
        lifetime: Duration::from_micros(r.u64("rrep.lifetime")?),
        next_hop: r.option("rrep.next_hop", |r| Ok(Addr(r.u64("rrep.next_hop")?)))?,
    })
}

fn put_aodv(out: &mut Vec<u8>, m: &AodvMessage) {
    match m {
        AodvMessage::Rreq(rreq) => {
            out.push(0);
            put_rreq(out, rreq);
        }
        AodvMessage::Rrep(rrep) => {
            out.push(1);
            put_rrep(out, rrep);
        }
        AodvMessage::Rerr(rerr) => {
            out.push(2);
            put_u32(out, rerr.unreachable.len() as u32);
            for (addr, seq) in &rerr.unreachable {
                put_u64(out, addr.0);
                put_u32(out, *seq);
            }
        }
        AodvMessage::Hello(h) => {
            out.push(3);
            put_u64(out, h.orig.0);
            put_u32(out, h.seq);
        }
        AodvMessage::Data(d) => {
            out.push(4);
            put_u64(out, d.orig.0);
            put_u64(out, d.dest.0);
            put_u64(out, d.seq_no);
            out.push(d.ttl);
        }
    }
}

fn get_aodv(r: &mut Reader<'_>) -> Result<AodvMessage, WireDecodeError> {
    let offset = r.pos;
    let tag = r.u8("aodv tag")?;
    Ok(match tag {
        0 => AodvMessage::Rreq(get_rreq(r)?),
        1 => AodvMessage::Rrep(get_rrep(r)?),
        2 => AodvMessage::Rerr(Rerr {
            unreachable: r.vec("rerr.unreachable", |r| {
                Ok((
                    Addr(r.u64("rerr.addr")?),
                    r.u32("rerr.seq")? as SeqNo,
                ))
            })?,
        }),
        3 => AodvMessage::Hello(Hello {
            orig: Addr(r.u64("hello.orig")?),
            seq: r.u32("hello.seq")?,
        }),
        4 => AodvMessage::Data(DataPacket {
            orig: Addr(r.u64("data.orig")?),
            dest: Addr(r.u64("data.dest")?),
            seq_no: r.u64("data.seq_no")?,
            ttl: r.u8("data.ttl")?,
        }),
        tag => {
            return Err(WireDecodeError::BadTag {
                what: "aodv",
                tag,
                offset,
            })
        }
    })
}

fn put_probe(out: &mut Vec<u8>, p: &HelloProbe) {
    put_u64(out, p.probe_id);
    put_u64(out, p.src.0);
    put_u64(out, p.dest.0);
    out.push(p.ttl);
}

fn get_probe(r: &mut Reader<'_>) -> Result<HelloProbe, WireDecodeError> {
    Ok(HelloProbe {
        probe_id: r.u64("probe.id")?,
        src: Addr(r.u64("probe.src")?),
        dest: Addr(r.u64("probe.dest")?),
        ttl: r.u8("probe.ttl")?,
    })
}

fn put_reply(out: &mut Vec<u8>, p: &HelloReply) {
    put_u64(out, p.probe_id);
    put_u64(out, p.src.0);
    put_u64(out, p.dest.0);
    out.push(p.ttl);
}

fn get_reply(r: &mut Reader<'_>) -> Result<HelloReply, WireDecodeError> {
    Ok(HelloReply {
        probe_id: r.u64("reply.id")?,
        src: Addr(r.u64("reply.src")?),
        dest: Addr(r.u64("reply.dest")?),
        ttl: r.u8("reply.ttl")?,
    })
}

fn put_dreq(out: &mut Vec<u8>, d: &DReq) {
    put_u64(out, d.reporter.0);
    put_u32(out, d.reporter_cluster.0);
    put_u64(out, d.suspect.0);
    put_option(out, &d.suspect_cluster, |o, c| put_u32(o, c.0));
    out.push(match d.reason {
        SuspicionReason::NoHelloResponse => 0,
        SuspicionReason::FakeHelloReply => 1,
        SuspicionReason::AuthViolation => 2,
    });
}

fn get_dreq(r: &mut Reader<'_>) -> Result<DReq, WireDecodeError> {
    let reporter = PseudonymId(r.u64("dreq.reporter")?);
    let reporter_cluster = ClusterId(r.u32("dreq.reporter_cluster")?);
    let suspect = Addr(r.u64("dreq.suspect")?);
    let suspect_cluster =
        r.option("dreq.suspect_cluster", |r| Ok(ClusterId(r.u32("cluster")?)))?;
    let offset = r.pos;
    let reason = match r.u8("dreq.reason")? {
        0 => SuspicionReason::NoHelloResponse,
        1 => SuspicionReason::FakeHelloReply,
        2 => SuspicionReason::AuthViolation,
        tag => {
            return Err(WireDecodeError::BadTag {
                what: "suspicion reason",
                tag,
                offset,
            })
        }
    };
    Ok(DReq {
        reporter,
        reporter_cluster,
        suspect,
        suspect_cluster,
        reason,
    })
}

fn put_outcome(out: &mut Vec<u8>, o: &DetectionOutcome) {
    match o {
        DetectionOutcome::ConfirmedSingle => out.push(0),
        DetectionOutcome::ConfirmedCooperative { teammate } => {
            out.push(1);
            put_u64(out, teammate.0);
        }
        DetectionOutcome::Unconfirmed => out.push(2),
        DetectionOutcome::SuspectGone => out.push(3),
    }
}

fn get_outcome(r: &mut Reader<'_>) -> Result<DetectionOutcome, WireDecodeError> {
    let offset = r.pos;
    Ok(match r.u8("outcome tag")? {
        0 => DetectionOutcome::ConfirmedSingle,
        1 => DetectionOutcome::ConfirmedCooperative {
            teammate: Addr(r.u64("outcome.teammate")?),
        },
        2 => DetectionOutcome::Unconfirmed,
        3 => DetectionOutcome::SuspectGone,
        tag => {
            return Err(WireDecodeError::BadTag {
                what: "detection outcome",
                tag,
                offset,
            })
        }
    })
}

fn put_join(out: &mut Vec<u8>, j: &JoinBody) {
    put_u64(out, j.pos_x.to_bits());
    put_u64(out, j.pos_y.to_bits());
    put_u64(out, j.speed_kmh.to_bits());
    out.push(j.forward as u8);
}

fn get_join(r: &mut Reader<'_>) -> Result<JoinBody, WireDecodeError> {
    Ok(JoinBody {
        pos_x: r.f64("join.pos_x")?,
        pos_y: r.f64("join.pos_y")?,
        speed_kmh: r.f64("join.speed_kmh")?,
        forward: r.bool("join.forward")?,
    })
}

fn put_blackdp(out: &mut Vec<u8>, m: &BlackDpMessage) {
    match m {
        BlackDpMessage::Jreq(sealed) => {
            out.push(0);
            put_sealed(out, sealed, put_join);
        }
        BlackDpMessage::Jrep {
            cluster,
            ch_addr,
            epoch,
            blacklist,
        } => {
            out.push(1);
            put_u32(out, cluster.0);
            put_u64(out, ch_addr.0);
            put_u64(out, *epoch);
            put_u32(out, blacklist.len() as u32);
            for n in blacklist {
                put_notice(out, n);
            }
        }
        BlackDpMessage::Leave { vehicle } => {
            out.push(2);
            put_u64(out, vehicle.0);
        }
        BlackDpMessage::HelloProbe(sealed) => {
            out.push(3);
            put_sealed(out, sealed, put_probe);
        }
        BlackDpMessage::HelloReply(sealed) => {
            out.push(4);
            put_sealed(out, sealed, put_reply);
        }
        BlackDpMessage::DetectionRequest(sealed) => {
            out.push(5);
            put_sealed(out, sealed, put_dreq);
        }
        BlackDpMessage::ForwardedDetection {
            dreq,
            packets_so_far,
        } => {
            out.push(6);
            put_dreq(out, dreq);
            put_u32(out, *packets_so_far);
        }
        BlackDpMessage::Handoff(h) => {
            out.push(7);
            put_u64(out, h.suspect.0);
            put_option(out, &h.rrep1_seq, |o, s| put_u32(o, *s));
            put_u32(out, h.reporters.len() as u32);
            for (p, c) in &h.reporters {
                put_u64(out, p.0);
                put_u32(out, c.0);
            }
            put_u32(out, h.packets_so_far);
        }
        BlackDpMessage::Response(resp) => {
            out.push(8);
            put_u64(out, resp.suspect.0);
            put_outcome(out, &resp.outcome);
            put_u64(out, resp.reporter.0);
        }
        BlackDpMessage::RevocationRequest {
            suspect,
            reporting_cluster,
        } => {
            out.push(9);
            put_u64(out, suspect.0);
            put_u32(out, reporting_cluster.0);
        }
        BlackDpMessage::Revoked(n) => {
            out.push(10);
            put_notice(out, n);
        }
        BlackDpMessage::PauseRenewal { owner } => {
            out.push(11);
            put_u64(out, owner.0);
        }
        BlackDpMessage::BlacklistAdvisory { notices } => {
            out.push(12);
            put_u32(out, notices.len() as u32);
            for n in notices {
                put_notice(out, n);
            }
        }
        BlackDpMessage::RenewRequest {
            current,
            issuer,
            new_key,
            reply_cluster,
        } => {
            out.push(13);
            put_u64(out, current.0);
            put_u32(out, issuer.0);
            put_u64(out, new_key.raw());
            put_u32(out, reply_cluster.0);
        }
        BlackDpMessage::RenewReply { current, cert } => {
            out.push(14);
            put_u64(out, current.0);
            put_option(out, cert, put_cert);
        }
        BlackDpMessage::Resync {
            cluster,
            ch_addr,
            epoch,
        } => {
            out.push(15);
            put_u32(out, cluster.0);
            put_u64(out, ch_addr.0);
            put_u64(out, *epoch);
        }
    }
}

fn get_blackdp(r: &mut Reader<'_>) -> Result<BlackDpMessage, WireDecodeError> {
    let offset = r.pos;
    let tag = r.u8("blackdp tag")?;
    Ok(match tag {
        0 => BlackDpMessage::Jreq(get_sealed(r, get_join)?),
        1 => BlackDpMessage::Jrep {
            cluster: ClusterId(r.u32("jrep.cluster")?),
            ch_addr: Addr(r.u64("jrep.ch_addr")?),
            epoch: r.u64("jrep.epoch")?,
            blacklist: r.vec("jrep.blacklist", get_notice)?,
        },
        2 => BlackDpMessage::Leave {
            vehicle: PseudonymId(r.u64("leave.vehicle")?),
        },
        3 => BlackDpMessage::HelloProbe(get_sealed(r, get_probe)?),
        4 => BlackDpMessage::HelloReply(get_sealed(r, get_reply)?),
        5 => BlackDpMessage::DetectionRequest(get_sealed(r, get_dreq)?),
        6 => BlackDpMessage::ForwardedDetection {
            dreq: get_dreq(r)?,
            packets_so_far: r.u32("fwd.packets_so_far")?,
        },
        7 => BlackDpMessage::Handoff(DetectionHandoff {
            suspect: Addr(r.u64("handoff.suspect")?),
            rrep1_seq: r.option("handoff.rrep1_seq", |r| r.u32("handoff.rrep1_seq"))?,
            reporters: r.vec("handoff.reporters", |r| {
                Ok((
                    PseudonymId(r.u64("reporter.pseudonym")?),
                    ClusterId(r.u32("reporter.cluster")?),
                ))
            })?,
            packets_so_far: r.u32("handoff.packets_so_far")?,
        }),
        8 => BlackDpMessage::Response(DetectionResponse {
            suspect: Addr(r.u64("resp.suspect")?),
            outcome: get_outcome(r)?,
            reporter: PseudonymId(r.u64("resp.reporter")?),
        }),
        9 => BlackDpMessage::RevocationRequest {
            suspect: PseudonymId(r.u64("revreq.suspect")?),
            reporting_cluster: ClusterId(r.u32("revreq.cluster")?),
        },
        10 => BlackDpMessage::Revoked(get_notice(r)?),
        11 => BlackDpMessage::PauseRenewal {
            owner: LongTermId(r.u64("pause.owner")?),
        },
        12 => BlackDpMessage::BlacklistAdvisory {
            notices: r.vec("advisory.notices", get_notice)?,
        },
        13 => BlackDpMessage::RenewRequest {
            current: PseudonymId(r.u64("renew.current")?),
            issuer: TaId(r.u32("renew.issuer")?),
            new_key: PublicKey::from_raw(r.u64("renew.new_key")?),
            reply_cluster: ClusterId(r.u32("renew.reply_cluster")?),
        },
        14 => BlackDpMessage::RenewReply {
            current: PseudonymId(r.u64("renew.current")?),
            cert: r.option("renew.cert", get_cert)?,
        },
        15 => BlackDpMessage::Resync {
            cluster: ClusterId(r.u32("resync.cluster")?),
            ch_addr: Addr(r.u64("resync.ch_addr")?),
            epoch: r.u64("resync.epoch")?,
        },
        tag => {
            return Err(WireDecodeError::BadTag {
                what: "blackdp",
                tag,
                offset,
            })
        }
    })
}

impl Wire {
    /// Encodes the message as a self-delimiting, checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(96);
        match self {
            Wire::Aodv(m) => {
                body.push(0);
                put_aodv(&mut body, m);
            }
            Wire::SecuredRrep { rrep, auth } => {
                body.push(1);
                put_rrep(&mut body, rrep);
                put_sealed(&mut body, auth, |o, b| put_rrep(o, &b.0));
            }
            Wire::BlackDp(m) => {
                body.push(2);
                put_blackdp(&mut body, m);
            }
        }
        let mut out = Vec::with_capacity(HEADER_LEN + body.len() + TRAILER_LEN);
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        let checksum = fnv64(&out);
        put_u64(&mut out, checksum);
        out
    }

    /// Decodes a frame produced by [`Wire::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireDecodeError`] naming the first failing check:
    /// checksum (verified before anything else, so arbitrary corruption is
    /// always caught), then magic, version, length, and field-level parses.
    pub fn decode(bytes: &[u8]) -> Result<Wire, WireDecodeError> {
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(WireDecodeError::TooShort { len: bytes.len() });
        }
        let (framed, trailer) = bytes.split_at(bytes.len() - TRAILER_LEN);
        let stored = u64::from_le_bytes(trailer.try_into().unwrap());
        let computed = fnv64(framed);
        if stored != computed {
            return Err(WireDecodeError::ChecksumMismatch { stored, computed });
        }
        if framed[..4] != MAGIC {
            return Err(WireDecodeError::BadMagic);
        }
        let version = u32::from_le_bytes(framed[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(WireDecodeError::UnsupportedVersion(version));
        }
        let declared = u32::from_le_bytes(framed[8..12].try_into().unwrap()) as usize;
        let body = &framed[HEADER_LEN..];
        if declared != body.len() {
            return Err(WireDecodeError::LengthMismatch {
                declared,
                actual: body.len(),
            });
        }
        let mut r = Reader::new(body);
        let offset = r.pos;
        let wire = match r.u8("wire tag")? {
            0 => Wire::Aodv(get_aodv(&mut r)?),
            1 => {
                let rrep = get_rrep(&mut r)?;
                let auth = get_sealed(&mut r, |r| Ok(crate::wire::RrepBody(get_rrep(r)?)))?;
                Wire::SecuredRrep { rrep, auth }
            }
            2 => Wire::BlackDp(get_blackdp(&mut r)?),
            tag => {
                return Err(WireDecodeError::BadTag {
                    what: "wire",
                    tag,
                    offset,
                })
            }
        };
        if r.remaining() != 0 {
            return Err(WireDecodeError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::RrepBody;
    use blackdp_crypto::{Keypair, TrustedAuthority};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn round_trip(wire: Wire) {
        let bytes = wire.encode();
        assert_eq!(Wire::decode(&bytes).as_ref(), Ok(&wire));
    }

    #[test]
    fn plain_aodv_round_trips() {
        round_trip(Wire::Aodv(AodvMessage::Hello(Hello {
            orig: Addr(9),
            seq: 3,
        })));
        round_trip(Wire::Aodv(AodvMessage::Rerr(Rerr {
            unreachable: vec![(Addr(1), 5), (Addr(2), 9)],
        })));
    }

    #[test]
    fn sealed_envelope_still_verifies_after_decode() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ta = TrustedAuthority::new(TaId(1), &mut rng);
        let keys = Keypair::generate(&mut rng);
        let cert = ta.enroll(
            LongTermId(4),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(600),
            &mut rng,
        );
        let rrep = Rrep {
            dest: Addr(7),
            dest_seq: 75,
            orig: Addr(1),
            hop_count: 3,
            lifetime: Duration::from_secs(6),
            next_hop: Some(Addr(4)),
        };
        let auth = Sealed::seal(RrepBody(rrep), cert, Some(ClusterId(2)), &keys, &mut rng);
        let wire = Wire::SecuredRrep { rrep, auth };
        let bytes = wire.encode();
        let decoded = Wire::decode(&bytes).unwrap();
        let Wire::SecuredRrep { auth, .. } = &decoded else {
            panic!("wrong variant after decode");
        };
        assert_eq!(
            auth.verify(ta.public_key(), Time::from_secs(1)),
            Ok(()),
            "signature must survive the byte round trip bit-exactly"
        );
    }

    #[test]
    fn corrupted_length_cannot_force_allocation() {
        let wire = Wire::BlackDp(BlackDpMessage::BlacklistAdvisory {
            notices: vec![RevocationNotice {
                pseudonym: PseudonymId(4),
                serial: 9,
                expires: Time::from_secs(10),
            }],
        });
        let mut bytes = wire.encode();
        // Blow up the notice count field (first 4 body bytes after the two
        // tags), then fix up the checksum so the parser actually runs.
        let count_at = HEADER_LEN + 2;
        bytes[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let fixed = fnv64(&bytes[..bytes.len() - TRAILER_LEN]);
        let len = bytes.len();
        bytes[len - TRAILER_LEN..].copy_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            Wire::decode(&bytes),
            Err(WireDecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn structured_errors_name_the_failure() {
        assert_eq!(
            Wire::decode(&[1, 2, 3]),
            Err(WireDecodeError::TooShort { len: 3 })
        );
        let wire = Wire::BlackDp(BlackDpMessage::Leave {
            vehicle: PseudonymId(1),
        });
        let mut bytes = wire.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            Wire::decode(&bytes),
            Err(WireDecodeError::ChecksumMismatch { .. })
        ));
    }
}
