//! # blackdp — Black Hole Detection Protocol for Connected Vehicles
//!
//! A from-scratch reproduction of **BlackDP** (Albouq & Fredericks,
//! *"Lightweight Detection and Isolation of Black Hole Attacks in Connected
//! Vehicles"*, ICDCS 2017): a semi-centric protocol that decouples black
//! hole detection from mobile nodes and assigns it to trusted roadside
//! units (RSUs) acting as cluster heads on a highway.
//!
//! ## Protocol overview
//!
//! **Identification phase** (Section III-B.1):
//!
//! 1. *Source and destination verification* — after AODV route discovery,
//!    the originator authenticates the RREP ("secure packet": certificate +
//!    signature over a one-way hash). A reply straight from the destination
//!    verifies directly; a reply from an intermediate node triggers an
//!    end-to-end secure Hello probe. Two unanswered probes (with a route
//!    rediscovery in between), or a fake/anonymous Hello reply, produce a
//!    detection request `d_req = ⟨v_i, v_i^cy, v_B, v_B^cy⟩` to the cluster
//!    head. Implemented by [`SourceVerifier`].
//! 2. *Suspicious node examination* — the cluster head deduplicates
//!    requests in its [`VerificationTable`], locates the suspect (or
//!    forwards to the right cluster head), and probes it under a
//!    disposable identity with two fake-destination RREQs; answering the
//!    second (which demands a *higher* sequence number and discloses the
//!    next hop) proves an AODV violation and may expose a cooperative
//!    teammate, which is probed the same way. Implemented by
//!    [`ClusterHead`].
//!
//! **Isolation phase** (Section III-B.2): the cluster head requests
//! certificate revocation from the trusted authority, which pauses the
//! attacker's renewals everywhere and distributes revocation notices;
//! cluster heads blacklist the attacker and advise members and newcomers.
//! Implemented by [`ClusterHead`] + [`AuthorityNode`].
//!
//! All three state machines are **sans-io**: they consume messages and
//! ticks, and emit actions for a host (the `blackdp-scenario` crate, or
//! your own integration) to execute.
//!
//! # Examples
//!
//! The RSU-side probe ladder against a mock attacker:
//!
//! ```
//! use blackdp::{addr_of, BlackDpConfig, BlackDpMessage, ChAction, ClusterHead, DReq,
//!               DetectionOutcome, Sealed, SuspicionReason, Wire};
//! use blackdp_aodv::{Addr, Message as AodvMessage, Rrep};
//! use blackdp_crypto::{Keypair, LongTermId, TaId, TrustedAuthority};
//! use blackdp_mobility::ClusterId;
//! use blackdp_sim::{Duration, Time};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut ta = TrustedAuthority::new(TaId(1), &mut rng);
//! let mut ch = ClusterHead::new(
//!     ClusterId(2), Addr(900_002), TaId(1), ta.public_key(), 10,
//!     BlackDpConfig::default(), 42,
//! );
//!
//! // The attacker joins the cluster…
//! let bh_keys = Keypair::generate(&mut rng);
//! let bh_cert = ta.enroll(LongTermId(66), bh_keys.public(), Time::ZERO,
//!                         Duration::from_secs(600), &mut rng);
//! let jreq = Sealed::seal(
//!     blackdp::JoinBody { pos_x: 1500.0, pos_y: 50.0, speed_kmh: 70.0, forward: true },
//!     bh_cert, None, &bh_keys, &mut rng);
//! let _ = ch.handle_blackdp(addr_of(bh_cert.pseudonym), BlackDpMessage::Jreq(jreq), Time::ZERO);
//!
//! // …a legitimate node reports it…
//! let rep_keys = Keypair::generate(&mut rng);
//! let rep_cert = ta.enroll(LongTermId(2), rep_keys.public(), Time::ZERO,
//!                          Duration::from_secs(600), &mut rng);
//! let dreq = DReq {
//!     reporter: rep_cert.pseudonym,
//!     reporter_cluster: ClusterId(2),
//!     suspect: addr_of(bh_cert.pseudonym),
//!     suspect_cluster: Some(ClusterId(2)),
//!     reason: SuspicionReason::NoHelloResponse,
//! };
//! let sealed = Sealed::seal(dreq, rep_cert, Some(ClusterId(2)), &rep_keys, &mut rng);
//! let actions = ch.handle_blackdp(Addr(1), BlackDpMessage::DetectionRequest(sealed), Time::ZERO);
//!
//! // …and the CH probes the suspect with a fake-destination RREQ.
//! assert!(actions.iter().any(|a| matches!(
//!     a,
//!     ChAction::Radio { wire: Wire::Aodv(AodvMessage::Rreq(_)), .. }
//! )));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod authority;
mod codec;
mod config;
mod rsu;
mod table;
mod verifier;
mod wire;

pub use codec::WireDecodeError;

pub use authority::{AuthorityNode, TaAction, TaEvent};
pub use config::BlackDpConfig;
pub use rsu::{ChAction, ChEvent, ClusterHead};
pub use table::{VerEntry, VerStatus, VerificationTable};
pub use verifier::{
    envelope_memo_clear, BoundaryAuditStats, BoundaryAuditor, SourceVerifier, VerifierAction,
    VerifyQueue,
};
pub use wire::{
    addr_of, AuthError, BlackDpMessage, DReq, DetectionHandoff, DetectionOutcome,
    DetectionResponse, HelloProbe, HelloReply, JoinBody, RouteAuth, RrepBody, Sealed, SignBytes,
    SuspicionReason, Wire,
};
