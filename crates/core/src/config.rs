//! BlackDP protocol timing and sizing parameters.

use blackdp_sim::Duration;

/// Tunable BlackDP parameters shared by vehicles and cluster heads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlackDpConfig {
    /// How long the originator waits for an authenticated Hello reply
    /// before declaring the route suspicious (Section III-B: "waits for a
    /// time out").
    pub hello_probe_timeout: Duration,
    /// How long a cluster head waits for the suspect's RREP to a
    /// fake-destination probe.
    pub probe_rrep_timeout: Duration,
    /// Extra probe attempts when the first fake-destination RREQ goes
    /// unanswered (covers radio loss before declaring "acted
    /// legitimately").
    pub probe_retries: u32,
    /// RSU processing time between receiving `RREP₁` and issuing `RREQ₂`
    /// (the paper's Limitation section notes RSU authentication/processing
    /// latency; this window is also what lets a moving suspect's Leave
    /// trigger a state handoff that carries `RREP₁`'s sequence number).
    pub probe_processing_delay: Duration,
    /// Certificate validity granted by TAs.
    pub cert_validity: Duration,
    /// Upper bound on verification-table entries per cluster head (the
    /// paper's storage-overhead concern); oldest resolved entries are
    /// evicted first.
    pub max_verification_entries: usize,
    /// Whether redundant detection requests for a suspect already under
    /// (or past) examination are suppressed via the verification table
    /// (Section III-B). Disable only for the dedup ablation.
    pub dedup_detection_requests: bool,
    /// Base delay before a revocation request unanswered by the TA is
    /// retried; subsequent retries back off exponentially from here. In a
    /// healthy deployment the TA acknowledges within a couple of wired
    /// round trips, so the first retry never fires.
    pub ta_retry_base: Duration,
    /// Random extra delay added to each retry (drawn per attempt) so
    /// cluster heads that lost the TA simultaneously do not retry in
    /// lockstep.
    pub ta_retry_jitter: Duration,
    /// Retries before the CH abandons a revocation request (the local
    /// blacklist entry placed when degraded mode engaged still isolates
    /// the attacker until it expires).
    pub ta_retry_max_attempts: u32,
    /// For this long after a reboot, a detection request naming a suspect
    /// that has not re-registered yet is parked instead of answered
    /// `SuspectGone` — surviving members need a moment to hear the
    /// `Resync` and re-join before the CH can probe them.
    pub post_restart_grace: Duration,
}

impl Default for BlackDpConfig {
    fn default() -> Self {
        BlackDpConfig {
            hello_probe_timeout: Duration::from_millis(1500),
            probe_rrep_timeout: Duration::from_millis(800),
            probe_retries: 1,
            probe_processing_delay: Duration::from_millis(100),
            cert_validity: Duration::from_secs(600),
            max_verification_entries: 1024,
            dedup_detection_requests: true,
            ta_retry_base: Duration::from_millis(500),
            ta_retry_jitter: Duration::from_millis(100),
            ta_retry_max_attempts: 5,
            post_restart_grace: Duration::from_secs(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = BlackDpConfig::default();
        assert!(cfg.hello_probe_timeout > Duration::ZERO);
        assert!(cfg.probe_rrep_timeout > Duration::ZERO);
        assert!(cfg.max_verification_entries > 0);
        assert!(cfg.ta_retry_base > Duration::ZERO);
        assert!(cfg.ta_retry_max_attempts > 0);
    }
}
