//! Offline stand-in for the `rand` crate.
//!
//! The sandbox this workspace builds in has no registry access, so the
//! small slice of `rand`'s API the repository actually uses is vendored
//! here: the [`Rng`] base trait, the [`RngExt`] convenience methods
//! (`random`, `random_range`), [`SeedableRng::seed_from_u64`], and a
//! deterministic [`rngs::StdRng`] built on xoshiro256++ with SplitMix64
//! seed expansion. Determinism across runs and platforms is the only
//! hard requirement — every simulation seed flows through this crate.

#![forbid(unsafe_code)]

/// A source of random 64-bit words. Everything else derives from this.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`]'s raw output.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws one uniformly distributed value of an inferred type.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded via SplitMix64 expansion of a single `u64`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// Captures the generator's full internal state.
        ///
        /// Together with [`StdRng::from_state`] this lets checkpointing
        /// code snapshot a stream mid-flight and later verify (or
        /// recreate) the exact continuation — the whole stream after the
        /// capture point is determined by these four words.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured with
        /// [`StdRng::state`]. The restored generator produces exactly the
        /// stream the original would have produced from the capture point.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn state_capture_resumes_the_exact_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..37 {
            let _: u64 = rng.random();
        }
        let state = rng.state();
        let tail: Vec<u64> = (0..50).map(|_| rng.random()).collect();
        let mut resumed = StdRng::from_state(state);
        let replay: Vec<u64> = (0..50).map(|_| resumed.random()).collect();
        assert_eq!(tail, replay);
        // The capture itself does not perturb the stream.
        assert_eq!(resumed.state(), rng.state());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0u8..3);
            assert!(w < 3);
            let f = rng.random_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&f));
            let i = rng.random_range(3u64..=5);
            assert!((3..=5).contains(&i));
        }
    }

    #[test]
    fn full_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        // span == 2^64 must not panic; u128 arithmetic absorbs it.
        let _ = rng.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn bool_draws_both_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let draws: Vec<bool> = (0..64).map(|_| rng.random()).collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
    }
}
