//! Scenario construction and the single-trial runner.

use blackdp::{addr_of, AuthorityNode, ChEvent, ClusterHead, DetectionOutcome, TaEvent};
use blackdp_aodv::Addr;
use blackdp_attacks::{
    AttackerConfig, AttackerStack, DropData, Evasion, FakeHelloReply, ForgeRrep, GrayHoleConfig,
    Interceptor,
};
use blackdp_crypto::{Keypair, LongTermId, TaId, TrustedAuthority};
use blackdp_mobility::{
    random_position_in_cluster, ClusterId, ClusterPlan, Direction, Kmh, Trajectory,
};
use blackdp_sim::{Duration, ExecutorMode, NodeId, Position, Time, World, WorldConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::config::{AttackSetup, ScenarioConfig, TrialSpec};
use crate::directory::WiredDirectory;
use crate::frame::{Frame, Tick};
use crate::malicious_node::{MaliciousNode, MaliciousNodeConfig, MaliciousProfile};
use crate::metrics::{TrialClass, TrialOutcome};
use crate::rsu_node::RsuNode;
use crate::ta_node::TaNode;
use crate::vehicle::{TrafficIntent, VehicleConfig, VehicleNode};

use crate::config::ch_addr;

/// Base address for trusted-authority backbone endpoints. Public so the
/// `blackdpd` daemon assigns its TA the same protocol address the simulator
/// would, keeping testbed and simulator runs directly comparable.
pub const TA_ADDR_BASE: u64 = 0x6000_0000_0000_0000;
/// The fabricated destination used when the trial has no real one. Public
/// for the same reason: a testbed source node asks for this address so only
/// a black hole ever answers the discovery.
pub const PHANTOM_DEST: u64 = 0x5FFF_FFFF_FFFF_FFFF;

/// A fully constructed world plus the handles needed to measure it.
pub struct BuiltScenario {
    /// The simulation world, ready to run.
    pub world: World<Frame, Tick>,
    /// RSU node ids, indexed by cluster − 1.
    pub rsus: Vec<NodeId>,
    /// TA node ids, by region index.
    pub tas: Vec<NodeId>,
    /// Every honest vehicle.
    pub vehicles: Vec<NodeId>,
    /// The traffic source.
    pub source: NodeId,
    /// The destination vehicle, when it exists.
    pub dest: Option<NodeId>,
    /// The destination address the source targets (phantom when absent).
    pub dest_addr: Addr,
    /// Attacker node ids.
    pub attackers: Vec<NodeId>,
    /// The cluster plan.
    pub plan: ClusterPlan,
    /// The trusted authority's root public key (verifies every cert).
    pub ta_key: blackdp_crypto::PublicKey,
}

impl std::fmt::Debug for BuiltScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltScenario")
            .field("vehicles", &self.vehicles.len())
            .field("attackers", &self.attackers.len())
            .field("rsus", &self.rsus.len())
            .finish()
    }
}

/// Resolves the executor for a trial: the `BLACKDP_EXECUTOR` environment
/// variable (`serial` / `windowed`, read once per process) overrides the
/// configured mode; anything else — including an unset variable — keeps it.
/// Every scenario entry point (trial runners, golden replay, corpus replay,
/// checkpoint restore) builds worlds through [`build_scenario`], so the
/// override uniformly re-runs existing suites under the windowed executor.
/// Safe to override precisely because the executors are bit-identical.
fn resolve_executor(configured: ExecutorMode) -> ExecutorMode {
    static OVERRIDE: std::sync::OnceLock<Option<ExecutorMode>> = std::sync::OnceLock::new();
    OVERRIDE
        .get_or_init(|| match std::env::var("BLACKDP_EXECUTOR") {
            Ok(raw) if raw.trim().eq_ignore_ascii_case("windowed") => {
                Some(ExecutorMode::Windowed { threads: 0 })
            }
            Ok(raw) if raw.trim().eq_ignore_ascii_case("serial") => Some(ExecutorMode::Serial),
            Ok(raw) => {
                eprintln!(
                    "warning: BLACKDP_EXECUTOR={raw:?} is neither \"serial\" nor \
                     \"windowed\"; ignoring it"
                );
                None
            }
            Err(_) => None,
        })
        .unwrap_or(configured)
}

/// Builds the full Table-I world for one trial.
pub fn build_scenario(cfg: &ScenarioConfig, spec: &TrialSpec) -> BuiltScenario {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let plan = cfg.plan();
    let cluster_count = plan.cluster_count();
    let spawn = cfg.spawn();

    let world_cfg = WorldConfig {
        radio_range_m: cfg.range_m,
        radio_latency: cfg.radio_latency,
        radio_jitter: cfg.radio_jitter,
        radio_loss: cfg.radio_loss,
        radio_model: match cfg.fading_full_fraction {
            Some(full_fraction) => blackdp_sim::RadioModel::Fading { full_fraction },
            None => blackdp_sim::RadioModel::UnitDisk,
        },
        wired_latency: Duration::from_millis(1),
        seed: spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        neighbor_index: cfg.neighbor_index,
        backend: cfg.backend,
        // Every spawned trajectory (vehicles, attackers; RSUs/TAs are
        // static) is bounded by the Table-I speed band, so the sharded
        // backend's staleness horizon is sound. The 25% margin keeps the
        // coverage proof comfortable even if a future mobility model
        // rounds speeds up slightly.
        motion_bound_mps: Kmh(cfg.max_speed_kmh).as_mps() * 1.25,
        executor: resolve_executor(cfg.executor),
    };
    let mut world: World<Frame, Tick> = World::new(world_cfg);

    // --- Trusted authorities: shared root key, regional registries. ---
    let root = Keypair::generate(&mut rng);
    let ta_key = root.public();
    let region_count = cfg.ta_regions.len();
    let mut authorities: Vec<TrustedAuthority> = (0..region_count)
        .map(|i| TrustedAuthority::with_keypair(TaId(i as u32 + 1), root))
        .collect();

    // --- Enrollment plan: honest vehicles, then attackers. ---
    let attacker_count = spec.attack.attacker_count();
    let honest_count = cfg.vehicles.saturating_sub(attacker_count).max(3);

    struct VehiclePlan {
        trajectory: Trajectory,
        keys: Keypair,
        cert: blackdp_crypto::Certificate,
        region: usize,
    }

    let place = |cluster: u32,
                 rng: &mut StdRng,
                 authorities: &mut Vec<TrustedAuthority>,
                 cfg: &ScenarioConfig,
                 lt: u64,
                 direction: Direction|
     -> VehiclePlan {
        let pos = random_position_in_cluster(&plan, ClusterId(cluster), rng);
        let speed = spawn.random_speed(rng);
        let trajectory = Trajectory::new(pos, speed, direction, Time::ZERO);
        let region = cfg.region_of(cluster);
        let keys = Keypair::generate(rng);
        let cert = authorities[region].enroll(
            LongTermId(lt),
            keys.public(),
            Time::ZERO,
            cfg.blackdp.cert_validity,
            rng,
        );
        VehiclePlan {
            trajectory,
            keys,
            cert,
            region,
        }
    };

    // Source in its configured cluster; destination (if any) in its
    // cluster; everyone else anywhere.
    let mut honest_plans: Vec<VehiclePlan> = Vec::with_capacity(honest_count as usize);
    honest_plans.push(place(
        spec.source_cluster,
        &mut rng,
        &mut authorities,
        cfg,
        0,
        Direction::Forward,
    ));
    if let Some(dc) = spec.dest_cluster {
        honest_plans.push(place(
            dc,
            &mut rng,
            &mut authorities,
            cfg,
            1,
            Direction::Forward,
        ));
    }
    // The paper distributes vehicles "randomly ... within the clusters":
    // assign clusters round-robin (keeping every segment populated, so the
    // chain stays connected) with a uniformly random position inside each.
    let mut next_cluster = 0u32;
    while (honest_plans.len() as u32) < honest_count {
        let cluster = (next_cluster % cluster_count) + 1;
        next_cluster += 1;
        let lt = honest_plans.len() as u64;
        let direction = if rng.random::<f64>() < cfg.backward_fraction {
            Direction::Backward
        } else {
            Direction::Forward
        };
        honest_plans.push(place(
            cluster,
            &mut rng,
            &mut authorities,
            cfg,
            lt,
            direction,
        ));
    }

    // Attacker credentials (so cooperative partners can reference each
    // other's addresses before node construction).
    struct AttackerPlan {
        keys: Keypair,
        cert: blackdp_crypto::Certificate,
        trajectory: Trajectory,
        region: usize,
    }
    let mut attacker_plans: Vec<AttackerPlan> = Vec::new();
    let attack_clusters = spec.attack.clusters();
    debug_assert_eq!(attack_clusters.len() as u32, attacker_count);
    let mut same_cluster_rank: std::collections::HashMap<u32, u64> =
        std::collections::HashMap::new();
    for (i, cluster) in attack_clusters.into_iter().enumerate() {
        let region = cfg.region_of(cluster);
        let seg_start = (cluster as f64 - 1.0) * cfg.cluster_len_m;
        // Near the rear of the segment when the trial needs a mid-
        // detection move; cooperative partners in the same cluster sit
        // within ~300 m of each other.
        let rank = same_cluster_rank.entry(cluster).or_insert(0);
        let base_x = if spec.attacker_moves {
            seg_start + cfg.cluster_len_m * 0.8
        } else {
            seg_start + cfg.cluster_len_m * 0.4
        };
        let x = base_x + (*rank as f64) * 150.0;
        let y = 40.0 + (*rank as f64) * 30.0;
        *rank += 1;
        let speed = spawn.random_speed(&mut rng);
        let trajectory = Trajectory::new(
            Position::new(x.min(cfg.highway_length_m - 1.0), y),
            speed,
            Direction::Forward,
            Time::ZERO,
        );
        let keys = Keypair::generate(&mut rng);
        let cert = authorities[region].enroll(
            LongTermId(1_000 + i as u64),
            keys.public(),
            Time::ZERO,
            cfg.blackdp.cert_validity,
            &mut rng,
        );
        attacker_plans.push(AttackerPlan {
            keys,
            cert,
            trajectory,
            region,
        });
    }

    // --- Spawn TA nodes. ---
    let mut directory = WiredDirectory::new();
    let mut tas = Vec::new();
    let all_ta_ids: Vec<TaId> = (1..=region_count as u32).map(TaId).collect();
    for (i, authority) in authorities.into_iter().enumerate() {
        let (lo, hi) = cfg.ta_regions[i];
        let clusters: Vec<ClusterId> = (lo..=hi.min(cluster_count)).map(ClusterId).collect();
        let peers: Vec<TaId> = all_ta_ids
            .iter()
            .copied()
            .filter(|t| *t != authority.id())
            .collect();
        let node = AuthorityNode::new(
            authority,
            clusters,
            peers,
            cfg.blackdp.cert_validity,
            spec.seed.wrapping_add(5_000 + i as u64),
        );
        let addr = Addr(TA_ADDR_BASE + i as u64 + 1);
        let ta_id = node.id();
        let id = world.spawn(Box::new(TaNode::new(node, addr)));
        directory.add_ta(ta_id, id, addr);
        tas.push(id);
    }

    // --- Spawn RSUs. ---
    let mut rsus = Vec::new();
    for cluster in plan.clusters() {
        let region = cfg.region_of(cluster.0);
        let ch = ClusterHead::new(
            cluster,
            ch_addr(cluster),
            TaId(region as u32 + 1),
            ta_key,
            cluster_count,
            cfg.blackdp.clone(),
            spec.seed.wrapping_add(9_000 + u64::from(cluster.0)),
        );
        let id = world.spawn(Box::new(RsuNode::new(ch, &plan, cfg.tick)));
        directory.add_ch(cluster, id);
        rsus.push(id);
    }

    // --- Spawn honest vehicles. ---
    let vehicle_cfg = VehicleConfig {
        aodv: cfg.aodv.clone(),
        blackdp: cfg.blackdp.clone(),
        defense: cfg.defense,
        tick: cfg.tick,
        range_m: cfg.range_m,
        ..VehicleConfig::default()
    };
    let mut vehicles = Vec::new();
    for (i, p) in honest_plans.into_iter().enumerate() {
        let node = VehicleNode::new(
            p.trajectory,
            plan.clone(),
            p.keys,
            p.cert,
            ta_key,
            vehicle_cfg.clone(),
            spec.seed.wrapping_add(100 + i as u64),
        );
        let _ = p.region;
        vehicles.push(world.spawn(Box::new(node)));
    }
    let source = vehicles[0];
    let dest = spec.dest_cluster.map(|_| vehicles[1]);

    // --- Spawn attackers: each is an interceptor chain over the honest
    // --- AttackerCore, inside the shared MaliciousNode shell.
    let cooperative = matches!(
        spec.attack,
        AttackSetup::Cooperative { .. } | AttackSetup::CooperativeGrayHole { .. }
    );
    let teammate_addr = cooperative
        .then(|| attacker_plans.get(1).map(|p| addr_of(p.cert.pseudonym)))
        .flatten();
    let primary_addr = cooperative
        .then(|| attacker_plans.first().map(|p| addr_of(p.cert.pseudonym)))
        .flatten();
    let mut attackers = Vec::new();
    for (i, p) in attacker_plans.into_iter().enumerate() {
        let issuer = TaId(p.region as u32 + 1);
        let brain_seed = spec.seed.wrapping_add(700 + i as u64);
        let node_seed = spec.seed.wrapping_add(800 + i as u64);
        let teammate = if i == 0 { teammate_addr } else { primary_addr };
        let (chain, node_cfg): (Vec<Box<dyn Interceptor>>, MaliciousNodeConfig) = match spec.attack
        {
            AttackSetup::GrayHole {
                drop_probability, ..
            } => {
                let gh_cfg = GrayHoleConfig {
                    drop_probability,
                    ..GrayHoleConfig::default()
                };
                (
                    vec![
                        Box::new(ForgeRrep::new(gh_cfg.forge_params(), None)),
                        Box::new(DropData::grayhole(
                            gh_cfg.drop_probability,
                            gh_cfg.forward_probes,
                        )),
                    ],
                    MaliciousNodeConfig {
                        tick: cfg.tick,
                        hello_interval: cfg.aodv.hello_interval,
                        ..MaliciousNodeConfig::gray_hole(issuer)
                    },
                )
            }
            AttackSetup::CooperativeGrayHole {
                drop_probability, ..
            } => {
                // The composed variant: cooperative endorsement + gray-hole
                // dropping + evasion, with the black hole's probe hooks so
                // Flee/move manoeuvres work.
                let gh_cfg = GrayHoleConfig {
                    drop_probability,
                    ..GrayHoleConfig::default()
                };
                (
                    vec![
                        Box::new(Evasion),
                        Box::new(ForgeRrep::new(gh_cfg.forge_params(), teammate)),
                        Box::new(DropData::grayhole(
                            gh_cfg.drop_probability,
                            gh_cfg.forward_probes,
                        )),
                    ],
                    MaliciousNodeConfig {
                        tick: cfg.tick,
                        hello_interval: cfg.aodv.hello_interval,
                        renewal_zone: cfg.renewal_zone,
                        evasion: spec.evasion,
                        profile: MaliciousProfile {
                            probe_hooks: true,
                            ..MaliciousProfile::GRAY_HOLE
                        },
                        ..MaliciousNodeConfig::gray_hole(issuer)
                    },
                )
            }
            _ => {
                let attack_cfg = AttackerConfig {
                    teammate,
                    evasion: spec.evasion,
                    fake_hello_reply: spec.attacker_fake_hello,
                    ..AttackerConfig::default()
                };
                let mut chain: Vec<Box<dyn Interceptor>> = vec![
                    Box::new(Evasion),
                    Box::new(ForgeRrep::new(attack_cfg.forge_params(), attack_cfg.teammate)),
                    Box::new(DropData::blackhole()),
                ];
                if attack_cfg.fake_hello_reply {
                    chain.push(Box::new(FakeHelloReply));
                }
                (
                    chain,
                    MaliciousNodeConfig {
                        tick: cfg.tick,
                        hello_interval: cfg.aodv.hello_interval,
                        renewal_zone: cfg.renewal_zone,
                        move_after_probe: spec.attacker_moves && i == 0,
                        evasion: spec.evasion,
                        ..MaliciousNodeConfig::black_hole(issuer)
                    },
                )
            }
        };
        let stack = AttackerStack::new(p.keys, p.cert, brain_seed, chain);
        let node = MaliciousNode::new(stack, p.trajectory, plan.clone(), node_cfg, node_seed);
        attackers.push(world.spawn(Box::new(node)));
    }

    // --- Install the wired directory everywhere. ---
    for &id in &rsus {
        world
            .get_mut::<RsuNode>(id)
            .expect("rsu node")
            .set_directory(directory.clone());
    }
    for &id in &tas {
        world
            .get_mut::<TaNode>(id)
            .expect("ta node")
            .set_directory(directory.clone());
    }

    // --- Source traffic intent. ---
    let dest_addr = match dest {
        Some(d) => world.get::<VehicleNode>(d).expect("dest vehicle").addr(),
        None => Addr(PHANTOM_DEST),
    };
    world
        .get_mut::<VehicleNode>(source)
        .expect("source vehicle")
        .add_intent(TrafficIntent {
            dest: dest_addr,
            start: Time::from_secs(2),
            count: cfg.data_packets,
            interval: cfg.data_interval,
        });

    BuiltScenario {
        world,
        rsus,
        tas,
        vehicles,
        source,
        dest,
        dest_addr,
        attackers,
        plan,
        ta_key,
    }
}

/// Runs one trial to completion and harvests its outcome.
pub fn run_trial(cfg: &ScenarioConfig, spec: &TrialSpec) -> TrialOutcome {
    let mut built = build_scenario(cfg, spec);
    stage_false_suspicion(&mut built, spec);
    built.world.run_until(Time::ZERO + cfg.sim_duration);
    harvest(cfg, spec, &built)
}

/// For false-suspicion trials: runs the world until membership has settled
/// (two virtual seconds), then injects the fabricated report. A no-op for
/// every other attack setup. Shared by the plain and fault-injected
/// runners.
pub(crate) fn stage_false_suspicion(built: &mut BuiltScenario, spec: &TrialSpec) {
    if let AttackSetup::FalseSuspicion { cross_cluster } = spec.attack {
        built.world.run_until(Time::from_secs(2));
        let suspect_node = if cross_cluster {
            // Pick an honest vehicle registered in a different cluster
            // than the source's.
            let source_cluster = built
                .world
                .get::<VehicleNode>(built.source)
                .and_then(|v| v.cluster());
            built
                .vehicles
                .iter()
                .copied()
                .filter(|&v| v != built.source)
                .find(|&v| {
                    let c = built.world.get::<VehicleNode>(v).and_then(|n| n.cluster());
                    c.is_some() && c != source_cluster
                })
        } else {
            let source_cluster = built
                .world
                .get::<VehicleNode>(built.source)
                .and_then(|v| v.cluster());
            built
                .vehicles
                .iter()
                .copied()
                .filter(|&v| v != built.source)
                .find(|&v| {
                    let c = built.world.get::<VehicleNode>(v).and_then(|n| n.cluster());
                    c.is_some() && c == source_cluster
                })
        };
        if let Some(sv) = suspect_node {
            let (suspect_addr, suspect_cluster) = {
                let v = built.world.get::<VehicleNode>(sv).expect("vehicle");
                (v.addr(), v.cluster())
            };
            built
                .world
                .get_mut::<VehicleNode>(built.source)
                .expect("source")
                .force_report(suspect_addr, suspect_cluster);
        }
    }
}

/// Extracts the measured outcome from a finished world.
pub fn harvest(cfg: &ScenarioConfig, spec: &TrialSpec, built: &BuiltScenario) -> TrialOutcome {
    let world = &built.world;
    let _ = cfg;

    // Attacker address histories (identity renewal included).
    let mut attacker_addrs: Vec<Addr> = Vec::new();
    for &a in &built.attackers {
        if let Some(node) = world.get::<MaliciousNode>(a) {
            attacker_addrs.extend_from_slice(node.addr_history());
        }
    }
    let is_attacker = |addr: Addr| attacker_addrs.contains(&addr);

    // Detection episodes from every RSU.
    let mut detections: Vec<(Addr, DetectionOutcome, u32)> = Vec::new();
    let mut reported = false;
    for &r in &built.rsus {
        let Some(node) = world.get::<RsuNode>(r) else {
            continue;
        };
        for event in node.events() {
            match event {
                ChEvent::DetectionStarted { .. } => reported = true,
                ChEvent::DetectionConcluded {
                    suspect,
                    outcome,
                    packets,
                } => detections.push((*suspect, *outcome, *packets)),
                _ => {}
            }
        }
    }
    reported |= !detections.is_empty() || world.stats().get("vehicle.dreq_sent") > 0;

    let mut attacker_confirmed = false;
    let mut honest_confirmed = false;
    for (suspect, outcome, _) in &detections {
        match outcome {
            DetectionOutcome::ConfirmedSingle => {
                if is_attacker(*suspect) {
                    attacker_confirmed = true;
                } else {
                    honest_confirmed = true;
                }
            }
            DetectionOutcome::ConfirmedCooperative { teammate } => {
                if is_attacker(*suspect) {
                    attacker_confirmed = true;
                } else {
                    honest_confirmed = true;
                }
                if !is_attacker(*teammate) {
                    honest_confirmed = true;
                }
            }
            DetectionOutcome::Unconfirmed | DetectionOutcome::SuspectGone => {}
        }
    }

    // Revocations at the TAs.
    let mut attacker_revoked = false;
    for &t in &built.tas {
        if let Some(node) = world.get::<TaNode>(t) {
            for e in node.events() {
                if let TaEvent::CertificateRevoked(p) = e {
                    if is_attacker(addr_of(*p)) {
                        attacker_revoked = true;
                    }
                }
            }
        }
    }

    // The episode of interest: prefer one against the attacker.
    let detection_packets = detections
        .iter()
        .find(|(s, _, _)| is_attacker(*s))
        .or_else(|| detections.first())
        .map(|(_, _, p)| *p);

    // Virtual time to the first concluded detection.
    let detection_latency = built
        .rsus
        .iter()
        .filter_map(|&r| world.get::<RsuNode>(r))
        .flat_map(|n| n.timeline().iter())
        .filter_map(|(t, e)| match e {
            ChEvent::DetectionConcluded { .. } => Some(*t),
            _ => None,
        })
        .min()
        .map(|t| t.saturating_since(blackdp_sim::Time::ZERO));

    // Traffic accounting.
    let data_sent = world
        .get::<VehicleNode>(built.source)
        .map(|v| v.data_sent())
        .unwrap_or(0);
    let source_addr = world
        .get::<VehicleNode>(built.source)
        .map(|v| v.addr())
        .unwrap_or(Addr(0));
    let data_delivered = built
        .dest
        .and_then(|d| world.get::<VehicleNode>(d))
        .map(|v| {
            v.delivered()
                .iter()
                .filter(|(orig, _)| *orig == source_addr)
                .count() as u64
        })
        .unwrap_or(0);
    let data_dropped_by_attacker = built
        .attackers
        .iter()
        .map(|&a| {
            world
                .get::<MaliciousNode>(a)
                .map(|n| n.dropped_count())
                .unwrap_or(0)
        })
        .sum();

    let attack_present = spec.attack.attacker_count() > 0;
    let class = TrialOutcome::classify(attack_present, attacker_confirmed, honest_confirmed);
    TrialOutcome {
        attack_present,
        detections,
        reported,
        attacker_confirmed,
        honest_confirmed,
        attacker_revoked,
        detection_packets,
        detection_latency,
        data_sent,
        data_delivered,
        data_dropped_by_attacker,
        class,
    }
}

#[allow(unused)]
fn unused_class_guard(_: TrialClass) {}
