//! Protocol-aware runtime invariants for Table-I scenario worlds.
//!
//! These are the concrete [`InvariantCheck`] implementations the fuzzer
//! and gated tests install on a [`BuiltScenario`]'s world. Each check
//! watches the engine's packet lifecycle ([`SimEvent`]) and reports when
//! a cross-layer rule breaks:
//!
//! * [`PacketConservation`] — every dispatched or discarded frame was
//!   first accepted onto the queue (no frames materialise from nowhere).
//! * [`RadioRangeCheck`] — no radio frame is queued for a receiver beyond
//!   the configured unit-disk range.
//! * [`RreqIdMonotonic`] — AODV route discoveries carry strictly
//!   increasing per-originator ids (RSU probes, which use disposable
//!   random ids with `ttl = 1`, are out of scope by construction).
//! * [`IsolationPermanence`] — once a node has *seen* a revocation for an
//!   address, it never again forwards data toward that address (the
//!   paper's isolation guarantee: a blacklisted node never re-enters a
//!   route). Attackers are exempt — they may ignore blacklists.
//! * [`CertAcceptance`] — certificate verification agrees with the
//!   validity window at every observed instant (expired or not-yet-valid
//!   certs never verify, in-window ones never report a window error), and
//!   a revoked pseudonym is never re-credentialed.
//! * [`NoSelfDelivery`] — the medium never loops a frame back to its
//!   transmitter.
//!
//! Install the full set with [`attach_invariants`]; read results back
//! through `world.violations()` / `world.invariants_exercised()`.

use std::collections::{HashMap, HashSet};

use blackdp::{BlackDpMessage, Wire};
use blackdp_aodv::Message as AodvMessage;
use blackdp_crypto::{CertError, Certificate, PublicKey, RevocationNotice};
use blackdp_sim::{Channel, InvariantCheck, NodeId, SimEvent, Time, ViolationSink};

use crate::build::BuiltScenario;
use crate::config::ScenarioConfig;
use crate::frame::Frame;

/// Visits every certificate carried by a frame.
fn each_cert<'a>(wire: &'a Wire, mut f: impl FnMut(&'a Certificate)) {
    match wire {
        Wire::SecuredRrep { auth, .. } => f(&auth.cert),
        Wire::BlackDp(m) => match m {
            BlackDpMessage::Jreq(s) => f(&s.cert),
            BlackDpMessage::HelloProbe(s) => f(&s.cert),
            BlackDpMessage::HelloReply(s) => f(&s.cert),
            BlackDpMessage::DetectionRequest(s) => f(&s.cert),
            BlackDpMessage::RenewReply { cert: Some(c), .. } => f(c),
            _ => {}
        },
        Wire::Aodv(_) => {}
    }
}

/// Visits every revocation notice carried by a frame.
fn each_notice<'a>(wire: &'a Wire, mut f: impl FnMut(&'a RevocationNotice)) {
    if let Wire::BlackDp(m) = wire {
        match m {
            BlackDpMessage::Revoked(n) => f(n),
            BlackDpMessage::Jrep { blacklist, .. } => {
                for n in blacklist {
                    f(n);
                }
            }
            BlackDpMessage::BlacklistAdvisory { notices } => {
                for n in notices {
                    f(n);
                }
            }
            _ => {}
        }
    }
}

/// Every `Delivered`/`Dropped` frame was previously `Enqueued` between the
/// same pair on the same channel.
#[derive(Default)]
pub struct PacketConservation {
    pending: HashMap<(NodeId, NodeId, Channel), u64>,
    exercised: u64,
}

impl InvariantCheck<Frame> for PacketConservation {
    fn name(&self) -> &'static str {
        "packet-conservation"
    }

    fn observe(&mut self, _now: Time, event: &SimEvent<'_, Frame>, sink: &mut ViolationSink) {
        match event {
            SimEvent::Enqueued {
                from, to, channel, ..
            } => {
                *self.pending.entry((*from, *to, *channel)).or_insert(0) += 1;
            }
            SimEvent::Delivered {
                from,
                to,
                channel,
                payload,
            }
            | SimEvent::Dropped {
                from,
                to,
                channel,
                payload,
            } => {
                self.exercised += 1;
                match self.pending.get_mut(&(*from, *to, *channel)) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => sink.report(format!(
                        "{:?} frame {:?}→{:?} ({} ) left the queue without entering it",
                        channel,
                        from,
                        to,
                        payload.wire.kind()
                    )),
                }
            }
        }
    }

    fn exercised(&self) -> u64 {
        self.exercised
    }
}

/// No radio frame is accepted for a receiver beyond the unit-disk range.
pub struct RadioRangeCheck {
    range_m: f64,
    exercised: u64,
}

impl RadioRangeCheck {
    /// A check against the given unit-disk radius.
    pub fn new(range_m: f64) -> Self {
        RadioRangeCheck {
            range_m,
            exercised: 0,
        }
    }
}

impl InvariantCheck<Frame> for RadioRangeCheck {
    fn name(&self) -> &'static str {
        "radio-range"
    }

    fn observe(&mut self, _now: Time, event: &SimEvent<'_, Frame>, sink: &mut ViolationSink) {
        if let SimEvent::Enqueued {
            from,
            to,
            channel: Channel::Radio,
            dist_m: Some(d),
            ..
        } = event
        {
            self.exercised += 1;
            // Tolerate one ulp-scale slack: the medium compares the exact
            // same f64, so anything materially above range is a real leak.
            if *d > self.range_m * (1.0 + 1e-9) {
                sink.report(format!(
                    "radio frame {from:?}→{to:?} queued at {d:.1} m > range {} m",
                    self.range_m
                ));
            }
        }
    }

    fn exercised(&self) -> u64 {
        self.exercised
    }
}

/// AODV route discoveries carry strictly increasing ids per originator.
///
/// Scoped to the *first appearance* of each `(orig, rreq_id)` flood with
/// `ttl ≥ 2`: forwarded copies of the same flood are deduplicated, and the
/// RSU's disposable single-hop probes (`ttl = 1`, random ids) are excluded
/// by construction.
#[derive(Default)]
pub struct RreqIdMonotonic {
    seen: HashMap<u64, HashSet<u64>>,
    last_routable: HashMap<u64, u64>,
    exercised: u64,
}

impl InvariantCheck<Frame> for RreqIdMonotonic {
    fn name(&self) -> &'static str {
        "rreq-id-monotonic"
    }

    fn observe(&mut self, _now: Time, event: &SimEvent<'_, Frame>, sink: &mut ViolationSink) {
        let SimEvent::Enqueued { payload, .. } = event else {
            return;
        };
        let Wire::Aodv(AodvMessage::Rreq(r)) = &payload.wire else {
            return;
        };
        if !self.seen.entry(r.orig.0).or_default().insert(r.rreq_id) {
            return; // a forwarded copy of a flood we already scored
        }
        if r.ttl < 2 {
            return; // single-hop probe: disposable random id, out of scope
        }
        self.exercised += 1;
        if let Some(&prev) = self.last_routable.get(&r.orig.0) {
            if r.rreq_id <= prev {
                sink.report(format!(
                    "originator {:?} started discovery id {} after id {}",
                    r.orig, r.rreq_id, prev
                ));
            }
        }
        self.last_routable.insert(r.orig.0, r.rreq_id);
    }

    fn exercised(&self) -> u64 {
        self.exercised
    }
}

/// A node that has seen an address revoked never again forwards data
/// toward that address.
pub struct IsolationPermanence {
    /// Revoked addresses each node has learned of (delivered notices).
    learned: HashMap<NodeId, HashSet<u64>>,
    /// Nodes allowed to ignore blacklists (the attackers themselves).
    exempt: HashSet<NodeId>,
    exercised: u64,
}

impl IsolationPermanence {
    /// A check that exempts the given (attacker) nodes.
    pub fn new(exempt: HashSet<NodeId>) -> Self {
        IsolationPermanence {
            learned: HashMap::new(),
            exempt,
            exercised: 0,
        }
    }
}

impl InvariantCheck<Frame> for IsolationPermanence {
    fn name(&self) -> &'static str {
        "isolation-permanence"
    }

    fn observe(&mut self, _now: Time, event: &SimEvent<'_, Frame>, sink: &mut ViolationSink) {
        match event {
            SimEvent::Delivered { to, payload, .. } => {
                each_notice(&payload.wire, |n| {
                    self.learned.entry(*to).or_default().insert(n.pseudonym.0);
                });
            }
            SimEvent::Enqueued { from, payload, .. } => {
                if self.exempt.contains(from) {
                    return;
                }
                let Wire::Aodv(AodvMessage::Data(_)) = &payload.wire else {
                    return;
                };
                let Some(dst) = payload.dst else { return };
                let Some(known) = self.learned.get(from) else {
                    return;
                };
                if known.is_empty() {
                    return;
                }
                self.exercised += 1;
                if known.contains(&dst.0) {
                    sink.report(format!(
                        "node {from:?} forwarded data to revoked address {dst:?}"
                    ));
                }
            }
            SimEvent::Dropped { .. } => {}
        }
    }

    fn exercised(&self) -> u64 {
        self.exercised
    }
}

/// Certificate verification agrees with the validity window, and revoked
/// pseudonyms are never re-credentialed.
pub struct CertAcceptance {
    ta_key: PublicKey,
    /// Earliest observed revocation instant per pseudonym.
    revoked_at: HashMap<u64, Time>,
    exercised: u64,
}

impl CertAcceptance {
    /// A check verifying against the trusted authority's root key.
    pub fn new(ta_key: PublicKey) -> Self {
        CertAcceptance {
            ta_key,
            revoked_at: HashMap::new(),
            exercised: 0,
        }
    }
}

impl InvariantCheck<Frame> for CertAcceptance {
    fn name(&self) -> &'static str {
        "cert-acceptance"
    }

    fn observe(&mut self, now: Time, event: &SimEvent<'_, Frame>, sink: &mut ViolationSink) {
        let SimEvent::Delivered { payload, .. } = event else {
            return;
        };
        each_notice(&payload.wire, |n| {
            self.revoked_at.entry(n.pseudonym.0).or_insert(now);
        });
        let ta_key = self.ta_key;
        let revoked_at = &self.revoked_at;
        let exercised = &mut self.exercised;
        each_cert(&payload.wire, |cert| {
            *exercised += 1;
            let in_window = now >= cert.issued && now < cert.expires;
            match cert.verify(ta_key, now) {
                Ok(()) if !in_window => sink.report(format!(
                    "cert serial {} (pseudonym {:?}) verified at t={now} outside \
                     its window [{}, {})",
                    cert.serial, cert.pseudonym, cert.issued, cert.expires
                )),
                Err(CertError::Expired) if now < cert.expires => sink.report(format!(
                    "cert serial {} reported expired at t={now} before its \
                     expiry {}",
                    cert.serial, cert.expires
                )),
                Err(CertError::NotYetValid) if now >= cert.issued => sink.report(format!(
                    "cert serial {} reported not-yet-valid at t={now} after its \
                     issue {}",
                    cert.serial, cert.issued
                )),
                _ => {}
            }
            if let Some(&t) = revoked_at.get(&cert.pseudonym.0) {
                if cert.issued > t {
                    sink.report(format!(
                        "pseudonym {:?} re-credentialed at {} after its \
                         revocation observed at {t}",
                        cert.pseudonym, cert.issued
                    ));
                }
            }
        });
    }

    fn exercised(&self) -> u64 {
        self.exercised
    }
}

/// The medium never delivers a frame back to its transmitter.
#[derive(Default)]
pub struct NoSelfDelivery {
    exercised: u64,
}

impl InvariantCheck<Frame> for NoSelfDelivery {
    fn name(&self) -> &'static str {
        "no-self-delivery"
    }

    fn observe(&mut self, _now: Time, event: &SimEvent<'_, Frame>, sink: &mut ViolationSink) {
        if let SimEvent::Delivered {
            from, to, payload, ..
        } = event
        {
            self.exercised += 1;
            if from == to {
                sink.report(format!(
                    "node {from:?} received its own {} transmission",
                    payload.wire.kind()
                ));
            }
        }
    }

    fn exercised(&self) -> u64 {
        self.exercised
    }
}

/// The full standard check set for a built scenario.
pub fn standard_invariants(
    built: &BuiltScenario,
    cfg: &ScenarioConfig,
) -> Vec<Box<dyn InvariantCheck<Frame>>> {
    let exempt: HashSet<NodeId> = built.attackers.iter().copied().collect();
    vec![
        Box::new(PacketConservation::default()),
        Box::new(RadioRangeCheck::new(cfg.range_m)),
        Box::new(RreqIdMonotonic::default()),
        Box::new(IsolationPermanence::new(exempt)),
        Box::new(CertAcceptance::new(built.ta_key)),
        Box::new(NoSelfDelivery::default()),
    ]
}

/// Installs the standard invariant set on the scenario's world.
pub fn attach_invariants(built: &mut BuiltScenario, cfg: &ScenarioConfig) {
    for check in standard_invariants(&*built, cfg) {
        built.world.add_invariant(check);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrialSpec;
    use blackdp_aodv::{Addr, DataPacket, Rreq};
    use blackdp_sim::Duration;

    fn data_frame(src: u64, dst: u64) -> Frame {
        Frame {
            src: Addr(src),
            dst: Some(Addr(dst)),
            wire: Wire::Aodv(AodvMessage::Data(DataPacket {
                orig: Addr(src),
                dest: Addr(dst),
                seq_no: 1,
                ttl: 16,
            })),
        }
    }

    fn rreq_frame(orig: u64, rreq_id: u64, ttl: u8) -> Frame {
        Frame {
            src: Addr(orig),
            dst: None,
            wire: Wire::Aodv(AodvMessage::Rreq(Rreq {
                rreq_id,
                dest: Addr(0xD),
                dest_seq: None,
                orig: Addr(orig),
                orig_seq: 1,
                hop_count: 0,
                ttl,
                next_hop_inquiry: false,
            })),
        }
    }

    fn enqueued(frame: &Frame) -> SimEvent<'_, Frame> {
        SimEvent::Enqueued {
            from: NodeId::new(1),
            to: NodeId::new(2),
            channel: Channel::Radio,
            dist_m: None,
            payload: frame,
        }
    }

    #[test]
    fn conservation_flags_unmatched_delivery() {
        let mut check = PacketConservation::default();
        let mut sink = ViolationSink::default();
        sink.begin(check.name(), Time::ZERO);
        let f = data_frame(1, 2);
        check.observe(
            Time::ZERO,
            &SimEvent::Delivered {
                from: NodeId::new(1),
                to: NodeId::new(2),
                channel: Channel::Radio,
                payload: &f,
            },
            &mut sink,
        );
        assert_eq!(sink.violations().len(), 1);
        assert_eq!(check.exercised(), 1);
    }

    #[test]
    fn rreq_monotonic_skips_probes_and_forwards() {
        let mut check = RreqIdMonotonic::default();
        let mut sink = ViolationSink::default();
        sink.begin(check.name(), Time::ZERO);
        // Routable discoveries in order: fine.
        for id in [1u64, 2, 3] {
            let f = rreq_frame(7, id, 4);
            check.observe(Time::ZERO, &enqueued(&f), &mut sink);
        }
        // A forwarded copy of flood 3 (lower ttl): deduplicated, no score.
        let fwd = rreq_frame(7, 3, 3);
        check.observe(Time::ZERO, &enqueued(&fwd), &mut sink);
        // An RSU-style probe with a random id and ttl 1: out of scope.
        let probe = rreq_frame(7, 0xDEAD_BEEF, 1);
        check.observe(Time::ZERO, &enqueued(&probe), &mut sink);
        assert!(sink.violations().is_empty());
        assert_eq!(check.exercised(), 3);
        // A genuinely regressing id: flagged.
        let bad = rreq_frame(7, 2, 4);
        // id 2 was already seen, so use a fresh regressing one.
        check.observe(Time::ZERO, &enqueued(&bad), &mut sink);
        assert!(sink.violations().is_empty(), "dup id must not double-score");
        let bad2 = rreq_frame(8, 5, 4);
        check.observe(Time::ZERO, &enqueued(&bad2), &mut sink);
        let bad3 = rreq_frame(8, 4, 4);
        check.observe(Time::ZERO, &enqueued(&bad3), &mut sink);
        assert_eq!(sink.violations().len(), 1);
    }

    #[test]
    fn isolation_flags_forward_to_revoked_addr() {
        use blackdp_crypto::PseudonymId;
        let mut check = IsolationPermanence::new(HashSet::new());
        let mut sink = ViolationSink::default();
        sink.begin(check.name(), Time::ZERO);
        let notice = Frame {
            src: Addr(9),
            dst: Some(Addr(1)),
            wire: Wire::BlackDp(BlackDpMessage::Revoked(RevocationNotice {
                pseudonym: PseudonymId(42),
                serial: 7,
                expires: Time::ZERO + Duration::from_secs(60),
            })),
        };
        // Node 1 learns pseudonym 42 is revoked.
        check.observe(
            Time::ZERO,
            &SimEvent::Delivered {
                from: NodeId::new(9),
                to: NodeId::new(1),
                channel: Channel::Radio,
                payload: &notice,
            },
            &mut sink,
        );
        // Node 1 then forwards data to address 42: violation.
        let f = data_frame(5, 42);
        check.observe(Time::ZERO, &enqueued(&f), &mut sink);
        assert_eq!(sink.violations().len(), 1);
        // Node 2 never saw the notice, so its forward is fine.
        let g = data_frame(5, 42);
        check.observe(
            Time::ZERO,
            &SimEvent::Enqueued {
                from: NodeId::new(2),
                to: NodeId::new(3),
                channel: Channel::Radio,
                dist_m: None,
                payload: &g,
            },
            &mut sink,
        );
        assert_eq!(sink.violations().len(), 1);
        assert_eq!(check.exercised(), 1);
    }

    #[test]
    fn full_run_with_invariants_is_clean_and_exercises_them() {
        let cfg = ScenarioConfig::small_test();
        let spec = TrialSpec::single(11, 2, cfg.plan().cluster_count());
        let mut built = crate::build::build_scenario(&cfg, &spec);
        attach_invariants(&mut built, &cfg);
        built.world.run_until(Time::ZERO + cfg.sim_duration);
        built.world.finish_invariants();
        let violations = built.world.violations();
        assert!(
            violations.is_empty(),
            "unexpected violations: {:?}",
            violations
        );
        let exercised = built.world.invariants_exercised();
        assert_eq!(exercised.len(), 6);
        let active = exercised.iter().filter(|(_, n)| *n > 0).count();
        assert!(active >= 4, "too few invariants exercised: {exercised:?}");
    }
}
