//! The wired-backbone directory: which simulator node hosts each cluster
//! head and each trusted authority.

use std::collections::HashMap;

use blackdp_aodv::Addr;
use blackdp_crypto::TaId;
use blackdp_mobility::ClusterId;
use blackdp_sim::NodeId;

/// Static addressing for the RSU/TA wired backbone.
///
/// Built once per scenario after all infrastructure nodes are spawned,
/// then handed (cloned) to every RSU and TA node.
#[derive(Debug, Clone, Default)]
pub struct WiredDirectory {
    chs: HashMap<ClusterId, NodeId>,
    tas: HashMap<TaId, NodeId>,
    ta_addrs: HashMap<Addr, TaId>,
}

impl WiredDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        WiredDirectory::default()
    }

    /// Registers the cluster head node for `cluster`.
    pub fn add_ch(&mut self, cluster: ClusterId, node: NodeId) {
        self.chs.insert(cluster, node);
    }

    /// Registers the authority node for `ta`, with its backbone address.
    pub fn add_ta(&mut self, ta: TaId, node: NodeId, addr: Addr) {
        self.tas.insert(ta, node);
        self.ta_addrs.insert(addr, ta);
    }

    /// The node hosting `cluster`'s head.
    pub fn ch(&self, cluster: ClusterId) -> Option<NodeId> {
        self.chs.get(&cluster).copied()
    }

    /// The node hosting authority `ta`.
    pub fn ta(&self, ta: TaId) -> Option<NodeId> {
        self.tas.get(&ta).copied()
    }

    /// True if `addr` belongs to a trusted authority (used to distinguish
    /// peer-TA traffic from CH traffic).
    pub fn is_ta_addr(&self, addr: Addr) -> bool {
        self.ta_addrs.contains_key(&addr)
    }

    /// Number of registered cluster heads.
    pub fn ch_count(&self) -> usize {
        self.chs.len()
    }

    /// All registered cluster heads (unordered — sort before iterating
    /// when determinism matters).
    pub fn clusters(&self) -> impl Iterator<Item = (ClusterId, NodeId)> + '_ {
        self.chs.iter().map(|(&c, &n)| (c, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_round_trips() {
        let mut d = WiredDirectory::new();
        d.add_ch(ClusterId(1), NodeId::new(10));
        d.add_ta(TaId(1), NodeId::new(20), Addr(999));
        assert_eq!(d.ch(ClusterId(1)), Some(NodeId::new(10)));
        assert_eq!(d.ch(ClusterId(2)), None);
        assert_eq!(d.ta(TaId(1)), Some(NodeId::new(20)));
        assert!(d.is_ta_addr(Addr(999)));
        assert!(!d.is_ta_addr(Addr(1)));
        assert_eq!(d.ch_count(), 1);
    }
}
