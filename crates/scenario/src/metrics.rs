//! Trial outcomes, classification, and rate aggregation.

use blackdp::DetectionOutcome;
use blackdp_aodv::Addr;
use blackdp_sim::Duration;

/// How one trial classifies for the Figure 4 rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialClass {
    /// Attack present, confirmed and isolated.
    TruePositive,
    /// Attack present, not confirmed (evasion, flight, renewal, or never
    /// reported).
    FalseNegative,
    /// No attack (or an honest node), yet something was confirmed.
    FalsePositive,
    /// No attack, nothing confirmed.
    TrueNegative,
}

/// Everything measured in one simulation trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Whether an attacker was staged.
    pub attack_present: bool,
    /// Every concluded detection episode: `(suspect, outcome, packets)`.
    pub detections: Vec<(Addr, DetectionOutcome, u32)>,
    /// Whether any vehicle raised a detection request.
    pub reported: bool,
    /// Whether an attacker pseudonym was confirmed (matched against the
    /// attacker's full address history, so identity renewal cannot hide a
    /// confirmation).
    pub attacker_confirmed: bool,
    /// Whether an honest (non-attacker) node was confirmed — a false
    /// positive event.
    pub honest_confirmed: bool,
    /// Whether the TA revoked at least one attacker certificate.
    pub attacker_revoked: bool,
    /// Detection packets spent on the episode of interest (the first
    /// concluded episode), for Figure 5.
    pub detection_packets: Option<u32>,
    /// Virtual time from trial start to the first concluded detection.
    pub detection_latency: Option<Duration>,
    /// Application packets the source sent.
    pub data_sent: u64,
    /// Of those, how many the destination received.
    pub data_delivered: u64,
    /// Data packets the attacker(s) swallowed.
    pub data_dropped_by_attacker: u64,
    /// The classification.
    pub class: TrialClass,
}

impl TrialOutcome {
    /// Packet delivery ratio (1.0 when nothing was sent).
    pub fn pdr(&self) -> f64 {
        if self.data_sent == 0 {
            1.0
        } else {
            self.data_delivered as f64 / self.data_sent as f64
        }
    }

    /// Classifies from the raw flags.
    pub fn classify(
        attack_present: bool,
        attacker_confirmed: bool,
        honest_confirmed: bool,
    ) -> TrialClass {
        match (attack_present, attacker_confirmed, honest_confirmed) {
            (_, _, true) => TrialClass::FalsePositive,
            (true, true, false) => TrialClass::TruePositive,
            (true, false, false) => TrialClass::FalseNegative,
            (false, _, false) => TrialClass::TrueNegative,
        }
    }
}

/// Aggregated rates over a batch of trials (one Figure 4 data point).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSummary {
    /// Number of trials aggregated.
    pub trials: u32,
    /// Fraction classified correctly (TP + TN).
    pub accuracy: f64,
    /// False-positive rate.
    pub fp_rate: f64,
    /// False-negative rate.
    pub fn_rate: f64,
    /// Mean packet delivery ratio.
    pub mean_pdr: f64,
}

impl RateSummary {
    /// Aggregates a batch of outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` is empty.
    pub fn from_outcomes(outcomes: &[TrialOutcome]) -> Self {
        assert!(!outcomes.is_empty(), "cannot summarize zero trials");
        let n = outcomes.len() as f64;
        let count = |c: TrialClass| outcomes.iter().filter(|o| o.class == c).count() as f64;
        let tp = count(TrialClass::TruePositive);
        let tn = count(TrialClass::TrueNegative);
        let fp = count(TrialClass::FalsePositive);
        let fnr = count(TrialClass::FalseNegative);
        RateSummary {
            trials: outcomes.len() as u32,
            accuracy: (tp + tn) / n,
            fp_rate: fp / n,
            fn_rate: fnr / n,
            mean_pdr: outcomes.iter().map(|o| o.pdr()).sum::<f64>() / n,
        }
    }

    /// The Wilson score interval half-width for the accuracy estimate at
    /// 95 % confidence — used to annotate figure output.
    pub fn accuracy_ci(&self) -> f64 {
        wilson_half_width(self.accuracy, self.trials)
    }
}

/// Wilson 95 % half-width for proportion `p` over `n` trials.
pub fn wilson_half_width(p: f64, n: u32) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let z = 1.96f64;
    let n = n as f64;
    let denom = 1.0 + z * z / n;

    (z / denom) * ((p * (1.0 - p) / n + z * z / (4.0 * n * n)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(class: TrialClass) -> TrialOutcome {
        TrialOutcome {
            attack_present: matches!(class, TrialClass::TruePositive | TrialClass::FalseNegative),
            detections: Vec::new(),
            reported: true,
            attacker_confirmed: class == TrialClass::TruePositive,
            honest_confirmed: class == TrialClass::FalsePositive,
            attacker_revoked: class == TrialClass::TruePositive,
            detection_packets: Some(6),
            detection_latency: Some(Duration::from_secs(5)),
            data_sent: 10,
            data_delivered: 8,
            data_dropped_by_attacker: 2,
            class,
        }
    }

    #[test]
    fn classification_matrix() {
        assert_eq!(
            TrialOutcome::classify(true, true, false),
            TrialClass::TruePositive
        );
        assert_eq!(
            TrialOutcome::classify(true, false, false),
            TrialClass::FalseNegative
        );
        assert_eq!(
            TrialOutcome::classify(false, false, false),
            TrialClass::TrueNegative
        );
        assert_eq!(
            TrialOutcome::classify(false, false, true),
            TrialClass::FalsePositive
        );
        // Confirming an honest node is a false positive even when an
        // attacker was also present and caught.
        assert_eq!(
            TrialOutcome::classify(true, true, true),
            TrialClass::FalsePositive
        );
    }

    #[test]
    fn rates_add_up() {
        let outcomes: Vec<TrialOutcome> = [
            TrialClass::TruePositive,
            TrialClass::TruePositive,
            TrialClass::TruePositive,
            TrialClass::FalseNegative,
        ]
        .into_iter()
        .map(outcome)
        .collect();
        let summary = RateSummary::from_outcomes(&outcomes);
        assert_eq!(summary.trials, 4);
        assert!((summary.accuracy - 0.75).abs() < 1e-12);
        assert_eq!(summary.fp_rate, 0.0);
        assert!((summary.fn_rate - 0.25).abs() < 1e-12);
        assert!((summary.mean_pdr - 0.8).abs() < 1e-12);
    }

    #[test]
    fn pdr_handles_zero_sent() {
        let mut o = outcome(TrialClass::TrueNegative);
        o.data_sent = 0;
        o.data_delivered = 0;
        assert_eq!(o.pdr(), 1.0);
    }

    #[test]
    fn wilson_width_shrinks_with_n() {
        let w10 = wilson_half_width(0.9, 10);
        let w1000 = wilson_half_width(0.9, 1000);
        assert!(w10 > w1000);
        assert!(w1000 > 0.0);
        assert_eq!(wilson_half_width(0.5, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn summary_rejects_empty() {
        let _ = RateSummary::from_outcomes(&[]);
    }
}
