//! Cross-shard boundary-batch envelope auditing.
//!
//! Under the sharded backend, radio deliveries whose sender and receiver
//! sit in different shard bands are exactly the traffic that a distributed
//! deployment would have to exchange between workers — and re-verifying
//! the sealed envelopes it carries is the one verification workload that
//! may batch freely: it sits outside the protocol (no RNG draws, no stats,
//! no feedback into any node), so widths are not pinned to the ≤ 2
//! signatures-per-flush ceiling the in-sim [`VerifyQueue`](blackdp::VerifyQueue)
//! is structurally stuck at (the PR-7 finding). [`attach_boundary_audit`]
//! taps the world's boundary observer, extracts every [`Sealed`] envelope
//! a crossing frame carries, and feeds a [`BoundaryAuditor`] that flushes
//! batch-width verifications through the shared batch verifier.
//!
//! Honest traffic must audit clean: a nonzero failure count on an
//! attacker-free run indicates an engine or crypto bug, which the bench
//! harness asserts on.

use std::cell::RefCell;
use std::rc::Rc;

use blackdp::{BlackDpMessage, BoundaryAuditStats, BoundaryAuditor, Wire};
use blackdp_sim::{Time, WindowEvent};

use crate::build::BuiltScenario;
use crate::frame::Frame;

/// Shared handle to the auditor installed by [`attach_boundary_audit`].
pub type AuditorHandle = Rc<RefCell<BoundaryAuditor>>;

/// Feeds every sealed envelope `wire` carries into the auditor. Variants
/// without an envelope (plain AODV, Jrep, Leave, forwarded detections —
/// already authenticated by the first hop) have nothing to audit.
fn observe_wire(auditor: &mut BoundaryAuditor, wire: &Wire, now: Time) {
    match wire {
        Wire::SecuredRrep { auth, .. } => {
            auditor.observe(auth, now);
        }
        Wire::BlackDp(msg) => match msg {
            BlackDpMessage::Jreq(sealed) => {
                auditor.observe(sealed, now);
            }
            BlackDpMessage::HelloProbe(sealed) => {
                auditor.observe(sealed, now);
            }
            BlackDpMessage::HelloReply(sealed) => {
                auditor.observe(sealed, now);
            }
            BlackDpMessage::DetectionRequest(sealed) => {
                auditor.observe(sealed, now);
            }
            _ => {}
        },
        _ => {}
    }
}

/// Installs a [`BoundaryAuditor`] over the world's cross-shard boundary
/// tap, verifying (against the trial's TA root key) every sealed envelope
/// carried by a radio delivery that crosses a shard-band boundary.
/// Envelopes accumulate to `target_width` per flush; call
/// [`drain`](drain) (or `auditor.borrow_mut().flush()`) after the run for
/// the final partial batch.
///
/// Inert unless the scenario runs a sharded backend (the tap never fires
/// otherwise), and observational either way: attaching it cannot change a
/// trace byte.
pub fn attach_boundary_audit(built: &mut BuiltScenario, target_width: usize) -> AuditorHandle {
    let auditor: AuditorHandle = Rc::new(RefCell::new(BoundaryAuditor::new(
        built.ta_key,
        target_width,
    )));
    let sink = Rc::clone(&auditor);
    built.world.set_boundary_tap(Box::new(
        move |at, _from, _to, frame: &Frame, _from_band, _to_band| {
            observe_wire(&mut sink.borrow_mut(), &frame.wire, at);
        },
    ));
    auditor
}

/// Safety cap on the prefetcher's queue: a pathological window with more
/// sealed envelopes than this auto-flushes early rather than growing the
/// batch arena without bound. Real windows sit far below it.
const PREFETCH_WIDTH_CAP: usize = 4096;

/// Installs a window-boundary verification prefetcher over the windowed
/// executor's tap (see [`WindowEvent`]).
///
/// During each parallel window's serial scan, every sealed envelope in an
/// admitted delivery is enqueued; at the window's
/// [`Flush`](WindowEvent::Flush) mark — after the scan, before any
/// handler runs — the whole window verifies through one
/// [`VerifyQueue`](blackdp::VerifyQueue) flush. That batch is as wide as
/// the window's envelope traffic, so it rides the batch verifier's
/// shared-exponentiation lanes past the ≤ 2 signatures-per-flush ceiling
/// the in-handler queue is structurally stuck at (the PR-7 finding), and
/// every verdict lands in the process-global envelope memo. When the
/// handlers then verify the same envelopes — on whatever worker thread
/// the executor scheduled them — each in-handler `verify_one` is a memo
/// hit: no signature math, just a digest lookup.
///
/// Observational by construction: the tap fires on the serial scan (no
/// RNG draws, no stats), verdicts are pure functions of envelope bytes,
/// and the time-dependent validity window is never memoized — so
/// attaching the prefetcher cannot change a trace byte, only wall-clock
/// time. Inert under the serial executor (the tap never fires).
pub fn attach_window_prefetch(built: &mut BuiltScenario) -> AuditorHandle {
    let auditor: AuditorHandle = Rc::new(RefCell::new(BoundaryAuditor::new(
        built.ta_key,
        PREFETCH_WIDTH_CAP,
    )));
    let sink = Rc::clone(&auditor);
    built
        .world
        .set_window_tap(Box::new(move |event: WindowEvent<'_, Frame>| {
            match event {
                WindowEvent::Delivery { at, payload, .. } => {
                    observe_wire(&mut sink.borrow_mut(), &payload.wire, at);
                }
                WindowEvent::Flush { .. } => {
                    sink.borrow_mut().flush();
                }
            }
        }));
    auditor
}

/// Flushes the final partial batch and returns the end-of-run counters.
pub fn drain(auditor: &AuditorHandle) -> BoundaryAuditStats {
    let mut auditor = auditor.borrow_mut();
    auditor.flush();
    auditor.stats()
}
