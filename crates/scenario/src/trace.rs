//! Structured trace recording and replay diffing.
//!
//! A *trace* is the time-ordered sequence of every frame delivery in one
//! trial, flattened to plain integers and strings ([`TraceEvent`]) so it
//! can be serialized to a compact binary journal ([`encode`]/[`decode`]),
//! checked into `results/` as a golden snapshot, and compared
//! event-by-event against a fresh run ([`diff`]). When a replay diverges,
//! the differ reports the first mismatching event with the events leading
//! up to it — turning any nondeterminism or protocol-visible behavior
//! change into a one-command repro.
//!
//! Decoding returns a structured [`TraceError`] — a truncated or
//! bit-flipped journal (a crashed writer, a corrupt disk) is reported,
//! never panicked on.

use blackdp_sim::Time;

use crate::build::{build_scenario, harvest, stage_false_suspicion};
use crate::config::{ScenarioConfig, TrialSpec};
use crate::faults::FaultSpec;
use crate::journal::{attach_journal, JournalEntry};
use crate::metrics::TrialOutcome;

/// One delivered frame, flattened for serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Delivery time in virtual microseconds.
    pub at_micros: u64,
    /// Transmitting simulator node index.
    pub from: u32,
    /// Receiving simulator node index.
    pub to: u32,
    /// 0 = radio, 1 = wired backbone.
    pub channel: u8,
    /// The frame's link-layer source address.
    pub src: u64,
    /// The frame's link-layer destination (`None` = broadcast).
    pub dst: Option<u64>,
    /// The payload kind tag (`rreq`, `dreq`, …).
    pub kind: String,
    /// FNV-64 digest of the full wire payload.
    pub digest: u64,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ch = if self.channel == 0 { "radio" } else { "wired" };
        let dst = match self.dst {
            Some(d) => format!("{d:#x}"),
            None => "broadcast".into(),
        };
        write!(
            f,
            "t={}us n{}→n{} [{ch}] {} {:#x}→{dst} digest={:#018x}",
            self.at_micros, self.from, self.to, self.kind, self.src, self.digest
        )
    }
}

/// Flattens one journal entry into its serializable trace form.
pub(crate) fn entry_to_event(e: &JournalEntry) -> TraceEvent {
    TraceEvent {
        at_micros: e.at.as_micros(),
        from: e.from.index(),
        to: e.to.index(),
        channel: match e.channel {
            blackdp_sim::Channel::Radio => 0,
            blackdp_sim::Channel::Wired => 1,
        },
        src: e.src.0,
        dst: e.dst.map(|a| a.0),
        kind: e.kind.to_string(),
        digest: e.digest,
    }
}

/// Runs one trial with a journal attached and returns its outcome plus
/// the full delivery trace.
pub fn record_trial(
    cfg: &ScenarioConfig,
    spec: &TrialSpec,
    faults: &FaultSpec,
) -> (TrialOutcome, Vec<TraceEvent>) {
    let mut built = build_scenario(cfg, spec);
    let plan = faults.realize(cfg, &built);
    if !plan.is_empty() {
        built.world.install_faults(plan);
    }
    let journal = attach_journal(&mut built);
    stage_false_suspicion(&mut built, spec);
    built.world.run_until(Time::ZERO + cfg.sim_duration);
    let outcome = harvest(cfg, spec, &built);
    let events = journal.borrow().entries().iter().map(entry_to_event).collect();
    (outcome, events)
}

/// Magic prefix of the binary trace format.
const MAGIC: &[u8; 8] = b"BDPTRACE";
/// Format version; bump on any wire change.
const VERSION: u32 = 1;

pub(crate) const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Continues an FNV-1a 64-bit hash over `bytes` from state `h`.
pub(crate) fn fnv64_continue(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_continue(FNV_OFFSET, bytes)
}

/// Appends one event's fixed-layout record to `out`.
fn write_record(out: &mut Vec<u8>, e: &TraceEvent) {
    out.extend_from_slice(&e.at_micros.to_le_bytes());
    out.extend_from_slice(&e.from.to_le_bytes());
    out.extend_from_slice(&e.to.to_le_bytes());
    out.push(e.channel);
    match e.dst {
        Some(d) => {
            out.push(1);
            out.extend_from_slice(&d.to_le_bytes());
        }
        None => {
            out.push(0);
            out.extend_from_slice(&0u64.to_le_bytes());
        }
    }
    out.extend_from_slice(&e.src.to_le_bytes());
    let kind = e.kind.as_bytes();
    out.extend_from_slice(&(kind.len() as u16).to_le_bytes());
    out.extend_from_slice(kind);
    out.extend_from_slice(&e.digest.to_le_bytes());
}

/// Folds one event into a running chained checksum.
///
/// Checkpoint stamps store the chain value over the trace prefix up to the
/// checkpoint boundary, so a resumed run can prove — without keeping the
/// whole prefix around — that the events it skipped are exactly the events
/// the original run produced. The chain hashes the same record bytes
/// [`encode`] writes, so it inherits the wire format's injectivity.
pub(crate) fn chain_event(h: u64, e: &TraceEvent) -> u64 {
    let mut buf = Vec::with_capacity(48 + e.kind.len());
    write_record(&mut buf, e);
    fnv64_continue(h, &buf)
}

/// The chained checksum of a whole event sequence, starting from the FNV
/// offset basis.
///
/// This is the same chain checkpoint stamps carry, so external tooling
/// (sweep drivers rendering per-trial digests) can compare a full trace
/// against a stamp without re-encoding the journal.
pub fn chain_events(events: &[TraceEvent]) -> u64 {
    events.iter().fold(FNV_OFFSET, chain_event)
}

/// Serializes a trace to the compact binary journal format: magic,
/// version, event count, fixed-layout records, and a trailing FNV-64
/// checksum over everything before it.
pub fn encode(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + events.len() * 48);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for e in events {
        write_record(&mut out, e);
    }
    let checksum = fnv64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Why a binary trace failed to decode.
///
/// Every variant is a recoverable report about the *bytes* — corrupt or
/// truncated journals (crashed writers, bit rot) surface here instead of
/// panicking the replay tooling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Fewer bytes than the fixed header + checksum require.
    TooShort {
        /// Actual byte length of the input.
        len: usize,
    },
    /// The trailing FNV-64 checksum does not match the body.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the body.
        computed: u64,
    },
    /// The file does not start with the `BDPTRACE` magic.
    BadMagic,
    /// The version field names a format this build cannot read.
    UnsupportedVersion(u32),
    /// The body ended in the middle of a field.
    Truncated {
        /// Which field was being read.
        what: &'static str,
        /// Byte offset where the read started.
        offset: usize,
    },
    /// An event's kind tag is not valid UTF-8.
    BadKind {
        /// Index of the offending event.
        event: usize,
    },
    /// Bytes remain after the declared event count was read.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
        /// The declared event count.
        count: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::TooShort { len } => {
                write!(f, "trace too short for header: {len} bytes")
            }
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            TraceError::BadMagic => write!(f, "bad trace magic"),
            TraceError::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated { what, offset } => {
                write!(f, "trace truncated reading {what} at offset {offset}")
            }
            TraceError::BadKind { event } => write!(f, "event {event}: kind is not UTF-8"),
            TraceError::TrailingBytes { extra, count } => {
                write!(f, "{extra} trailing bytes after {count} events")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Reads `N` bytes from the cursor, or fails with the field name.
fn take<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    n: usize,
    what: &'static str,
) -> Result<&'a [u8], TraceError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or(TraceError::Truncated { what, offset: *pos })?;
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

fn u64_at(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, TraceError> {
    Ok(u64::from_le_bytes(
        take(buf, pos, 8, what)?.try_into().unwrap(),
    ))
}

fn u32_at(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u32, TraceError> {
    Ok(u32::from_le_bytes(
        take(buf, pos, 4, what)?.try_into().unwrap(),
    ))
}

/// Deserializes a binary trace, verifying magic, version, and checksum.
pub fn decode(bytes: &[u8]) -> Result<Vec<TraceEvent>, TraceError> {
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 {
        return Err(TraceError::TooShort { len: bytes.len() });
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    let computed = fnv64(body);
    if stored != computed {
        return Err(TraceError::ChecksumMismatch { stored, computed });
    }
    let mut pos = 0usize;
    if take(body, &mut pos, MAGIC.len(), "magic")? != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = u32_at(body, &mut pos, "version")?;
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let count = u64_at(body, &mut pos, "event count")? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 20));
    for i in 0..count {
        let at_micros = u64_at(body, &mut pos, "at")?;
        let from = u32_at(body, &mut pos, "from")?;
        let to = u32_at(body, &mut pos, "to")?;
        let channel = take(body, &mut pos, 1, "channel")?[0];
        let has_dst = take(body, &mut pos, 1, "dst flag")?[0];
        let dst_raw = u64_at(body, &mut pos, "dst")?;
        let src = u64_at(body, &mut pos, "src")?;
        let kind_len = u16::from_le_bytes(take(body, &mut pos, 2, "kind len")?.try_into().unwrap());
        let kind = String::from_utf8(take(body, &mut pos, kind_len as usize, "kind")?.to_vec())
            .map_err(|_| TraceError::BadKind { event: i })?;
        let digest = u64_at(body, &mut pos, "digest")?;
        events.push(TraceEvent {
            at_micros,
            from,
            to,
            channel,
            src,
            dst: (has_dst != 0).then_some(dst_raw),
            kind,
            digest,
        });
    }
    if pos != body.len() {
        return Err(TraceError::TrailingBytes {
            extra: body.len() - pos,
            count,
        });
    }
    Ok(events)
}

/// The first point where two traces disagree.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the first mismatching event.
    pub index: usize,
    /// What the recorded trace expected there (`None` = recorded trace
    /// ended first).
    pub expected: Option<TraceEvent>,
    /// What the fresh run produced there (`None` = fresh run ended first).
    pub actual: Option<TraceEvent>,
    /// The last few matching events before the divergence, rendered.
    pub context: Vec<String>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "traces diverge at event {}", self.index)?;
        for line in &self.context {
            writeln!(f, "    … {line}")?;
        }
        match &self.expected {
            Some(e) => writeln!(f, "  expected: {e}")?,
            None => writeln!(f, "  expected: <end of recorded trace>")?,
        }
        match &self.actual {
            Some(a) => write!(f, "  actual:   {a}"),
            None => write!(f, "  actual:   <end of fresh run>"),
        }
    }
}

/// How many matching events to show before a divergence.
const CONTEXT_EVENTS: usize = 3;

/// Compares two traces event-by-event; `None` means identical.
pub fn diff(expected: &[TraceEvent], actual: &[TraceEvent]) -> Option<Divergence> {
    let limit = expected.len().max(actual.len());
    for i in 0..limit {
        if expected.get(i) == actual.get(i) {
            continue;
        }
        let start = i.saturating_sub(CONTEXT_EVENTS);
        return Some(Divergence {
            index: i,
            expected: expected.get(i).cloned(),
            actual: actual.get(i).cloned(),
            context: expected[start..i].iter().map(|e| e.to_string()).collect(),
        });
    }
    None
}

/// Decodes a recorded journal and diffs it against a trace of events.
///
/// The byte-level entry point replay tooling should prefer: a truncated or
/// corrupt journal on disk becomes a [`TraceError`], not a panic, while a
/// healthy journal that merely disagrees with the fresh events becomes a
/// [`Divergence`].
pub fn diff_encoded(
    recorded: &[u8],
    actual: &[TraceEvent],
) -> Result<Option<Divergence>, TraceError> {
    let expected = decode(recorded)?;
    Ok(diff(&expected, actual))
}

/// Re-runs the trial and diffs its trace against a recorded one; `None`
/// means the replay was bit-identical.
pub fn replay_divergence(
    cfg: &ScenarioConfig,
    spec: &TrialSpec,
    faults: &FaultSpec,
    recorded: &[TraceEvent],
) -> Option<Divergence> {
    let (_, fresh) = record_trial(cfg, spec, faults);
    diff(recorded, &fresh)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(i: u64) -> TraceEvent {
        TraceEvent {
            at_micros: i * 100,
            from: i as u32,
            to: (i + 1) as u32,
            channel: (i % 2) as u8,
            src: 0x1000 + i,
            dst: i.is_multiple_of(3).then_some(0x2000 + i),
            kind: if i.is_multiple_of(2) { "rreq".into() } else { "data".into() },
            digest: 0xABCD_0000 + i,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let events: Vec<_> = (0..17).map(event).collect();
        let bytes = encode(&events);
        assert_eq!(decode(&bytes).unwrap(), events);
        assert!(decode(&encode(&[])).unwrap().is_empty());
    }

    #[test]
    fn decode_rejects_corruption_with_structured_errors() {
        let mut bytes = encode(&(0..5).map(event).collect::<Vec<_>>());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        match decode(&bytes).unwrap_err() {
            TraceError::ChecksumMismatch { stored, computed } => assert_ne!(stored, computed),
            other => panic!("expected checksum mismatch, got {other}"),
        }
        assert_eq!(decode(&bytes[..10]).unwrap_err(), TraceError::TooShort { len: 10 });
    }

    #[test]
    fn decode_reports_truncation_not_panic() {
        let good = encode(&(0..5).map(event).collect::<Vec<_>>());
        // Chop mid-record and re-seal with a valid checksum so the cursor,
        // not the checksum, is what trips — the journal of a writer that
        // died mid-record but whose trailer happened to survive.
        for cut in [good.len() - 20, good.len() - 9, 21] {
            let mut cropped = good[..cut].to_vec();
            let sum = fnv64(&cropped);
            cropped.extend_from_slice(&sum.to_le_bytes());
            match decode(&cropped) {
                Err(TraceError::Truncated { .. }) | Err(TraceError::TrailingBytes { .. }) => {}
                other => panic!("cut at {cut}: expected truncation report, got {other:?}"),
            }
        }
    }

    #[test]
    fn decode_rejects_wrong_magic_and_version() {
        let mut bad_magic = encode(&[event(0)]);
        bad_magic[0] ^= 0x20;
        let sum = fnv64(&bad_magic[..bad_magic.len() - 8]);
        let len = bad_magic.len();
        bad_magic[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(decode(&bad_magic).unwrap_err(), TraceError::BadMagic);

        let mut bad_version = encode(&[event(0)]);
        bad_version[8] = 99;
        let sum = fnv64(&bad_version[..bad_version.len() - 8]);
        let len = bad_version.len();
        bad_version[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode(&bad_version).unwrap_err(),
            TraceError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn chained_checksum_is_prefix_consistent() {
        let events: Vec<_> = (0..10).map(event).collect();
        let full = chain_events(&events);
        let mut h = chain_events(&events[..4]);
        for e in &events[4..] {
            h = chain_event(h, e);
        }
        assert_eq!(h, full);
        // Sensitive to content and order.
        let mut swapped = events.clone();
        swapped.swap(2, 3);
        assert_ne!(chain_events(&swapped), full);
    }

    #[test]
    fn diff_encoded_separates_corruption_from_divergence() {
        let events: Vec<_> = (0..6).map(event).collect();
        let bytes = encode(&events);
        assert!(diff_encoded(&bytes, &events).unwrap().is_none());
        let mut other = events.clone();
        other[3].digest ^= 1;
        assert_eq!(diff_encoded(&bytes, &other).unwrap().unwrap().index, 3);
        let mut corrupt = bytes.clone();
        corrupt[12] ^= 0xFF;
        assert!(diff_encoded(&corrupt, &events).is_err());
    }

    #[test]
    fn diff_reports_first_divergence_with_context() {
        let a: Vec<_> = (0..10).map(event).collect();
        let mut b = a.clone();
        assert!(diff(&a, &b).is_none());
        b[6].digest ^= 1;
        let d = diff(&a, &b).unwrap();
        assert_eq!(d.index, 6);
        assert_eq!(d.context.len(), CONTEXT_EVENTS);
        assert!(d.expected.is_some() && d.actual.is_some());
        // Length mismatch: divergence at the shorter trace's end.
        let d = diff(&a, &a[..4]).unwrap();
        assert_eq!(d.index, 4);
        assert!(d.actual.is_none());
        let shown = d.to_string();
        assert!(shown.contains("diverge at event 4"), "{shown}");
    }
}
