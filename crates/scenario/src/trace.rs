//! Structured trace recording and replay diffing.
//!
//! A *trace* is the time-ordered sequence of every frame delivery in one
//! trial, flattened to plain integers and strings ([`TraceEvent`]) so it
//! can be serialized to a compact binary journal ([`encode`]/[`decode`]),
//! checked into `results/` as a golden snapshot, and compared
//! event-by-event against a fresh run ([`diff`]). When a replay diverges,
//! the differ reports the first mismatching event with the events leading
//! up to it — turning any nondeterminism or protocol-visible behavior
//! change into a one-command repro.

use blackdp_sim::Time;

use crate::build::{build_scenario, harvest, stage_false_suspicion};
use crate::config::{ScenarioConfig, TrialSpec};
use crate::faults::FaultSpec;
use crate::journal::attach_journal;
use crate::metrics::TrialOutcome;

/// One delivered frame, flattened for serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Delivery time in virtual microseconds.
    pub at_micros: u64,
    /// Transmitting simulator node index.
    pub from: u32,
    /// Receiving simulator node index.
    pub to: u32,
    /// 0 = radio, 1 = wired backbone.
    pub channel: u8,
    /// The frame's link-layer source address.
    pub src: u64,
    /// The frame's link-layer destination (`None` = broadcast).
    pub dst: Option<u64>,
    /// The payload kind tag (`rreq`, `dreq`, …).
    pub kind: String,
    /// FNV-64 digest of the full wire payload.
    pub digest: u64,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ch = if self.channel == 0 { "radio" } else { "wired" };
        let dst = match self.dst {
            Some(d) => format!("{d:#x}"),
            None => "broadcast".into(),
        };
        write!(
            f,
            "t={}us n{}→n{} [{ch}] {} {:#x}→{dst} digest={:#018x}",
            self.at_micros, self.from, self.to, self.kind, self.src, self.digest
        )
    }
}

/// Runs one trial with a journal attached and returns its outcome plus
/// the full delivery trace.
pub fn record_trial(
    cfg: &ScenarioConfig,
    spec: &TrialSpec,
    faults: &FaultSpec,
) -> (TrialOutcome, Vec<TraceEvent>) {
    let mut built = build_scenario(cfg, spec);
    let plan = faults.realize(cfg, &built);
    if !plan.is_empty() {
        built.world.install_faults(plan);
    }
    let journal = attach_journal(&mut built);
    stage_false_suspicion(&mut built, spec);
    built.world.run_until(Time::ZERO + cfg.sim_duration);
    let outcome = harvest(cfg, spec, &built);
    let events = journal
        .borrow()
        .entries()
        .iter()
        .map(|e| TraceEvent {
            at_micros: e.at.as_micros(),
            from: e.from.index(),
            to: e.to.index(),
            channel: match e.channel {
                blackdp_sim::Channel::Radio => 0,
                blackdp_sim::Channel::Wired => 1,
            },
            src: e.src.0,
            dst: e.dst.map(|a| a.0),
            kind: e.kind.to_string(),
            digest: e.digest,
        })
        .collect();
    (outcome, events)
}

/// Magic prefix of the binary trace format.
const MAGIC: &[u8; 8] = b"BDPTRACE";
/// Format version; bump on any wire change.
const VERSION: u32 = 1;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Serializes a trace to the compact binary journal format: magic,
/// version, event count, fixed-layout records, and a trailing FNV-64
/// checksum over everything before it.
pub fn encode(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + events.len() * 48);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(events.len() as u64).to_le_bytes());
    for e in events {
        out.extend_from_slice(&e.at_micros.to_le_bytes());
        out.extend_from_slice(&e.from.to_le_bytes());
        out.extend_from_slice(&e.to.to_le_bytes());
        out.push(e.channel);
        match e.dst {
            Some(d) => {
                out.push(1);
                out.extend_from_slice(&d.to_le_bytes());
            }
            None => {
                out.push(0);
                out.extend_from_slice(&0u64.to_le_bytes());
            }
        }
        out.extend_from_slice(&e.src.to_le_bytes());
        let kind = e.kind.as_bytes();
        out.extend_from_slice(&(kind.len() as u16).to_le_bytes());
        out.extend_from_slice(kind);
        out.extend_from_slice(&e.digest.to_le_bytes());
    }
    let checksum = fnv64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Reads `N` bytes from the cursor, or fails with the field name.
fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize, what: &str) -> Result<&'a [u8], String> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| format!("trace truncated reading {what} at offset {pos}"))?;
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

fn u64_at(buf: &[u8], pos: &mut usize, what: &str) -> Result<u64, String> {
    Ok(u64::from_le_bytes(
        take(buf, pos, 8, what)?.try_into().unwrap(),
    ))
}

fn u32_at(buf: &[u8], pos: &mut usize, what: &str) -> Result<u32, String> {
    Ok(u32::from_le_bytes(
        take(buf, pos, 4, what)?.try_into().unwrap(),
    ))
}

/// Deserializes a binary trace, verifying magic, version, and checksum.
pub fn decode(bytes: &[u8]) -> Result<Vec<TraceEvent>, String> {
    if bytes.len() < MAGIC.len() + 4 + 8 + 8 {
        return Err("trace too short for header".into());
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap());
    let computed = fnv64(body);
    if stored != computed {
        return Err(format!(
            "trace checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        ));
    }
    let mut pos = 0usize;
    if take(body, &mut pos, MAGIC.len(), "magic")? != MAGIC {
        return Err("bad trace magic".into());
    }
    let version = u32_at(body, &mut pos, "version")?;
    if version != VERSION {
        return Err(format!("unsupported trace version {version}"));
    }
    let count = u64_at(body, &mut pos, "event count")? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 20));
    for i in 0..count {
        let at_micros = u64_at(body, &mut pos, "at")?;
        let from = u32_at(body, &mut pos, "from")?;
        let to = u32_at(body, &mut pos, "to")?;
        let channel = take(body, &mut pos, 1, "channel")?[0];
        let has_dst = take(body, &mut pos, 1, "dst flag")?[0];
        let dst_raw = u64_at(body, &mut pos, "dst")?;
        let src = u64_at(body, &mut pos, "src")?;
        let kind_len = u16::from_le_bytes(take(body, &mut pos, 2, "kind len")?.try_into().unwrap());
        let kind = String::from_utf8(take(body, &mut pos, kind_len as usize, "kind")?.to_vec())
            .map_err(|_| format!("event {i}: kind is not UTF-8"))?;
        let digest = u64_at(body, &mut pos, "digest")?;
        events.push(TraceEvent {
            at_micros,
            from,
            to,
            channel,
            src,
            dst: (has_dst != 0).then_some(dst_raw),
            kind,
            digest,
        });
    }
    if pos != body.len() {
        return Err(format!(
            "{} trailing bytes after {count} events",
            body.len() - pos
        ));
    }
    Ok(events)
}

/// The first point where two traces disagree.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index of the first mismatching event.
    pub index: usize,
    /// What the recorded trace expected there (`None` = recorded trace
    /// ended first).
    pub expected: Option<TraceEvent>,
    /// What the fresh run produced there (`None` = fresh run ended first).
    pub actual: Option<TraceEvent>,
    /// The last few matching events before the divergence, rendered.
    pub context: Vec<String>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "traces diverge at event {}", self.index)?;
        for line in &self.context {
            writeln!(f, "    … {line}")?;
        }
        match &self.expected {
            Some(e) => writeln!(f, "  expected: {e}")?,
            None => writeln!(f, "  expected: <end of recorded trace>")?,
        }
        match &self.actual {
            Some(a) => write!(f, "  actual:   {a}"),
            None => write!(f, "  actual:   <end of fresh run>"),
        }
    }
}

/// How many matching events to show before a divergence.
const CONTEXT_EVENTS: usize = 3;

/// Compares two traces event-by-event; `None` means identical.
pub fn diff(expected: &[TraceEvent], actual: &[TraceEvent]) -> Option<Divergence> {
    let limit = expected.len().max(actual.len());
    for i in 0..limit {
        if expected.get(i) == actual.get(i) {
            continue;
        }
        let start = i.saturating_sub(CONTEXT_EVENTS);
        return Some(Divergence {
            index: i,
            expected: expected.get(i).cloned(),
            actual: actual.get(i).cloned(),
            context: expected[start..i].iter().map(|e| e.to_string()).collect(),
        });
    }
    None
}

/// Re-runs the trial and diffs its trace against a recorded one; `None`
/// means the replay was bit-identical.
pub fn replay_divergence(
    cfg: &ScenarioConfig,
    spec: &TrialSpec,
    faults: &FaultSpec,
    recorded: &[TraceEvent],
) -> Option<Divergence> {
    let (_, fresh) = record_trial(cfg, spec, faults);
    diff(recorded, &fresh)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(i: u64) -> TraceEvent {
        TraceEvent {
            at_micros: i * 100,
            from: i as u32,
            to: (i + 1) as u32,
            channel: (i % 2) as u8,
            src: 0x1000 + i,
            dst: i.is_multiple_of(3).then_some(0x2000 + i),
            kind: if i.is_multiple_of(2) { "rreq".into() } else { "data".into() },
            digest: 0xABCD_0000 + i,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let events: Vec<_> = (0..17).map(event).collect();
        let bytes = encode(&events);
        assert_eq!(decode(&bytes).unwrap(), events);
        assert!(decode(&encode(&[])).unwrap().is_empty());
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut bytes = encode(&(0..5).map(event).collect::<Vec<_>>());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = decode(&bytes).unwrap_err();
        assert!(err.contains("checksum"), "unexpected error: {err}");
        let short = &bytes[..10];
        assert!(decode(short).is_err());
    }

    #[test]
    fn diff_reports_first_divergence_with_context() {
        let a: Vec<_> = (0..10).map(event).collect();
        let mut b = a.clone();
        assert!(diff(&a, &b).is_none());
        b[6].digest ^= 1;
        let d = diff(&a, &b).unwrap();
        assert_eq!(d.index, 6);
        assert_eq!(d.context.len(), CONTEXT_EVENTS);
        assert!(d.expected.is_some() && d.actual.is_some());
        // Length mismatch: divergence at the shorter trace's end.
        let d = diff(&a, &a[..4]).unwrap();
        assert_eq!(d.index, 4);
        assert!(d.actual.is_none());
        let shown = d.to_string();
        assert!(shown.contains("diverge at event 4"), "{shown}");
    }
}
