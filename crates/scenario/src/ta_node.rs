//! The simulated trusted-authority node: wired backbone only.

use blackdp::{AuthorityNode, TaAction, TaEvent, Wire};
use blackdp_aodv::Addr;
use blackdp_sim::{Channel, Context, Node, NodeId, Position, Time};

use crate::directory::WiredDirectory;
use crate::frame::{Frame, Tick};

/// A trusted-authority node. Has no radio: it lives off-highway and talks
/// only over the wired backbone.
pub struct TaNode {
    node: AuthorityNode,
    addr: Addr,
    dir: WiredDirectory,
    events: Vec<TaEvent>,
}

impl std::fmt::Debug for TaNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaNode")
            .field("ta", &self.node.id())
            .field("events", &self.events.len())
            .finish()
    }
}

impl TaNode {
    /// Creates the node. `addr` is its backbone address (used to recognise
    /// peer-TA traffic).
    pub fn new(node: AuthorityNode, addr: Addr) -> Self {
        TaNode {
            node,
            addr,
            dir: WiredDirectory::new(),
            events: Vec::new(),
        }
    }

    /// This authority's backbone address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Installs the wired-backbone directory.
    pub fn set_directory(&mut self, dir: WiredDirectory) {
        self.dir = dir;
    }

    /// The wrapped authority logic.
    pub fn authority(&self) -> &AuthorityNode {
        &self.node
    }

    /// Mutable access (scenario setup enrolls vehicles through this).
    pub fn authority_mut(&mut self) -> &mut AuthorityNode {
        &mut self.node
    }

    /// Observed events.
    pub fn events(&self) -> &[TaEvent] {
        &self.events
    }

    fn run_ta_actions(&mut self, ctx: &mut Context<'_, Frame, Tick>, actions: Vec<TaAction>) {
        for action in actions {
            match action {
                TaAction::WiredCh { cluster, msg } => {
                    if let Some(node) = self.dir.ch(cluster) {
                        ctx.send_wired(
                            node,
                            Frame {
                                src: self.addr,
                                dst: None,
                                wire: Wire::BlackDp(msg),
                            },
                        );
                    } else {
                        ctx.count("ta.wired_unknown_ch");
                    }
                }
                TaAction::WiredTa { ta, msg } => {
                    if let Some(node) = self.dir.ta(ta) {
                        ctx.send_wired(
                            node,
                            Frame {
                                src: self.addr,
                                dst: None,
                                wire: Wire::BlackDp(msg),
                            },
                        );
                    } else {
                        ctx.count("ta.wired_unknown_ta");
                    }
                }
                TaAction::Event(e) => {
                    ctx.count("ta.event");
                    self.events.push(e);
                }
            }
        }
    }
}

impl Node<Frame, Tick> for TaNode {
    fn position(&self, _now: Time) -> Position {
        // Far off the highway plane: unreachable by radio by construction.
        Position::new(-1.0e7, -1.0e7)
    }

    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        _from: NodeId,
        frame: Frame,
        channel: Channel,
    ) {
        if channel != Channel::Wired {
            return; // authorities have no radio
        }
        let now = ctx.now();
        let from_peer = self.dir.is_ta_addr(frame.src);
        if let Wire::BlackDp(msg) = frame.wire {
            let actions = self.node.handle(msg, from_peer, now);
            self.run_ta_actions(ctx, actions);
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, Frame, Tick>, _token: Tick) {}
}
