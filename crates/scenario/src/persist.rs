//! Crash-safe file persistence.
//!
//! Every artifact the campaign machinery writes (trace journals, benchmark
//! JSON, orchestrator batch results) goes through [`atomic_write`]: the bytes
//! land in a temporary file in the *same directory*, are fsynced, and only
//! then renamed over the destination. A reader therefore observes either the
//! old file, the new file, or no file — never a torn prefix. The orchestrator
//! leans on this: the mere *presence* of a batch result file proves the
//! worker finished it, so resume-after-SIGKILL can trust whatever is on disk.

use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone per-process counter folded into temp names so two writers inside
/// the *same* process (orchestrator threads, work-stealing twins, daemon
/// progress writers) never share a temp file.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, rename, best-effort directory sync.
///
/// Parent directories are created if missing. The temp file name is derived
/// from the destination plus a `.tmp.<pid>.<seq>` suffix — pid separates
/// processes, the per-process counter separates concurrent writers within one
/// process (a pid-only suffix let same-process writers of the same artifact
/// truncate each other's temp file mid-write). Writers of the same
/// destination then race only at the rename, which is atomic. The temp file
/// is removed on every error path.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    fs::create_dir_all(&dir)?;
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = dir.join(tmp_name);

    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
        return result;
    }

    // Durability of the rename itself needs the directory synced; platforms
    // that refuse to fsync a directory handle (or sandboxed filesystems)
    // still gave us atomicity above, so failures here are non-fatal.
    if let Ok(d) = fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("blackdp_persist_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = tmp_dir("basic");
        let path = dir.join("nested").join("out.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No stray temp files left behind.
        let leftovers: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("out.bin")]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_directory_destination() {
        let dir = tmp_dir("dirdest");
        fs::create_dir_all(&dir).unwrap();
        assert!(atomic_write(&dir, b"x").is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_same_destination_writers_never_tear() {
        // Regression: with a pid-only temp suffix, same-process writers of
        // one destination shared a temp file — one writer's File::create
        // truncated the other's half-written bytes, and the loser's rename
        // could publish a torn file. Unique per-writer temp names make every
        // interleaving publish some writer's complete payload.
        let dir = tmp_dir("race");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.bin");
        let payload = |tag: u8| vec![tag; 64 * 1024];

        let mut handles = Vec::new();
        for tag in 0u8..8 {
            let path = path.clone();
            let bytes = payload(tag);
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    atomic_write(&path, &bytes).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let observed = fs::read(&path).unwrap();
        assert_eq!(observed.len(), 64 * 1024, "file must never be torn");
        assert!(
            observed.windows(2).all(|w| w[0] == w[1]),
            "file must be exactly one writer's payload, not an interleaving"
        );
        // Every temp file was cleaned up (renamed away or removed on error).
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("shared.bin")]);
        let _ = fs::remove_dir_all(&dir);
    }
}
