//! The simulated attacker vehicle: a [`BlackHole`] brain plus the
//! legitimate-looking mobility and membership behaviour that keeps it
//! registered (and therefore probe-able) in the cluster structure, and the
//! evasion behaviours of the certificate-renewal zone.

use blackdp::{BlackDpMessage, JoinBody, Sealed, Wire};
use blackdp_aodv::{Addr, Message as AodvMessage};
use blackdp_attacks::{AttackerAction, BlackHole, EvasionPolicy};
use blackdp_crypto::{Keypair, TaId};
use blackdp_mobility::{ClusterId, ClusterPlan, Trajectory};
use blackdp_sim::{Channel, Context, Duration, Node, NodeId, Position, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::frame::{broadcast_wire, send_wire, Frame, L2Cache, Tick};

/// Scenario-level behaviour knobs for the attacker vehicle.
#[derive(Debug, Clone)]
pub struct AttackerNodeConfig {
    /// Tick cadence.
    pub tick: Duration,
    /// Hello beacon interval (mimics honest nodes).
    pub hello_interval: Duration,
    /// Clusters designated as the certificate-renewal zone (paper:
    /// clusters 8–10), where the evasion policy activates.
    pub renewal_zone: (u32, u32),
    /// Departs to the next cluster right after answering the first
    /// detection probe — the mobility that produces the paper's 8/9-packet
    /// Figure 5 scenarios.
    pub move_after_probe: bool,
}

impl Default for AttackerNodeConfig {
    fn default() -> Self {
        AttackerNodeConfig {
            tick: Duration::from_millis(100),
            hello_interval: Duration::from_secs(1),
            renewal_zone: (8, 10),
            move_after_probe: false,
        }
    }
}

/// The attacker vehicle node.
pub struct AttackerNode {
    bh: BlackHole,
    trajectory: Trajectory,
    plan: ClusterPlan,
    cfg: AttackerNodeConfig,
    issuer: TaId,
    l2: L2Cache,
    cluster: Option<ClusterId>,
    ch_addr: Option<Addr>,
    ch_epoch: Option<u64>,
    join_pending_since: Option<Time>,
    pending_renew: Option<Keypair>,
    renewed: bool,
    addr_history: Vec<Addr>,
    move_pending: bool,
    fled: bool,
    rng: StdRng,
}

impl std::fmt::Debug for AttackerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackerNode")
            .field("addr", &self.bh.addr())
            .field("cluster", &self.cluster)
            .finish()
    }
}

impl AttackerNode {
    /// Creates the attacker vehicle.
    pub fn new(
        bh: BlackHole,
        trajectory: Trajectory,
        plan: ClusterPlan,
        issuer: TaId,
        cfg: AttackerNodeConfig,
        seed: u64,
    ) -> Self {
        let addr = bh.addr();
        AttackerNode {
            bh,
            trajectory,
            plan,
            cfg,
            issuer,
            l2: L2Cache::new(),
            cluster: None,
            ch_addr: None,
            ch_epoch: None,
            join_pending_since: None,
            pending_renew: None,
            renewed: false,
            addr_history: vec![addr],
            move_pending: false,
            fled: false,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Every protocol address this attacker has ever used (for metrics:
    /// a confirmation against any of them counts as a true positive).
    pub fn addr_history(&self) -> &[Addr] {
        &self.addr_history
    }

    /// The attacker's current address.
    pub fn addr(&self) -> Addr {
        self.bh.addr()
    }

    /// Data packets dropped by the black hole.
    pub fn dropped_count(&self) -> u64 {
        self.bh.dropped_count()
    }

    /// Victims lured.
    pub fn lured_count(&self) -> u64 {
        self.bh.lured_count()
    }

    /// True if the attacker fled the network.
    pub fn has_fled(&self) -> bool {
        self.fled
    }

    /// Read access to the black hole brain (for assertions in tests).
    pub fn brain(&self) -> &BlackHole {
        &self.bh
    }

    fn evasion(&self) -> EvasionPolicy {
        self.bh.config().evasion
    }

    fn in_renewal_zone(&self, now: Time) -> bool {
        let pos = self.trajectory.position_at(now);
        self.plan
            .cluster_of(pos)
            .map(|c| (self.cfg.renewal_zone.0..=self.cfg.renewal_zone.1).contains(&c.0))
            .unwrap_or(false)
    }

    fn run_attacker_actions(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        actions: Vec<AttackerAction>,
    ) {
        let my = self.bh.addr();
        for action in actions {
            match action {
                AttackerAction::SendTo { to, wire } => {
                    send_wire(ctx, &self.l2, my, to, wire);
                }
                AttackerAction::Broadcast { wire } => broadcast_wire(ctx, my, wire),
                AttackerAction::Event(_) => ctx.count("attacker.event"),
            }
        }
    }

    /// Sends Leave + JREQ as the vehicle crosses (or pretends to cross)
    /// into the next cluster.
    fn rejoin(&mut self, ctx: &mut Context<'_, Frame, Tick>, target: Option<ClusterId>) {
        let now = ctx.now();
        if let (Some(_), Some(ch)) = (self.cluster, self.ch_addr) {
            let my = self.bh.addr();
            send_wire(
                ctx,
                &self.l2,
                my,
                ch,
                Wire::BlackDp(BlackDpMessage::Leave {
                    vehicle: self.bh.pseudonym(),
                }),
            );
            self.cluster = None;
            self.ch_addr = None;
            self.bh.set_cluster(None);
        }
        let pos = self.trajectory.position_at(now);
        // If moving "into" a target cluster, present a position just over
        // the boundary (the attacker is near it anyway).
        let claimed_x = match target {
            Some(c) => ((c.0 as f64 - 1.0) * self.plan.cluster_len_m() + 10.0).max(pos.x),
            None => pos.x,
        };
        let body = JoinBody {
            pos_x: claimed_x,
            pos_y: pos.y,
            speed_kmh: self.trajectory.speed().0,
            forward: true,
        };
        let sealed = Sealed::seal(body, *self.bh.cert(), None, self.bh.keys(), &mut self.rng);
        broadcast_wire(
            ctx,
            self.bh.addr(),
            Wire::BlackDp(BlackDpMessage::Jreq(sealed)),
        );
        self.join_pending_since = Some(now);
    }

    fn membership_tick(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        let now = ctx.now();
        let pos = self.trajectory.position_at(now);
        let here = self.plan.cluster_of(pos);
        if here == self.cluster && self.cluster.is_some() {
            return;
        }
        if let Some(since) = self.join_pending_since {
            if now.saturating_since(since) < Duration::from_millis(500) {
                return;
            }
        }
        self.rejoin(ctx, None);
    }

    fn renewal_tick(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        let now = ctx.now();
        let in_zone = self.in_renewal_zone(now);
        match self.evasion() {
            EvasionPolicy::ActLegitimately => {
                // Dormant inside the zone, attacking outside it.
                self.bh.set_dormant(in_zone);
            }
            EvasionPolicy::RenewIdentity => {
                if in_zone && !self.renewed && self.pending_renew.is_none() {
                    if let Some(ch) = self.ch_addr {
                        let keys = Keypair::generate(&mut self.rng);
                        let my = self.bh.addr();
                        send_wire(
                            ctx,
                            &self.l2,
                            my,
                            ch,
                            Wire::BlackDp(BlackDpMessage::RenewRequest {
                                current: self.bh.pseudonym(),
                                issuer: self.issuer,
                                new_key: keys.public(),
                                reply_cluster: self.cluster.unwrap_or(ClusterId(0)),
                            }),
                        );
                        self.pending_renew = Some(keys);
                        ctx.count("attacker.renew_requested");
                    }
                }
            }
            EvasionPolicy::None | EvasionPolicy::Flee => {}
        }
    }
}

impl Node<Frame, Tick> for AttackerNode {
    fn position(&self, now: Time) -> Position {
        self.trajectory.position_at(now)
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        let phase = Duration::from_micros(u64::from(ctx.self_id().index()) * 991 % 50_000);
        ctx.set_timer(self.cfg.tick + phase, Tick);
    }

    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        from: NodeId,
        frame: Frame,
        _channel: Channel,
    ) {
        let now = ctx.now();
        if let Some(dst) = frame.dst {
            if dst != self.bh.addr() {
                return;
            }
        }
        self.l2.learn(frame.src, from);

        // Evasion hooks before the brain reacts.
        if let Wire::Aodv(AodvMessage::Rreq(rreq)) = &frame.wire {
            let looks_like_probe = rreq.ttl <= 1;
            if looks_like_probe {
                ctx.count("attacker.probe_seen");
                if self.evasion() == EvasionPolicy::Flee && self.in_renewal_zone(now) {
                    // "The attacker fled from the network ... without
                    // responding to the RSU detection packets."
                    ctx.count("attacker.fled");
                    self.fled = true;
                    ctx.despawn();
                    return;
                }
                if self.cfg.move_after_probe {
                    self.move_pending = true;
                }
            }
        }

        // Membership / renewal plumbing the brain doesn't own.
        match &frame.wire {
            Wire::BlackDp(BlackDpMessage::Jrep {
                cluster,
                ch_addr,
                epoch,
                ..
            }) => {
                self.cluster = Some(*cluster);
                self.ch_addr = Some(*ch_addr);
                self.ch_epoch = Some(*epoch);
                self.join_pending_since = None;
                self.bh.set_cluster(Some(*cluster));
                return;
            }
            Wire::BlackDp(BlackDpMessage::Resync { cluster, epoch, .. }) => {
                // The CH rebooted and forgot us. Re-registering keeps the
                // attacker looking legitimate (and probe-able).
                if self.cluster == Some(*cluster) && self.ch_epoch != Some(*epoch) {
                    self.cluster = None;
                    self.ch_addr = None;
                    self.ch_epoch = None;
                    self.join_pending_since = None;
                    self.bh.set_cluster(None);
                }
                return;
            }
            Wire::BlackDp(BlackDpMessage::RenewReply { current, cert }) => {
                if *current == self.bh.pseudonym() {
                    match (cert, self.pending_renew.take()) {
                        (Some(new_cert), Some(keys)) => {
                            ctx.count("attacker.renewed");
                            self.renewed = true;
                            self.bh.renew_identity(keys, *new_cert);
                            self.addr_history.push(self.bh.addr());
                            // Re-register under the fresh pseudonym.
                            self.rejoin(ctx, None);
                        }
                        _ => ctx.count("attacker.renewal_refused"),
                    }
                }
                return;
            }
            _ => {}
        }

        let actions = self.bh.handle_wire(frame.src, &frame.wire, now);
        self.run_attacker_actions(ctx, actions);

        // Cross into the next cluster right after answering the probe
        // (Figure 5's moving-suspect scenarios).
        if self.move_pending {
            self.move_pending = false;
            self.cfg.move_after_probe = false; // once
            let next = self
                .cluster
                .map(|c| ClusterId(c.0 + 1))
                .filter(|c| c.0 <= self.plan.cluster_count());
            if next.is_some() {
                ctx.count("attacker.moved_mid_detection");
                self.rejoin(ctx, next);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Frame, Tick>, _token: Tick) {
        let now = ctx.now();
        if self.trajectory.has_exited(self.plan.highway(), now) {
            // Malicious nodes do not bother to deregister.
            self.fled = true;
            ctx.despawn();
            return;
        }
        self.membership_tick(ctx);
        self.renewal_tick(ctx);
        let actions = self.bh.tick(now, self.cfg.hello_interval);
        self.run_attacker_actions(ctx, actions);
        ctx.set_timer(self.cfg.tick, Tick);
    }
}
