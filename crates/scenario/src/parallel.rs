//! Order-preserving parallel trial execution.
//!
//! Experiment sweeps run many *independent* trials: every trial derives its
//! own seed from the repetition index and builds its own world, so trials
//! share no mutable state. That makes them embarrassingly parallel — as
//! long as results come back in the serial order, the output of a sweep is
//! **bit-identical** to the single-threaded loop it replaces.
//!
//! [`parallel_map`] provides exactly that contract: items are claimed from
//! an atomic counter by scoped `std::thread` workers, each result is tagged
//! with its input index, and the merged output is sorted back into input
//! order. Thread scheduling can change *when* a trial runs, never *what* it
//! computes or *where* its result lands.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads sweeps use. Delegates to the engine-wide
/// [`blackdp_sim::thread_budget`] (the `BLACKDP_THREADS` environment
/// variable when set to ≥ 1, otherwise the machine's available
/// parallelism), so sweep workers and shard rebuild workers draw from the
/// **same** budget instead of each claiming every core — the PR-8 fix for
/// `BLACKDP_THREADS` only governing sweeps.
pub fn worker_count() -> usize {
    blackdp_sim::thread_budget()
}

/// Maps `f` over `items` on [`worker_count`] threads, returning results in
/// input order — bit-identical to `items.iter().map(f).collect()`.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with(worker_count(), items, f)
}

/// [`parallel_map`] with an explicit worker count (1 = plain serial loop).
pub fn parallel_map_with<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let f = &f;
    let next = &next;
    let mut tagged: Vec<(usize, U)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 200] {
            assert_eq!(
                parallel_map_with(workers, &items, |x| x * x),
                expected,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_with(4, &empty, |x| *x).is_empty());
        assert_eq!(parallel_map_with(4, &[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn matches_serial_for_stateful_per_item_work() {
        // Each item seeds its own RNG — the per-trial pattern sweeps use.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let seeds: Vec<u64> = (0..40).collect();
        let draw = |&seed: &u64| StdRng::seed_from_u64(seed).random::<u64>();
        let serial: Vec<u64> = seeds.iter().map(draw).collect();
        assert_eq!(parallel_map_with(4, &seeds, draw), serial);
    }
}
