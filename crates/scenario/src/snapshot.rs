//! Event-sourced checkpoint/restore for trials.
//!
//! The simulator is deterministic: a trial is fully determined by its
//! generative inputs (config, spec, fault plan). A [`Snapshot`] therefore
//! never serializes the object graph — boxed `dyn` nodes, queued frames —
//! it records a *fingerprint* of the inputs plus, at every checkpoint
//! boundary, a compact **witness** ([`CheckpointStamp`]): the engine stamp
//! (virtual clock, scheduler counters, RNG state, stats and node digests)
//! and a chained checksum over the trace prefix produced so far.
//!
//! Restoring ([`resume_trial`]) rebuilds the scenario and replays
//! deterministically to the checkpoint boundary using the *identical*
//! interval-stepping procedure the recorder used, verifying every witness
//! on the way; any mismatch is a structured [`ResumeError`], not silent
//! divergence. The replay differ ([`bisect_divergence`]) uses the per-stamp
//! chained checksums to bound the divergent interval in O(#checkpoints)
//! comparisons and fine-diffs only that window, instead of scanning the
//! whole trace pair from t = 0.
//!
//! Stepping a world `run_until(t₁); run_until(t₂)` is equivalent to
//! `run_until(t₂)`: the event queue is monotonic, fault transitions drain
//! per interval in time order, and the clock merely floors forward at each
//! deadline. Checkpoint boundaries are therefore observationally free.

use blackdp_sim::{Duration, EngineStamp, Time};

use crate::build::{build_scenario, harvest, stage_false_suspicion, BuiltScenario};
use crate::config::{ScenarioConfig, TrialSpec};
use crate::faults::FaultSpec;
use crate::journal::{attach_journal, JournalHandle};
use crate::metrics::TrialOutcome;
use crate::trace::{chain_event, entry_to_event, fnv64_continue, Divergence, FNV_OFFSET};
use crate::trace::{diff as diff_traces, TraceEvent};

/// Magic prefix of the binary snapshot format.
const MAGIC: &[u8; 8] = b"BDPSNAP\x01";
/// Format version; bump on any wire change.
const VERSION: u32 = 1;

/// The witness captured at one checkpoint boundary.
///
/// A stamp proves two things about the run at `at_micros`: the engine was
/// in exactly this state (clock, scheduler, RNG, stats, per-node digests),
/// and the journal held exactly `events` deliveries whose chained FNV
/// checksum is `chained`. A resumed run reproducing all fields has
/// provably retraced the original prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStamp {
    /// Position of this checkpoint in the boundary schedule (0-based).
    pub index: u32,
    /// The boundary's virtual time in microseconds.
    pub at_micros: u64,
    /// Trace events delivered up to (and including) the boundary.
    pub events: u64,
    /// Chained FNV-64 checksum over those events, in order.
    pub chained: u64,
    /// xoshiro256++ engine RNG state words.
    pub rng_state: [u64; 4],
    /// Total occurrences ever scheduled (queue sequence counter).
    pub scheduled: u64,
    /// Occurrences still pending in the queue.
    pub pending: u64,
    /// Timers ever armed (timer id counter).
    pub timers_armed: u64,
    /// Digest of the statistics counters.
    pub stats_digest: u64,
    /// Fold of per-node state digests and slot liveness.
    pub node_digest: u64,
    /// Active (spawned, not despawned/crashed) node count.
    pub active_nodes: u32,
}

impl CheckpointStamp {
    fn from_engine(index: u32, at_micros: u64, events: u64, chained: u64, es: &EngineStamp) -> Self {
        CheckpointStamp {
            index,
            at_micros,
            events,
            chained,
            rng_state: es.rng_state,
            scheduled: es.scheduled,
            pending: es.pending,
            timers_armed: es.timers_armed,
            stats_digest: es.stats_digest,
            node_digest: es.node_digest,
            active_nodes: es.active_nodes,
        }
    }

    /// Checks a freshly replayed boundary against this witness; returns the
    /// first mismatching field's name.
    fn check(&self, es: &EngineStamp, events: u64, chained: u64) -> Result<(), &'static str> {
        if es.now_micros != self.at_micros {
            return Err("now_micros");
        }
        if events != self.events {
            return Err("events");
        }
        if chained != self.chained {
            return Err("chained");
        }
        if es.rng_state != self.rng_state {
            return Err("rng_state");
        }
        if es.scheduled != self.scheduled {
            return Err("scheduled");
        }
        if es.pending != self.pending {
            return Err("pending");
        }
        if es.timers_armed != self.timers_armed {
            return Err("timers_armed");
        }
        if es.stats_digest != self.stats_digest {
            return Err("stats_digest");
        }
        if es.node_digest != self.node_digest {
            return Err("node_digest");
        }
        if es.active_nodes != self.active_nodes {
            return Err("active_nodes");
        }
        Ok(())
    }
}

/// A versioned, checksummed sequence of checkpoint witnesses for one trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Fingerprint of the generative inputs (config, spec, faults).
    pub fingerprint: u64,
    /// Checkpoint interval in virtual microseconds.
    pub interval_micros: u64,
    /// The trial horizon (`sim_duration`) in virtual microseconds.
    pub horizon_micros: u64,
    /// Witnesses in boundary order; the last one sits at the horizon.
    pub stamps: Vec<CheckpointStamp>,
}

impl Snapshot {
    /// Serializes to the binary snapshot format: magic, version, header,
    /// fixed-layout stamps, trailing FNV-64 checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48 + self.stamps.len() * 96);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&self.interval_micros.to_le_bytes());
        out.extend_from_slice(&self.horizon_micros.to_le_bytes());
        out.extend_from_slice(&(self.stamps.len() as u64).to_le_bytes());
        for s in &self.stamps {
            out.extend_from_slice(&s.index.to_le_bytes());
            out.extend_from_slice(&s.at_micros.to_le_bytes());
            out.extend_from_slice(&s.events.to_le_bytes());
            out.extend_from_slice(&s.chained.to_le_bytes());
            for w in s.rng_state {
                out.extend_from_slice(&w.to_le_bytes());
            }
            out.extend_from_slice(&s.scheduled.to_le_bytes());
            out.extend_from_slice(&s.pending.to_le_bytes());
            out.extend_from_slice(&s.timers_armed.to_le_bytes());
            out.extend_from_slice(&s.stats_digest.to_le_bytes());
            out.extend_from_slice(&s.node_digest.to_le_bytes());
            out.extend_from_slice(&s.active_nodes.to_le_bytes());
        }
        let checksum = fnv64_continue(FNV_OFFSET, &out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserializes, verifying magic, version, and checksum.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < MAGIC.len() + 4 + 8 * 4 + 8 {
            return Err(SnapshotError::TooShort { len: bytes.len() });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().unwrap());
        let computed = fnv64_continue(FNV_OFFSET, body);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let mut pos = 0usize;
        if take(body, &mut pos, MAGIC.len(), "magic")? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(take(body, &mut pos, 4, "version")?.try_into().unwrap());
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let fingerprint = u64_at(body, &mut pos, "fingerprint")?;
        let interval_micros = u64_at(body, &mut pos, "interval")?;
        let horizon_micros = u64_at(body, &mut pos, "horizon")?;
        let count = u64_at(body, &mut pos, "stamp count")? as usize;
        let mut stamps = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let index = u32::from_le_bytes(take(body, &mut pos, 4, "index")?.try_into().unwrap());
            let at_micros = u64_at(body, &mut pos, "at")?;
            let events = u64_at(body, &mut pos, "events")?;
            let chained = u64_at(body, &mut pos, "chained")?;
            let mut rng_state = [0u64; 4];
            for w in &mut rng_state {
                *w = u64_at(body, &mut pos, "rng state")?;
            }
            let scheduled = u64_at(body, &mut pos, "scheduled")?;
            let pending = u64_at(body, &mut pos, "pending")?;
            let timers_armed = u64_at(body, &mut pos, "timers armed")?;
            let stats_digest = u64_at(body, &mut pos, "stats digest")?;
            let node_digest = u64_at(body, &mut pos, "node digest")?;
            let active_nodes =
                u32::from_le_bytes(take(body, &mut pos, 4, "active nodes")?.try_into().unwrap());
            stamps.push(CheckpointStamp {
                index,
                at_micros,
                events,
                chained,
                rng_state,
                scheduled,
                pending,
                timers_armed,
                stats_digest,
                node_digest,
                active_nodes,
            });
        }
        if pos != body.len() {
            return Err(SnapshotError::TrailingBytes {
                extra: body.len() - pos,
            });
        }
        Ok(Snapshot {
            fingerprint,
            interval_micros,
            horizon_micros,
            stamps,
        })
    }
}

/// Why a binary snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer bytes than the fixed header + checksum require.
    TooShort {
        /// Actual byte length of the input.
        len: usize,
    },
    /// The trailing FNV-64 checksum does not match the body.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the body.
        computed: u64,
    },
    /// The file does not start with the `BDPSNAP` magic.
    BadMagic,
    /// The version field names a format this build cannot read.
    UnsupportedVersion(u32),
    /// The body ended in the middle of a field.
    Truncated {
        /// Which field was being read.
        what: &'static str,
        /// Byte offset where the read started.
        offset: usize,
    },
    /// Bytes remain after the declared stamp count was read.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::TooShort { len } => {
                write!(f, "snapshot too short for header: {len} bytes")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::BadMagic => write!(f, "bad snapshot magic"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::Truncated { what, offset } => {
                write!(f, "snapshot truncated reading {what} at offset {offset}")
            }
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after snapshot stamps")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

fn take<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    n: usize,
    what: &'static str,
) -> Result<&'a [u8], SnapshotError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or(SnapshotError::Truncated { what, offset: *pos })?;
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

fn u64_at(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, SnapshotError> {
    Ok(u64::from_le_bytes(
        take(buf, pos, 8, what)?.try_into().unwrap(),
    ))
}

/// Fingerprints a trial's generative inputs.
///
/// Config, spec, and fault plan fully determine a trial, so their debug
/// renderings (stable, total, derive-generated) make a sound identity: a
/// snapshot only ever resumes the exact trial that produced it.
pub fn trial_fingerprint(cfg: &ScenarioConfig, spec: &TrialSpec, faults: &FaultSpec) -> u64 {
    // The execution backend, neighbor index, and executor are throughput
    // knobs that cannot change a single output byte, so they are normalized
    // out of the fingerprint: a snapshot recorded under the serial backend
    // (or executor) must resume under a sharded/windowed one and vice versa.
    let mut cfg = cfg.clone();
    cfg.backend = blackdp_sim::WorldBackend::Serial;
    cfg.neighbor_index = blackdp_sim::NeighborIndex::Grid;
    cfg.executor = blackdp_sim::ExecutorMode::Serial;
    let cfg = &cfg;
    let mut h = fnv64_continue(FNV_OFFSET, format!("{cfg:?}").as_bytes());
    h = fnv64_continue(h, b"|");
    h = fnv64_continue(h, format!("{spec:?}").as_bytes());
    h = fnv64_continue(h, b"|");
    fnv64_continue(h, format!("{faults:?}").as_bytes())
}

/// The checkpoint boundary schedule: every `interval` up to the horizon,
/// with the horizon itself always the final boundary.
fn boundaries(interval_micros: u64, horizon_micros: u64) -> Vec<u64> {
    let step = interval_micros.max(1);
    let mut out = Vec::new();
    let mut t = step;
    while t < horizon_micros {
        out.push(t);
        t += step;
    }
    out.push(horizon_micros);
    out
}

/// Builds the scenario exactly as [`crate::record_trial`] does, journal
/// attached and false-suspicion staging applied, ready to step.
fn build_for_stepping(
    cfg: &ScenarioConfig,
    spec: &TrialSpec,
    faults: &FaultSpec,
) -> (BuiltScenario, JournalHandle) {
    let mut built = build_scenario(cfg, spec);
    let plan = faults.realize(cfg, &built);
    if !plan.is_empty() {
        built.world.install_faults(plan);
    }
    let journal = attach_journal(&mut built);
    stage_false_suspicion(&mut built, spec);
    (built, journal)
}

/// Advances the world to boundary `t` and folds the new journal entries
/// into the running chain; returns the updated (seen, chained) cursor.
fn step_to(
    built: &mut BuiltScenario,
    journal: &JournalHandle,
    t: u64,
    mut seen: usize,
    mut chained: u64,
) -> (usize, u64) {
    built.world.run_until(Time::ZERO + Duration::from_micros(t));
    let j = journal.borrow();
    let entries = j.entries();
    for e in &entries[seen..] {
        chained = chain_event(chained, &entry_to_event(e));
    }
    seen = entries.len();
    (seen, chained)
}

/// Runs one trial capturing a checkpoint witness every `interval` of
/// virtual time, returning the outcome, the full trace, and the snapshot.
///
/// The outcome and trace are bit-identical to [`crate::record_trial`] on
/// the same inputs — interval stepping is observationally free.
pub fn record_trial_with_checkpoints(
    cfg: &ScenarioConfig,
    spec: &TrialSpec,
    faults: &FaultSpec,
    interval: Duration,
) -> (TrialOutcome, Vec<TraceEvent>, Snapshot) {
    let horizon = cfg.sim_duration.as_micros();
    let (mut built, journal) = build_for_stepping(cfg, spec, faults);
    let mut stamps = Vec::new();
    let mut seen = 0usize;
    let mut chained = FNV_OFFSET;
    for (i, &t) in boundaries(interval.as_micros(), horizon).iter().enumerate() {
        (seen, chained) = step_to(&mut built, &journal, t, seen, chained);
        let es = built.world.engine_stamp();
        stamps.push(CheckpointStamp::from_engine(
            i as u32, t, seen as u64, chained, &es,
        ));
    }
    let outcome = harvest(cfg, spec, &built);
    let events = journal.borrow().entries().iter().map(entry_to_event).collect();
    let snapshot = Snapshot {
        fingerprint: trial_fingerprint(cfg, spec, faults),
        interval_micros: interval.as_micros(),
        horizon_micros: horizon,
        stamps,
    };
    (outcome, events, snapshot)
}

/// The latest checkpoint at or before `at_micros`, if any.
pub fn nearest_checkpoint(snapshot: &Snapshot, at_micros: u64) -> Option<usize> {
    snapshot
        .stamps
        .iter()
        .rposition(|s| s.at_micros <= at_micros)
}

/// Why a resume attempt was refused or failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The snapshot was recorded for different generative inputs.
    FingerprintMismatch {
        /// Fingerprint stored in the snapshot.
        snapshot: u64,
        /// Fingerprint of the inputs offered for resume.
        inputs: u64,
    },
    /// The requested checkpoint index does not exist.
    NoSuchCheckpoint {
        /// The index asked for.
        requested: usize,
        /// How many stamps the snapshot holds.
        available: usize,
    },
    /// The snapshot's horizon disagrees with the config's `sim_duration`.
    HorizonMismatch {
        /// Horizon stored in the snapshot, microseconds.
        snapshot: u64,
        /// `sim_duration` of the config offered, microseconds.
        config: u64,
    },
    /// Replay to a checkpoint boundary did not reproduce its witness.
    Diverged {
        /// Index of the first failing checkpoint.
        checkpoint: u32,
        /// The boundary's virtual time in microseconds.
        at_micros: u64,
        /// The first witness field that mismatched.
        field: &'static str,
    },
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::FingerprintMismatch { snapshot, inputs } => write!(
                f,
                "snapshot fingerprint {snapshot:#018x} does not match inputs {inputs:#018x}"
            ),
            ResumeError::NoSuchCheckpoint {
                requested,
                available,
            } => write!(
                f,
                "checkpoint {requested} requested but snapshot has {available}"
            ),
            ResumeError::HorizonMismatch { snapshot, config } => write!(
                f,
                "snapshot horizon {snapshot}us does not match config sim_duration {config}us"
            ),
            ResumeError::Diverged {
                checkpoint,
                at_micros,
                field,
            } => write!(
                f,
                "replay diverged from checkpoint {checkpoint} (t={at_micros}us): field {field}"
            ),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Resumes a trial from checkpoint `from` of `snapshot` and runs it to the
/// horizon, returning the outcome and the *full* trace (prefix included).
///
/// The world is rebuilt from the generative inputs and replayed to the
/// checkpoint boundary with the identical stepping procedure the recorder
/// used; every witness up to and including `from` is verified on the way,
/// so corruption or nondeterminism surfaces as [`ResumeError::Diverged`]
/// instead of silently wrong results. The returned outcome and trace are
/// bit-identical to the uninterrupted run.
pub fn resume_trial(
    cfg: &ScenarioConfig,
    spec: &TrialSpec,
    faults: &FaultSpec,
    snapshot: &Snapshot,
    from: usize,
) -> Result<(TrialOutcome, Vec<TraceEvent>), ResumeError> {
    let inputs = trial_fingerprint(cfg, spec, faults);
    if inputs != snapshot.fingerprint {
        return Err(ResumeError::FingerprintMismatch {
            snapshot: snapshot.fingerprint,
            inputs,
        });
    }
    if from >= snapshot.stamps.len() {
        return Err(ResumeError::NoSuchCheckpoint {
            requested: from,
            available: snapshot.stamps.len(),
        });
    }
    let horizon = cfg.sim_duration.as_micros();
    if snapshot.horizon_micros != horizon {
        return Err(ResumeError::HorizonMismatch {
            snapshot: snapshot.horizon_micros,
            config: horizon,
        });
    }
    let (mut built, journal) = build_for_stepping(cfg, spec, faults);
    let mut seen = 0usize;
    let mut chained = FNV_OFFSET;
    for (i, &t) in boundaries(snapshot.interval_micros, horizon)
        .iter()
        .enumerate()
    {
        (seen, chained) = step_to(&mut built, &journal, t, seen, chained);
        if i <= from {
            let stamp = &snapshot.stamps[i];
            let es = built.world.engine_stamp();
            if let Err(field) = stamp.check(&es, seen as u64, chained) {
                return Err(ResumeError::Diverged {
                    checkpoint: stamp.index,
                    at_micros: t,
                    field,
                });
            }
        }
    }
    let outcome = harvest(cfg, spec, &built);
    let events = journal.borrow().entries().iter().map(entry_to_event).collect();
    Ok((outcome, events))
}

/// Diffs a recorded trace against a fresh replay, bisecting from the
/// snapshot's checkpoints instead of scanning from t = 0.
///
/// The fresh run re-captures stamps at the snapshot's interval; comparing
/// per-stamp `(events, chained)` pairs locates the first divergent
/// checkpoint window in O(#checkpoints), and only that window is diffed
/// event-by-event. Returns `Ok(None)` when the replay is bit-identical;
/// the reported [`Divergence::index`] is a global trace index, so the
/// result agrees exactly with a full [`diff_traces`] scan.
pub fn bisect_divergence(
    cfg: &ScenarioConfig,
    spec: &TrialSpec,
    faults: &FaultSpec,
    snapshot: &Snapshot,
    recorded: &[TraceEvent],
) -> Result<Option<Divergence>, ResumeError> {
    let inputs = trial_fingerprint(cfg, spec, faults);
    if inputs != snapshot.fingerprint {
        return Err(ResumeError::FingerprintMismatch {
            snapshot: snapshot.fingerprint,
            inputs,
        });
    }
    let interval = Duration::from_micros(snapshot.interval_micros);
    let (_, fresh, fresh_snap) = record_trial_with_checkpoints(cfg, spec, faults, interval);

    // Walk the fresh run's checkpoint witnesses, chaining the recorded
    // trace's own prefix alongside: the first boundary where the pair
    // disagrees bounds the divergent window from above, the previous one
    // from below.
    let mut window_start = 0usize;
    let mut window_end = None;
    let mut rec_seen = 0usize;
    let mut rec_chain = FNV_OFFSET;
    for stamp in &fresh_snap.stamps {
        while rec_seen < recorded.len() && recorded[rec_seen].at_micros <= stamp.at_micros {
            rec_chain = chain_event(rec_chain, &recorded[rec_seen]);
            rec_seen += 1;
        }
        if rec_seen as u64 == stamp.events && rec_chain == stamp.chained {
            window_start = rec_seen;
        } else {
            window_end = Some((rec_seen as u64).max(stamp.events) as usize);
            break;
        }
    }
    let Some(end) = window_end else {
        // Every boundary witness matched. The last boundary sits at the
        // horizon, so both traces are chain-equal in full; a length
        // mismatch can only mean events past the horizon — fall back to
        // the plain scan rather than miss them.
        if recorded.len() != fresh.len() {
            return Ok(diff_traces(recorded, &fresh));
        }
        return Ok(None);
    };
    let rec_slice = &recorded[window_start..recorded.len().min(end).max(window_start)];
    let fresh_slice = &fresh[window_start..fresh.len().min(end).max(window_start)];
    match diff_traces(rec_slice, fresh_slice) {
        Some(mut d) => {
            d.index += window_start;
            Ok(Some(d))
        }
        // A chain collision inside the window would land here; the plain
        // scan is the authoritative fallback.
        None => Ok(diff_traces(recorded, &fresh)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record_trial;
    use crate::FuzzCase;

    fn quick_case() -> FuzzCase {
        let mut c = FuzzCase::baseline(7);
        c.sim_secs = 8;
        c.vehicles = 18;
        c
    }

    #[test]
    fn boundary_schedule_always_ends_at_horizon() {
        assert_eq!(boundaries(1_000_000, 3_000_000), vec![1_000_000, 2_000_000, 3_000_000]);
        assert_eq!(boundaries(2_000_000, 5_000_000), vec![2_000_000, 4_000_000, 5_000_000]);
        assert_eq!(boundaries(10_000_000, 5_000_000), vec![5_000_000]);
        assert_eq!(boundaries(0, 3), vec![1, 2, 3]);
    }

    #[test]
    fn snapshot_encode_decode_round_trips() {
        let stamp = |i: u32| CheckpointStamp {
            index: i,
            at_micros: u64::from(i) * 1_000_000,
            events: u64::from(i) * 37,
            chained: 0xDEAD_0000 + u64::from(i),
            rng_state: [1, 2, 3, u64::from(i)],
            scheduled: 100 + u64::from(i),
            pending: 5,
            timers_armed: 40 + u64::from(i),
            stats_digest: 0xAA55 + u64::from(i),
            node_digest: 0x55AA + u64::from(i),
            active_nodes: 30 - i,
        };
        let snap = Snapshot {
            fingerprint: 0x1234_5678_9ABC_DEF0,
            interval_micros: 1_000_000,
            horizon_micros: 4_000_000,
            stamps: (0..4).map(stamp).collect(),
        };
        let bytes = snap.encode();
        assert_eq!(Snapshot::decode(&bytes).unwrap(), snap);

        let empty = Snapshot {
            fingerprint: 1,
            interval_micros: 2,
            horizon_micros: 3,
            stamps: vec![],
        };
        assert_eq!(Snapshot::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn snapshot_decode_rejects_corruption() {
        let snap = Snapshot {
            fingerprint: 9,
            interval_micros: 1,
            horizon_micros: 2,
            stamps: vec![CheckpointStamp {
                index: 0,
                at_micros: 2,
                events: 3,
                chained: 4,
                rng_state: [5, 6, 7, 8],
                scheduled: 9,
                pending: 0,
                timers_armed: 1,
                stats_digest: 2,
                node_digest: 3,
                active_nodes: 4,
            }],
        };
        let mut bytes = snap.encode();
        bytes[20] ^= 0x01;
        assert!(matches!(
            Snapshot::decode(&bytes).unwrap_err(),
            SnapshotError::ChecksumMismatch { .. }
        ));
        assert!(matches!(
            Snapshot::decode(&bytes[..8]).unwrap_err(),
            SnapshotError::TooShort { .. }
        ));
    }

    #[test]
    fn fingerprint_separates_inputs() {
        let c = quick_case();
        let mut other = c.clone();
        other.seed += 1;
        let f1 = trial_fingerprint(&c.config(), &c.spec(), &c.faults());
        let f2 = trial_fingerprint(&other.config(), &other.spec(), &other.faults());
        assert_ne!(f1, f2);
        assert_eq!(f1, trial_fingerprint(&c.config(), &c.spec(), &c.faults()));
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_resumes() {
        let case = quick_case();
        let (cfg, spec, faults) = (case.config(), case.spec(), case.faults());
        let (plain_outcome, plain_events) = record_trial(&cfg, &spec, &faults);
        let interval = Duration::from_micros(cfg.sim_duration.as_micros() / 3);
        let (outcome, events, snapshot) =
            record_trial_with_checkpoints(&cfg, &spec, &faults, interval);
        assert_eq!(outcome, plain_outcome);
        assert_eq!(events, plain_events);
        assert_eq!(snapshot.stamps.last().unwrap().events as usize, events.len());

        let mid = nearest_checkpoint(&snapshot, cfg.sim_duration.as_micros() / 2).unwrap();
        let (resumed_outcome, resumed_events) =
            resume_trial(&cfg, &spec, &faults, &snapshot, mid).unwrap();
        assert_eq!(resumed_outcome, plain_outcome);
        assert_eq!(resumed_events, plain_events);
    }

    #[test]
    fn resume_refuses_foreign_inputs_and_bad_indices() {
        let case = quick_case();
        let (cfg, spec, faults) = (case.config(), case.spec(), case.faults());
        let interval = Duration::from_micros(cfg.sim_duration.as_micros() / 2);
        let (_, _, snapshot) = record_trial_with_checkpoints(&cfg, &spec, &faults, interval);

        let mut other = case.clone();
        other.seed ^= 0xFFFF;
        assert!(matches!(
            resume_trial(&other.config(), &other.spec(), &other.faults(), &snapshot, 0),
            Err(ResumeError::FingerprintMismatch { .. })
        ));
        assert!(matches!(
            resume_trial(&cfg, &spec, &faults, &snapshot, 99),
            Err(ResumeError::NoSuchCheckpoint { .. })
        ));

        let mut tampered = snapshot.clone();
        tampered.stamps[0].chained ^= 1;
        assert!(matches!(
            resume_trial(&cfg, &spec, &faults, &tampered, 0),
            Err(ResumeError::Diverged {
                checkpoint: 0,
                field: "chained",
                ..
            })
        ));
    }

    #[test]
    fn bisect_agrees_with_full_diff() {
        let case = quick_case();
        let (cfg, spec, faults) = (case.config(), case.spec(), case.faults());
        let interval = Duration::from_micros(cfg.sim_duration.as_micros() / 4);
        let (_, events, snapshot) = record_trial_with_checkpoints(&cfg, &spec, &faults, interval);

        // Identical replay: no divergence either way.
        assert!(bisect_divergence(&cfg, &spec, &faults, &snapshot, &events)
            .unwrap()
            .is_none());

        // Tamper an event deep in the trace: bisect must report the same
        // global index the full scan does.
        let mut tampered = events.clone();
        let idx = tampered.len() * 3 / 4;
        tampered[idx].digest ^= 1;
        let full = diff_traces(&tampered, &events).unwrap();
        // The recorded trace's own prefix witnesses no longer match from
        // the tampered point on, so we must recompute stamps for it; use
        // the original snapshot (witnesses the *events* trace) and feed
        // the tampered trace as "recorded".
        let bisected = bisect_divergence(&cfg, &spec, &faults, &snapshot, &tampered)
            .unwrap()
            .unwrap();
        assert_eq!(bisected.index, full.index);
        assert_eq!(bisected.expected, full.expected);
        assert_eq!(bisected.actual, full.actual);
    }
}
