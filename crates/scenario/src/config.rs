//! Scenario configuration (Table I defaults) and per-trial specification.

use blackdp::BlackDpConfig;
use blackdp_aodv::AodvConfig;
use blackdp_attacks::EvasionPolicy;
use blackdp_mobility::{ClusterPlan, Highway, Kmh, SpawnConfig};
use blackdp_sim::{Duration, ExecutorMode, NeighborIndex, WorldBackend};

use crate::vehicle::DefenseMode;
use blackdp_aodv::Addr;
use blackdp_mobility::ClusterId;

/// Base address for RSU cluster heads (`0x7…` region of the address space,
/// disjoint from vehicle pseudonyms). Roadside infrastructure addressing is
/// public knowledge: vehicles derive their segment's CH address from the
/// cluster plan, which is how single-zone joins unicast (Section III-A).
pub const CH_ADDR_BASE: u64 = 0x7000_0000_0000_0000;

/// The well-known protocol address of `cluster`'s head.
pub fn ch_addr(cluster: ClusterId) -> Addr {
    Addr(CH_ADDR_BASE + u64::from(cluster.0))
}

/// Full scenario configuration. Defaults reproduce the paper's Table I.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Total vehicle count, attackers included (Table I: 100).
    pub vehicles: u32,
    /// Highway length in meters (Table I: 10 km).
    pub highway_length_m: f64,
    /// Highway width in meters (Table I: 200 m).
    pub highway_width_m: f64,
    /// Cluster length in meters (Table I: 1000 m).
    pub cluster_len_m: f64,
    /// Radio range in meters (Table I / DSRC: 1000 m).
    pub range_m: f64,
    /// Vehicle speed band (Table I: 50–90 km/h).
    pub min_speed_kmh: f64,
    /// Upper bound of the speed band.
    pub max_speed_kmh: f64,
    /// Fixed per-hop radio latency.
    pub radio_latency: Duration,
    /// Random extra radio latency.
    pub radio_jitter: Duration,
    /// Radio loss probability.
    pub radio_loss: f64,
    /// Certificate-renewal zone (paper: clusters 8–10), inclusive.
    pub renewal_zone: (u32, u32),
    /// Cluster ranges per trusted authority, e.g. `[(1,5), (6,10)]`.
    pub ta_regions: Vec<(u32, u32)>,
    /// AODV parameters for every vehicle.
    pub aodv: AodvConfig,
    /// BlackDP parameters for vehicles and RSUs.
    pub blackdp: BlackDpConfig,
    /// Vehicle/RSU tick cadence.
    pub tick: Duration,
    /// Virtual run length per trial.
    pub sim_duration: Duration,
    /// Application packets the source sends once its route is usable.
    pub data_packets: u32,
    /// Gap between application packets.
    pub data_interval: Duration,
    /// Route-acceptance defense run by honest vehicles.
    pub defense: DefenseMode,
    /// Fraction of honest vehicles travelling in the opposite direction
    /// (0.0 = the paper's one-way flow; 0.5 = a balanced two-way highway).
    pub backward_fraction: f64,
    /// Optional fading radio model: reception guaranteed within this
    /// fraction of the range, decaying to zero at the range edge.
    /// `None` = the paper's unit-disk assumption.
    pub fading_full_fraction: Option<f64>,
    /// Broadcast receiver lookup strategy. `Grid` (the default) and `Scan`
    /// are bit-identical; `Scan` is kept for differential testing.
    pub neighbor_index: NeighborIndex,
    /// Engine backend answering grid-indexed neighbor queries: the serial
    /// grid (the default, and the differential oracle) or the sharded
    /// band index. Every backend and shard count is bit-identical —
    /// traces, `Stats::digest`, detection verdicts, and checkpoint
    /// witnesses do not change — so this is purely a throughput knob.
    /// The motion-bound staleness horizon is derived from
    /// `max_speed_kmh`, which already bounds every spawned trajectory.
    pub backend: WorldBackend,
    /// Which event loop drives the world: the serial oracle (the default)
    /// or the conservative-window parallel executor. Bit-identical for any
    /// thread count — traces, `Stats::digest`, detection verdicts, and
    /// checkpoint witnesses do not change — so, like `backend`, this is
    /// purely a throughput knob. The `BLACKDP_EXECUTOR` environment
    /// variable (`serial` / `windowed`) overrides it at build time.
    pub executor: ExecutorMode,
}

impl ScenarioConfig {
    /// The paper's Table I parameters.
    pub fn paper_table1() -> Self {
        ScenarioConfig {
            vehicles: 100,
            highway_length_m: 10_000.0,
            highway_width_m: 200.0,
            cluster_len_m: 1_000.0,
            range_m: 1_000.0,
            min_speed_kmh: 50.0,
            max_speed_kmh: 90.0,
            radio_latency: Duration::from_millis(2),
            radio_jitter: Duration::from_micros(500),
            radio_loss: 0.0,
            renewal_zone: (8, 10),
            ta_regions: vec![(1, 5), (6, 10)],
            aodv: AodvConfig::default(),
            blackdp: BlackDpConfig::default(),
            tick: Duration::from_millis(100),
            sim_duration: Duration::from_secs(30),
            data_packets: 20,
            data_interval: Duration::from_millis(250),
            defense: DefenseMode::BlackDp,
            backward_fraction: 0.0,
            fading_full_fraction: None,
            neighbor_index: NeighborIndex::Grid,
            backend: WorldBackend::Serial,
            executor: ExecutorMode::Serial,
        }
    }

    /// A smaller, faster variant for unit/integration tests: same geometry,
    /// fewer vehicles, shorter run.
    pub fn small_test() -> Self {
        ScenarioConfig {
            vehicles: 30,
            sim_duration: Duration::from_secs(20),
            data_packets: 5,
            ..Self::paper_table1()
        }
    }

    /// The cluster plan implied by this configuration.
    pub fn plan(&self) -> ClusterPlan {
        ClusterPlan::new(
            Highway::new(self.highway_length_m, self.highway_width_m),
            self.cluster_len_m,
        )
    }

    /// The vehicle speed sampler implied by this configuration.
    pub fn spawn(&self) -> SpawnConfig {
        SpawnConfig {
            min_speed: Kmh(self.min_speed_kmh),
            max_speed: Kmh(self.max_speed_kmh),
        }
    }

    /// Which TA region (index into `ta_regions`) covers `cluster`.
    pub fn region_of(&self, cluster: u32) -> usize {
        self.ta_regions
            .iter()
            .position(|&(lo, hi)| (lo..=hi).contains(&cluster))
            .unwrap_or(0)
    }
}

/// The kind of attack staged in one trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackSetup {
    /// No attacker at all.
    None,
    /// No attacker, but a legitimate node is falsely reported (exercises
    /// the zero-false-positive property and the 4–6 packet Figure 5 row).
    FalseSuspicion {
        /// Report a member of a *different* cluster than the reporter's,
        /// exercising the forwarded-d_req path.
        cross_cluster: bool,
    },
    /// A single black hole in the given cluster.
    Single {
        /// The attacker's starting cluster (1-based, per Figure 4's x axis).
        cluster: u32,
    },
    /// Two cooperating black holes in the given cluster (within range of
    /// each other, per Section IV-A).
    Cooperative {
        /// The attackers' starting cluster.
        cluster: u32,
    },
    /// A gray hole (selective dropper) in the given cluster — the harder
    /// variant from the related work, used by the grayhole ablation.
    GrayHole {
        /// The attacker's starting cluster.
        cluster: u32,
        /// Probability of dropping each transit data packet.
        drop_probability: f64,
    },
    /// Two cooperating *gray* holes in the given cluster: the cooperative
    /// next-hop endorsement of [`AttackSetup::Cooperative`] combined with
    /// probabilistic dropping, plus whatever renewal-zone evasion the
    /// trial's [`TrialSpec::evasion`] selects. A composed attacker the
    /// middleware stack expresses without a dedicated node type.
    CooperativeGrayHole {
        /// The attackers' starting cluster.
        cluster: u32,
        /// Probability of dropping each transit data packet.
        drop_probability: f64,
    },
    /// Several *independent* single black holes, one per listed cluster
    /// (the paper: "there may be multiple black hole attackers in the
    /// network"). Up to four; zero entries in the array are ignored.
    MultipleSingles {
        /// Attacker clusters (0 = unused slot).
        clusters: [u32; 4],
    },
}

impl AttackSetup {
    /// Number of attacker vehicles this setup spawns.
    pub fn attacker_count(&self) -> u32 {
        match self {
            AttackSetup::None | AttackSetup::FalseSuspicion { .. } => 0,
            AttackSetup::Single { .. } | AttackSetup::GrayHole { .. } => 1,
            AttackSetup::Cooperative { .. } | AttackSetup::CooperativeGrayHole { .. } => 2,
            AttackSetup::MultipleSingles { clusters } => {
                clusters.iter().filter(|&&c| c > 0).count() as u32
            }
        }
    }

    /// The attacker cluster, if any.
    pub fn cluster(&self) -> Option<u32> {
        match self {
            AttackSetup::Single { cluster }
            | AttackSetup::Cooperative { cluster }
            | AttackSetup::GrayHole { cluster, .. }
            | AttackSetup::CooperativeGrayHole { cluster, .. } => Some(*cluster),
            AttackSetup::MultipleSingles { clusters } => clusters.iter().copied().find(|&c| c > 0),
            _ => None,
        }
    }

    /// Every attacker's cluster, in spawn order.
    pub fn clusters(&self) -> Vec<u32> {
        match self {
            AttackSetup::None | AttackSetup::FalseSuspicion { .. } => Vec::new(),
            AttackSetup::Single { cluster } | AttackSetup::GrayHole { cluster, .. } => {
                vec![*cluster]
            }
            AttackSetup::Cooperative { cluster }
            | AttackSetup::CooperativeGrayHole { cluster, .. } => {
                vec![*cluster, *cluster]
            }
            AttackSetup::MultipleSingles { clusters } => {
                clusters.iter().copied().filter(|&c| c > 0).collect()
            }
        }
    }
}

/// Everything that varies between repetitions of one experiment.
#[derive(Debug, Clone)]
pub struct TrialSpec {
    /// RNG seed (drives placement, speeds, jitter, keys).
    pub seed: u64,
    /// The staged attack.
    pub attack: AttackSetup,
    /// Attacker evasion policy (paper: active in the renewal zone).
    pub evasion: EvasionPolicy,
    /// The source vehicle's cluster (paper: "a source car is placed at the
    /// beginning of the highway" — cluster 1).
    pub source_cluster: u32,
    /// The destination's cluster, or `None` when the destination "may not
    /// exist in the clusters" (Section IV-A).
    pub dest_cluster: Option<u32>,
    /// Make the attacker hop to the next cluster right after answering the
    /// first probe (Figure 5's moving-suspect rows).
    pub attacker_moves: bool,
    /// Make the attacker answer Hello probes with a fake reply claiming to
    /// be the destination — the paper's "anonymity response", which lets
    /// the victim report after a single discovery round.
    pub attacker_fake_hello: bool,
}

impl TrialSpec {
    /// A single-attack trial with paper-style placement: source in cluster
    /// 1, attacker in `attacker_cluster`, destination well away from the
    /// attacker (never within radio range of it).
    pub fn single(seed: u64, attacker_cluster: u32, cluster_count: u32) -> Self {
        TrialSpec {
            seed,
            attack: AttackSetup::Single {
                cluster: attacker_cluster,
            },
            evasion: EvasionPolicy::None,
            source_cluster: 1,
            dest_cluster: Some(far_destination(attacker_cluster, cluster_count)),
            attacker_moves: false,
            attacker_fake_hello: false,
        }
    }

    /// A cooperative-attack trial, placement as in [`Self::single`].
    pub fn cooperative(seed: u64, attacker_cluster: u32, cluster_count: u32) -> Self {
        TrialSpec {
            attack: AttackSetup::Cooperative {
                cluster: attacker_cluster,
            },
            ..Self::single(seed, attacker_cluster, cluster_count)
        }
    }
}

/// Picks a destination cluster at least two clusters away from the
/// attacker (so the attacker is never within the destination's radio
/// range, per Section IV-A).
pub fn far_destination(attacker_cluster: u32, cluster_count: u32) -> u32 {
    if attacker_cluster + 3 <= cluster_count {
        attacker_cluster + 3
    } else {
        attacker_cluster.saturating_sub(3).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults_match_paper() {
        let cfg = ScenarioConfig::paper_table1();
        assert_eq!(cfg.vehicles, 100);
        assert_eq!(cfg.highway_length_m, 10_000.0);
        assert_eq!(cfg.highway_width_m, 200.0);
        assert_eq!(cfg.cluster_len_m, 1_000.0);
        assert_eq!(cfg.range_m, 1_000.0);
        assert_eq!(cfg.min_speed_kmh, 50.0);
        assert_eq!(cfg.max_speed_kmh, 90.0);
        // "the least number of CHs required to cover the entire highway is
        // p = l / r" = 10.
        assert_eq!(cfg.plan().cluster_count(), 10);
    }

    #[test]
    fn region_mapping() {
        let cfg = ScenarioConfig::paper_table1();
        assert_eq!(cfg.region_of(1), 0);
        assert_eq!(cfg.region_of(5), 0);
        assert_eq!(cfg.region_of(6), 1);
        assert_eq!(cfg.region_of(10), 1);
    }

    #[test]
    fn far_destination_avoids_attacker_range() {
        for c in 1..=10u32 {
            let d = far_destination(c, 10);
            assert!((1..=10).contains(&d));
            assert!(
                c.abs_diff(d) >= 2,
                "attacker {c} and destination {d} too close"
            );
        }
    }

    #[test]
    fn attack_setup_accessors() {
        assert_eq!(AttackSetup::None.attacker_count(), 0);
        assert_eq!(AttackSetup::Single { cluster: 3 }.attacker_count(), 1);
        assert_eq!(AttackSetup::Cooperative { cluster: 3 }.attacker_count(), 2);
        assert_eq!(AttackSetup::Single { cluster: 3 }.cluster(), Some(3));
        assert_eq!(
            AttackSetup::FalseSuspicion {
                cross_cluster: false
            }
            .cluster(),
            None
        );
    }
}
