//! Coverage-guided scenario fuzzing over the Table-I neighborhood.
//!
//! A [`FuzzCase`] is a flat, all-integer description of one randomized
//! trial: vehicle count, attack mixture, evasion, radio imperfections,
//! fault-plan intensity, certificate validity. Cases serialize to a
//! one-line text format (`blackdp-fuzz-v1 k=v …`) so triggering inputs
//! can live in `results/fuzz_corpus/` and replay byte-exactly in CI.
//!
//! [`run_case`] executes a case with the full invariant oracle and a
//! frame journal attached, catching panics, and returns the outcome plus
//! a *coverage signature*: the set of behavior features the run touched
//! (payload kinds and their log₂ volume buckets, engine stat buckets,
//! the trial classification). The driver in `blackdp-bench --bin fuzz`
//! keeps mutating cases that discover new features — classic greybox
//! coverage guidance, but over protocol behavior instead of branch
//! counters.
//!
//! [`metamorphic_failures`] layers the detection-level oracles on top:
//! adding a black hole must not raise PDR, a superset attacker set must
//! not shrink the confirmed-detection count, and attacker-free runs must
//! never confirm anyone. Each oracle has an eligibility predicate — the
//! relations only hold on clean radio topologies with enough honest
//! vehicles, so the fuzzer checks them exactly where they are sound.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use blackdp_sim::{Duration, ExecutorMode, Time, WorldBackend};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::build::{build_scenario, harvest, stage_false_suspicion};
use crate::config::{far_destination, AttackSetup, ScenarioConfig, TrialSpec};
use crate::faults::FaultSpec;
use crate::invariants::attach_invariants;
use crate::journal::attach_journal;
use crate::metrics::{TrialClass, TrialOutcome};
use crate::vehicle::DefenseMode;
use blackdp_attacks::EvasionPolicy;

/// Corpus line prefix; bump the version on any field change.
pub const CORPUS_TAG: &str = "blackdp-fuzz-v1";

/// Fixed cluster count of the fuzzed geometry (Table I's 10 km highway).
const CLUSTERS: u32 = 10;

/// One randomized trial, flattened to integers for exact text round-trips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// World seed (placement, speeds, jitter, keys).
    pub seed: u64,
    /// Total vehicles, attackers included.
    pub vehicles: u32,
    /// Virtual run length in seconds.
    pub sim_secs: u32,
    /// Application packets the source sends.
    pub data_packets: u32,
    /// Attack family: 0 none, 1 false-suspicion, 2 single, 3 cooperative,
    /// 4 gray hole, 5 multiple singles, 6 cooperative gray hole.
    pub attack_kind: u8,
    /// First attack parameter (cluster; for false-suspicion, 1 =
    /// cross-cluster).
    pub attack_a: u32,
    /// Second parameter (gray-hole drop % / second multi cluster).
    pub attack_b: u32,
    /// Third multi cluster (0 = unused).
    pub attack_c: u32,
    /// Fourth multi cluster (0 = unused).
    pub attack_d: u32,
    /// Evasion policy: 0 none, 1 act-legitimately, 2 flee, 3 renew.
    pub evasion: u8,
    /// Source vehicle's cluster.
    pub source_cluster: u32,
    /// Destination cluster; 0 = phantom destination.
    pub dest_cluster: u32,
    /// Attacker hops a cluster after answering the first probe (0/1).
    pub attacker_moves: u8,
    /// Attacker fakes Hello replies (0/1).
    pub attacker_fake_hello: u8,
    /// Radio loss probability, percent.
    pub radio_loss_pct: u32,
    /// Fading full-reception fraction, percent; 0 = unit disk.
    pub fading_pct: u32,
    /// Fraction of honest vehicles driving backward, percent.
    pub backward_pct: u32,
    /// Fault-plan intensity, percent (0 = no faults).
    pub fault_intensity_pct: u32,
    /// Certificate validity in seconds (small values force mid-run
    /// expiry and renewal).
    pub cert_validity_secs: u32,
    /// Route-acceptance defense: 0 BlackDP, 1 first-RREP baseline,
    /// 2 peak baseline, 3 threshold baseline, 4 undefended.
    pub defense: u8,
    /// Spatial backend shard count: 0 = the serial oracle, n ≥ 1 =
    /// `WorldBackend::Sharded { shards: n }`. Bit-identical to serial by
    /// design, which is exactly what the shard-invariance metamorphic
    /// oracle checks. Absent from pre-PR-8 corpus lines (defaults to 0).
    pub shards: u32,
    /// Event-executor worker threads: 0 = the serial executor, n ≥ 1 =
    /// `ExecutorMode::Windowed { threads: n }`. Bit-identical to serial
    /// for every thread count by design — the thread-invariance
    /// metamorphic oracle below checks exactly that. Absent from
    /// pre-PR-10 corpus lines (defaults to 0).
    pub threads: u32,
}

impl FuzzCase {
    /// The staged attack this case describes.
    pub fn attack(&self) -> AttackSetup {
        let c = |v: u32| v.clamp(1, CLUSTERS);
        match self.attack_kind {
            1 => AttackSetup::FalseSuspicion {
                cross_cluster: self.attack_a != 0,
            },
            2 => AttackSetup::Single {
                cluster: c(self.attack_a),
            },
            3 => AttackSetup::Cooperative {
                cluster: c(self.attack_a),
            },
            4 => AttackSetup::GrayHole {
                cluster: c(self.attack_a),
                drop_probability: f64::from(self.attack_b.min(100)) / 100.0,
            },
            5 => {
                let slot = |v: u32| if v == 0 { 0 } else { c(v) };
                AttackSetup::MultipleSingles {
                    clusters: [
                        c(self.attack_a),
                        slot(self.attack_b),
                        slot(self.attack_c),
                        slot(self.attack_d),
                    ],
                }
            }
            6 => AttackSetup::CooperativeGrayHole {
                cluster: c(self.attack_a),
                drop_probability: f64::from(self.attack_b.min(100)) / 100.0,
            },
            _ => AttackSetup::None,
        }
    }

    /// The scenario configuration this case describes.
    pub fn config(&self) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::paper_table1();
        cfg.vehicles = self.vehicles.clamp(8, 200);
        cfg.sim_duration = Duration::from_secs(u64::from(self.sim_secs.clamp(5, 60)));
        cfg.data_packets = self.data_packets.clamp(1, 50);
        cfg.radio_loss = f64::from(self.radio_loss_pct.min(50)) / 100.0;
        cfg.fading_full_fraction = if self.fading_pct == 0 {
            None
        } else {
            Some(f64::from(self.fading_pct.clamp(40, 99)) / 100.0)
        };
        cfg.backward_fraction = f64::from(self.backward_pct.min(50)) / 100.0;
        cfg.blackdp.cert_validity =
            Duration::from_secs(u64::from(self.cert_validity_secs.clamp(5, 600)));
        cfg.defense = match self.defense {
            1 => DefenseMode::BaselineFirstRrep,
            2 => DefenseMode::BaselinePeak,
            3 => DefenseMode::BaselineThreshold,
            4 => DefenseMode::None,
            _ => DefenseMode::BlackDp,
        };
        cfg.backend = if self.shards == 0 {
            WorldBackend::Serial
        } else {
            WorldBackend::Sharded {
                shards: self.shards.min(8),
            }
        };
        cfg.executor = if self.threads == 0 {
            ExecutorMode::Serial
        } else {
            ExecutorMode::Windowed {
                threads: self.threads.min(8) as usize,
            }
        };
        cfg
    }

    /// The trial specification this case describes.
    pub fn spec(&self) -> TrialSpec {
        TrialSpec {
            seed: self.seed,
            attack: self.attack(),
            evasion: match self.evasion {
                1 => EvasionPolicy::ActLegitimately,
                2 => EvasionPolicy::Flee,
                3 => EvasionPolicy::RenewIdentity,
                _ => EvasionPolicy::None,
            },
            source_cluster: self.source_cluster.clamp(1, CLUSTERS),
            dest_cluster: if self.dest_cluster == 0 {
                None
            } else {
                Some(self.dest_cluster.clamp(1, CLUSTERS))
            },
            attacker_moves: self.attacker_moves != 0,
            attacker_fake_hello: self.attacker_fake_hello != 0,
        }
    }

    /// The fault plan this case describes (empty at zero intensity).
    pub fn faults(&self) -> FaultSpec {
        if self.fault_intensity_pct == 0 {
            FaultSpec::none()
        } else {
            FaultSpec::randomized(
                self.seed,
                f64::from(self.fault_intensity_pct.min(100)) / 100.0,
                &self.config(),
            )
        }
    }

    /// Serializes to the one-line corpus format.
    pub fn to_line(&self) -> String {
        format!(
            "{CORPUS_TAG} seed={} vehicles={} sim_secs={} data_packets={} \
             attack_kind={} attack_a={} attack_b={} attack_c={} attack_d={} \
             evasion={} source_cluster={} dest_cluster={} attacker_moves={} \
             attacker_fake_hello={} radio_loss_pct={} fading_pct={} \
             backward_pct={} fault_intensity_pct={} cert_validity_secs={} \
             defense={} shards={} threads={}",
            self.seed,
            self.vehicles,
            self.sim_secs,
            self.data_packets,
            self.attack_kind,
            self.attack_a,
            self.attack_b,
            self.attack_c,
            self.attack_d,
            self.evasion,
            self.source_cluster,
            self.dest_cluster,
            self.attacker_moves,
            self.attacker_fake_hello,
            self.radio_loss_pct,
            self.fading_pct,
            self.backward_pct,
            self.fault_intensity_pct,
            self.cert_validity_secs,
            self.defense,
            self.shards,
            self.threads,
        )
    }

    /// Parses a corpus line (inverse of [`Self::to_line`]).
    pub fn parse_line(line: &str) -> Result<FuzzCase, String> {
        let mut parts = line.split_whitespace();
        if parts.next() != Some(CORPUS_TAG) {
            return Err(format!("corpus line must start with `{CORPUS_TAG}`"));
        }
        let mut case = FuzzCase::baseline(0);
        for kv in parts {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("malformed field `{kv}`"))?;
            let n: u64 = v.parse().map_err(|_| format!("non-integer `{kv}`"))?;
            let n32 = n as u32;
            match k {
                "seed" => case.seed = n,
                "vehicles" => case.vehicles = n32,
                "sim_secs" => case.sim_secs = n32,
                "data_packets" => case.data_packets = n32,
                "attack_kind" => case.attack_kind = n as u8,
                "attack_a" => case.attack_a = n32,
                "attack_b" => case.attack_b = n32,
                "attack_c" => case.attack_c = n32,
                "attack_d" => case.attack_d = n32,
                "evasion" => case.evasion = n as u8,
                "source_cluster" => case.source_cluster = n32,
                "dest_cluster" => case.dest_cluster = n32,
                "attacker_moves" => case.attacker_moves = n as u8,
                "attacker_fake_hello" => case.attacker_fake_hello = n as u8,
                "radio_loss_pct" => case.radio_loss_pct = n32,
                "fading_pct" => case.fading_pct = n32,
                "backward_pct" => case.backward_pct = n32,
                "fault_intensity_pct" => case.fault_intensity_pct = n32,
                "cert_validity_secs" => case.cert_validity_secs = n32,
                "defense" => case.defense = n as u8,
                "shards" => case.shards = n32,
                "threads" => case.threads = n32,
                _ => return Err(format!("unknown field `{k}`")),
            }
        }
        Ok(case)
    }

    /// The paper-shaped starting point every mutation chain grows from.
    pub fn baseline(seed: u64) -> FuzzCase {
        FuzzCase {
            seed,
            vehicles: 30,
            sim_secs: 20,
            data_packets: 5,
            attack_kind: 2,
            attack_a: 2,
            attack_b: 0,
            attack_c: 0,
            attack_d: 0,
            evasion: 0,
            source_cluster: 1,
            dest_cluster: far_destination(2, CLUSTERS),
            attacker_moves: 0,
            attacker_fake_hello: 0,
            radio_loss_pct: 0,
            fading_pct: 0,
            backward_pct: 0,
            fault_intensity_pct: 0,
            cert_validity_secs: 600,
            defense: 0,
            shards: 0,
            threads: 0,
        }
    }

    /// Draws a fully random case.
    pub fn random(rng: &mut StdRng) -> FuzzCase {
        FuzzCase {
            seed: rng.random(),
            // Upper range reaches past the small-world scan threshold
            // (64 slots) so drawn shard counts actually exercise the
            // sharded index, not the scan override.
            vehicles: rng.random_range(10..=80),
            sim_secs: rng.random_range(10..=25),
            data_packets: rng.random_range(2..=20),
            attack_kind: rng.random_range(0..=6),
            attack_a: rng.random_range(1..=CLUSTERS),
            attack_b: rng.random_range(0..=100),
            attack_c: rng.random_range(0..=CLUSTERS),
            attack_d: rng.random_range(0..=CLUSTERS),
            evasion: rng.random_range(0..=3),
            source_cluster: rng.random_range(1..=3),
            dest_cluster: rng.random_range(0..=CLUSTERS),
            attacker_moves: rng.random_range(0..=1),
            attacker_fake_hello: rng.random_range(0..=1),
            radio_loss_pct: *[0u32, 0, 0, 5, 10, 20]
                .get(rng.random_range(0..6usize))
                .unwrap(),
            fading_pct: *[0u32, 0, 0, 60, 80, 95]
                .get(rng.random_range(0..6usize))
                .unwrap(),
            backward_pct: *[0u32, 0, 25, 50].get(rng.random_range(0..4usize)).unwrap(),
            fault_intensity_pct: *[0u32, 0, 0, 30, 60, 100]
                .get(rng.random_range(0..6usize))
                .unwrap(),
            cert_validity_secs: *[600u32, 600, 60, 15, 8]
                .get(rng.random_range(0..5usize))
                .unwrap(),
            defense: *[0u8, 0, 0, 0, 1, 2, 3, 4]
                .get(rng.random_range(0..8usize))
                .unwrap(),
            shards: *[0u32, 0, 0, 0, 1, 2, 3, 7]
                .get(rng.random_range(0..8usize))
                .unwrap(),
            threads: *[0u32, 0, 0, 0, 1, 2, 4, 8]
                .get(rng.random_range(0..8usize))
                .unwrap(),
        }
    }

    /// Mutates one or two fields of an interesting parent case.
    pub fn mutate(&self, rng: &mut StdRng) -> FuzzCase {
        let mut next = self.clone();
        for _ in 0..rng.random_range(1..=2u32) {
            match rng.random_range(0..15u32) {
                0 => next.seed = rng.random(),
                1 => next.vehicles = rng.random_range(10..=80),
                2 => next.attack_kind = rng.random_range(0..=6),
                3 => next.attack_a = rng.random_range(1..=CLUSTERS),
                4 => next.attack_b = rng.random_range(0..=100),
                5 => next.evasion = rng.random_range(0..=3),
                6 => next.dest_cluster = rng.random_range(0..=CLUSTERS),
                7 => next.attacker_moves ^= 1,
                8 => next.radio_loss_pct = rng.random_range(0..=20),
                9 => next.fading_pct = *[0u32, 60, 80, 95].get(rng.random_range(0..4usize)).unwrap(),
                10 => next.fault_intensity_pct = rng.random_range(0..=100),
                11 => next.defense = rng.random_range(0..=4),
                12 => next.shards = *[0u32, 1, 2, 3, 7].get(rng.random_range(0..5usize)).unwrap(),
                13 => next.threads = *[0u32, 1, 2, 4, 8].get(rng.random_range(0..5usize)).unwrap(),
                _ => next.cert_validity_secs = *[600u32, 60, 15, 8].get(rng.random_range(0..4usize)).unwrap(),
            }
        }
        next
    }
}

/// What one fuzz execution produced.
#[derive(Debug)]
pub struct CaseReport {
    /// The executed case.
    pub case: FuzzCase,
    /// Panic payload, if the trial panicked.
    pub panic: Option<String>,
    /// Rendered invariant violations (empty on a clean run).
    pub violations: Vec<String>,
    /// Per-invariant evaluation counts.
    pub exercised: Vec<(&'static str, u64)>,
    /// The harvested trial outcome (absent on panic).
    pub outcome: Option<TrialOutcome>,
    /// Behavior features this run touched (coverage signature).
    pub features: BTreeSet<String>,
}

impl CaseReport {
    /// True when the run neither panicked nor violated an invariant.
    pub fn is_clean(&self) -> bool {
        self.panic.is_none() && self.violations.is_empty()
    }
}

/// log₂ volume bucket: 0, 1, 2, 4, 8, … collapse counts into coarse
/// coverage features so signatures stay small and stable.
fn bucket(n: u64) -> u32 {
    if n == 0 {
        0
    } else {
        64 - n.leading_zeros()
    }
}

/// Executes one case with the oracle and journal attached, catching
/// panics.
pub fn run_case(case: &FuzzCase) -> CaseReport {
    let cfg = case.config();
    let spec = case.spec();
    let faults = case.faults();
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut built = build_scenario(&cfg, &spec);
        let plan = faults.realize(&cfg, &built);
        if !plan.is_empty() {
            built.world.install_faults(plan);
        }
        let journal = attach_journal(&mut built);
        attach_invariants(&mut built, &cfg);
        stage_false_suspicion(&mut built, &spec);
        built.world.run_until(Time::ZERO + cfg.sim_duration);
        built.world.finish_invariants();
        let outcome = harvest(&cfg, &spec, &built);

        let violations: Vec<String> = built
            .world
            .violations()
            .iter()
            .map(|v| v.to_string())
            .collect();
        let exercised = built.world.invariants_exercised();

        let mut features = BTreeSet::new();
        for (kind, count) in journal.borrow().kind_histogram() {
            features.insert(format!("kind:{kind}:{}", bucket(count as u64)));
        }
        for (key, value) in built.world.stats().iter() {
            features.insert(format!("stat:{key}:{}", bucket(value)));
        }
        features.insert(format!("class:{:?}", outcome.class));
        features.insert(format!("attack:{}", case.attack_kind));
        (violations, exercised, outcome, features)
    }));
    match result {
        Ok((violations, exercised, outcome, features)) => CaseReport {
            case: case.clone(),
            panic: None,
            violations,
            exercised,
            outcome: Some(outcome),
            features,
        },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            CaseReport {
                case: case.clone(),
                panic: Some(msg),
                violations: Vec::new(),
                exercised: Vec::new(),
                outcome: None,
                features: BTreeSet::new(),
            }
        }
    }
}

/// True when the PDR metamorphic relation is sound for this case: a pure
/// black-hole attack on a clean, dense radio topology with a real
/// destination. Lossy/fading radios, faults, evasion, gray holes and
/// sparse worlds can all legitimately flip the relation.
fn pdr_relation_eligible(case: &FuzzCase) -> bool {
    matches!(case.attack_kind, 2 | 3 | 5)
        && case.evasion == 0
        && case.attacker_moves == 0
        && case.attacker_fake_hello == 0
        && case.radio_loss_pct == 0
        && case.fading_pct == 0
        && case.fault_intensity_pct == 0
        && case.dest_cluster != 0
        && case.cert_validity_secs >= 60
        && case.vehicles >= case.attack().attacker_count() + 12
}

/// True when the superset-detection relation is sound: independent black
/// holes, no evasion, clean infrastructure.
fn superset_relation_eligible(case: &FuzzCase) -> bool {
    case.attack_kind == 5
        && case.defense == 0
        && case.evasion == 0
        && case.attacker_moves == 0
        && case.attacker_fake_hello == 0
        && case.radio_loss_pct == 0
        && case.fading_pct == 0
        && case.fault_intensity_pct == 0
        && case.dest_cluster != 0
        && case.attack_d == 0
        && case.cert_validity_secs >= 60
        && case.vehicles >= case.attack().attacker_count() + 13
}

/// Seeds used to confirm an apparent metamorphic violation before
/// flagging it. Node-count changes reorder the world's shared jitter
/// draws, so a single pair of runs is a *statistical* comparison, not a
/// differential one — one lucky timing can flip either side. A real
/// oracle break reproduces across seeds; timing luck does not.
const CONFIRM_SEEDS: u64 = 4;

/// Mean-PDR margin a confirmed violation must exceed.
const PDR_MARGIN: f64 = 0.10;

fn mean_pdr_over_seeds(case: &FuzzCase) -> f64 {
    let mut total = 0.0;
    let mut n = 0u32;
    for i in 0..=CONFIRM_SEEDS {
        let mut c = case.clone();
        c.seed = case.seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Some(o) = run_case(&c).outcome {
            // Skip vacuous runs where the source never sent.
            if o.data_sent > 0 {
                total += o.pdr();
                n += 1;
            }
        }
    }
    if n == 0 {
        1.0
    } else {
        total / f64::from(n)
    }
}

fn mean_detections_over_seeds(case: &FuzzCase) -> f64 {
    let mut total = 0usize;
    let mut n = 0u32;
    for i in 0..=CONFIRM_SEEDS {
        let mut c = case.clone();
        c.seed = case.seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Some(o) = run_case(&c).outcome {
            total += o.detections.len();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total as f64 / f64::from(n)
    }
}

/// Confirmed detections in an outcome.
fn detections(outcome: &TrialOutcome) -> usize {
    outcome.detections.len()
}

/// Runs the metamorphic detection oracles this case is eligible for and
/// returns the failures (empty = all held or none applied).
pub fn metamorphic_failures(case: &FuzzCase, report: &CaseReport) -> Vec<String> {
    let mut failures = Vec::new();
    let Some(outcome) = &report.outcome else {
        return failures;
    };

    // Shard count never changes any detection outcome: the sharded
    // backend is bit-identical to the serial oracle *by construction*, so
    // re-running the same case under a different shard count must
    // reproduce the exact `TrialOutcome` — class, every detection tuple,
    // PDR numerators, all of it. This is a differential oracle, not a
    // statistical one; any drift is an engine bug. Always eligible.
    {
        let mut resharded = case.clone();
        resharded.shards = if case.shards == 2 { 7 } else { 2 };
        let reshard_report = run_case(&resharded);
        match &reshard_report.outcome {
            Some(other) if other != outcome => failures.push(format!(
                "shard count changed the detection outcome: shards={} \
                 classed {:?}, shards={} classed {:?}",
                case.shards, outcome.class, resharded.shards, other.class
            )),
            None => failures.push(format!(
                "resharded twin (shards={}) panicked: {:?}",
                resharded.shards, reshard_report.panic
            )),
            _ => {}
        }
    }

    // Worker-thread count never changes any detection outcome either: the
    // windowed executor stages handler effects and commits them in serial
    // `(time, seq)` order, so it is bit-identical to the serial executor
    // for every thread count *by construction*. Like the shard oracle
    // above, this is differential, not statistical — any drift is an
    // engine bug. Always eligible.
    {
        let mut rethreaded = case.clone();
        rethreaded.threads = if case.threads == 2 { 8 } else { 2 };
        let rethread_report = run_case(&rethreaded);
        match &rethread_report.outcome {
            Some(other) if other != outcome => failures.push(format!(
                "thread count changed the detection outcome: threads={} \
                 classed {:?}, threads={} classed {:?}",
                case.threads, outcome.class, rethreaded.threads, other.class
            )),
            None => failures.push(format!(
                "rethreaded twin (threads={}) panicked: {:?}",
                rethreaded.threads, rethread_report.panic
            )),
            _ => {}
        }
    }

    // FP stays zero without attackers: nothing may ever be confirmed in
    // an attacker-free world, faults and bad radio included.
    if case.attack_kind == 0
        && (outcome.honest_confirmed || outcome.class == TrialClass::FalsePositive)
    {
        failures.push(format!(
            "false positive in attacker-free run: class {:?}",
            outcome.class
        ));
    }

    // Adding a black hole never increases PDR — on the *undefended* data
    // plane. With a defense active the relation is genuinely unsound:
    // BlackDP's probing vets routes before data flows, so an attacked,
    // defended run can legitimately out-deliver a clean run whose first
    // honest route goes stale mid-stream. The paper's monotone-damage
    // claim is about the raw attack, so both sides run with
    // `DefenseMode::None`. The clean twin keeps the SAME total vehicle
    // count — the would-be attackers become honest vehicles — because
    // removing them thins relay density and biases the twin downward.
    if pdr_relation_eligible(case) {
        let mut attacked = case.clone();
        attacked.defense = 4;
        let mut twin = attacked.clone();
        twin.attack_kind = 0;
        let attacked_report = run_case(&attacked);
        let twin_report = run_case(&twin);
        if let (Some(a), Some(c)) = (&attacked_report.outcome, &twin_report.outcome) {
            // `pdr()` is vacuously 1.0 when nothing was sent; a source
            // that never obtained a route proves nothing either way.
            if a.data_sent > 0 && c.data_sent > 0 && a.pdr() > c.pdr() + 1e-9 {
                // Confirm across seeds before flagging: the twin's node
                // mixture differs, so jitter draws decorrelate and a
                // single pair is timing-noisy.
                let attacked_mean = mean_pdr_over_seeds(&attacked);
                let clean_mean = mean_pdr_over_seeds(&twin);
                if attacked_mean > clean_mean + PDR_MARGIN {
                    failures.push(format!(
                        "adding a black hole raised undefended PDR: attacked \
                         {attacked_mean:.3} > clean {clean_mean:.3} (means over {} seeds)",
                        CONFIRM_SEEDS + 1
                    ));
                }
            }
        }
    }

    // A superset attacker set never decreases confirmed detections:
    // append one more independent black hole in the last free slot (drawn
    // after all existing plans, so the shared prefix is identical).
    if superset_relation_eligible(case) {
        let mut superset = case.clone();
        superset.attack_d = if case.attack_a < CLUSTERS {
            case.attack_a + 1
        } else {
            case.attack_a - 1
        };
        superset.vehicles = case.vehicles + 1;
        let sup_report = run_case(&superset);
        if let Some(sup_outcome) = &sup_report.outcome {
            if detections(sup_outcome) < detections(outcome) {
                let sup_mean = mean_detections_over_seeds(&superset);
                let base_mean = mean_detections_over_seeds(case);
                if sup_mean + 0.5 < base_mean {
                    failures.push(format!(
                        "superset attacker set decreased detections: {sup_mean:.2} < \
                         {base_mean:.2} (means over {} seeds)",
                        CONFIRM_SEEDS + 1
                    ));
                }
            }
        }
    }

    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn corpus_line_round_trips() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let case = FuzzCase::random(&mut rng);
            let parsed = FuzzCase::parse_line(&case.to_line()).unwrap();
            assert_eq!(parsed, case);
        }
        assert!(FuzzCase::parse_line("not-a-corpus-line").is_err());
        assert!(FuzzCase::parse_line(&format!("{CORPUS_TAG} bogus=1")).is_err());
        assert!(FuzzCase::parse_line(&format!("{CORPUS_TAG} seed=x")).is_err());
    }

    #[test]
    fn baseline_case_runs_clean_and_detects() {
        let case = FuzzCase::baseline(7);
        let report = run_case(&case);
        assert!(report.panic.is_none(), "panic: {:?}", report.panic);
        assert!(
            report.violations.is_empty(),
            "violations: {:?}",
            report.violations
        );
        let outcome = report.outcome.as_ref().unwrap();
        assert!(outcome.attack_present);
        assert!(!report.features.is_empty());
        let active = report.exercised.iter().filter(|(_, n)| *n > 0).count();
        assert!(active >= 4, "exercised: {:?}", report.exercised);
    }

    #[test]
    fn attacker_free_case_has_no_false_positive() {
        let mut case = FuzzCase::baseline(13);
        case.attack_kind = 0;
        let report = run_case(&case);
        assert!(report.is_clean());
        let failures = metamorphic_failures(&case, &report);
        assert!(failures.is_empty(), "failures: {failures:?}");
    }

    #[test]
    fn legacy_corpus_lines_parse_with_serial_backend() {
        // Pre-PR-8 corpus lines carry no `shards=` field; they must keep
        // parsing and land on the serial oracle.
        let line = format!("{CORPUS_TAG} seed=5 vehicles=30 attack_kind=2");
        let case = FuzzCase::parse_line(&line).unwrap();
        assert_eq!(case.shards, 0);
        assert_eq!(case.config().backend, WorldBackend::Serial);
        // Pre-PR-10 lines carry no `threads=` field either; they must
        // land on the serial executor.
        assert_eq!(case.threads, 0);
        assert_eq!(case.config().executor, ExecutorMode::Serial);
    }

    #[test]
    fn thread_count_never_changes_the_detection_outcome() {
        let mut case = FuzzCase::baseline(21);
        case.vehicles = 70;
        let serial = run_case(&case).outcome.unwrap();
        for threads in [1u32, 2, 8] {
            let mut windowed = case.clone();
            windowed.threads = threads;
            let outcome = run_case(&windowed).outcome.unwrap();
            assert_eq!(outcome, serial, "threads = {threads}");
        }
    }

    #[test]
    fn shard_count_never_changes_the_detection_outcome() {
        // Above the small-world scan threshold so the sharded index is
        // actually on the query path, not the scan override.
        let mut case = FuzzCase::baseline(21);
        case.vehicles = 70;
        let serial = run_case(&case).outcome.unwrap();
        for shards in [1u32, 2, 7] {
            let mut sharded = case.clone();
            sharded.shards = shards;
            let outcome = run_case(&sharded).outcome.unwrap();
            assert_eq!(outcome, serial, "shards = {shards}");
        }
    }

    #[test]
    fn bucket_is_log2_coarse() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(1024), 11);
    }
}
