//! The malicious vehicle node: one simulator shell shared by every
//! attacker variant.
//!
//! The attack behaviour itself is an [`AttackerStack`] — a chain of
//! middleware interceptors over an honest base (see
//! `blackdp_attacks::middleware`). The shell contributes everything a
//! *registered* vehicle needs regardless of its attack: the
//! legitimate-looking membership traffic that keeps it probe-able in the
//! cluster structure, the renewal-zone evasion manoeuvres (flee, identity
//! renewal, mid-detection cluster hops) and the mobility bookkeeping.
//!
//! Which shell behaviours run is a [`MaliciousProfile`]: the classic
//! black hole and gray hole are presets whose event order is bit-identical
//! to the bespoke node types they replaced, and novel combinations
//! (a cooperative gray hole that flees, say) are just different knob
//! settings over a different interceptor chain.

use blackdp::{BlackDpMessage, JoinBody, Sealed, Wire};
use blackdp_aodv::{Addr, Message as AodvMessage};
use blackdp_attacks::{AttackerAction, AttackerStack, EvasionPolicy};
use blackdp_crypto::{Keypair, TaId};
use blackdp_mobility::{ClusterId, ClusterPlan, Trajectory};
use blackdp_sim::{Channel, Context, Duration, Node, NodeId, Position, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::frame::{broadcast_wire, send_wire, Frame, L2Cache, Tick};

/// Which scenario-shell behaviours a [`MaliciousNode`] runs.
///
/// The two classic presets reproduce the event order of the bespoke node
/// types they replaced bit-for-bit; the fields are public so scenario
/// builders can compose new variants (e.g. a gray hole with the black
/// hole's probe hooks).
#[derive(Debug, Clone, Copy)]
pub struct MaliciousProfile {
    /// Metrics counter bumped for each attacker-brain event.
    pub event_counter: &'static str,
    /// Tick-stagger multiplier. Kept distinct per classic variant so the
    /// event order of existing scenarios is unchanged.
    pub phase_multiplier: u64,
    /// React to low-TTL RREQs (they look like detection probes): count
    /// them, flee the network, or schedule the mid-detection cluster hop.
    pub probe_hooks: bool,
    /// Re-register after a cluster-head reboot announcement (`Resync`).
    pub handles_resync: bool,
    /// Handle certificate-renewal replies (the `RenewIdentity` evasion).
    pub handles_renewal: bool,
    /// Broadcast a JREQ whenever unregistered, even while not inside any
    /// cluster segment — the black hole aggressively re-registers (and
    /// claims a position when hopping clusters); the classic gray hole
    /// only joins the segment it is physically in.
    pub eager_rejoin: bool,
}

impl MaliciousProfile {
    /// The classic black-hole shell: probe hooks, resync + renewal
    /// plumbing, eager re-registration.
    pub const BLACK_HOLE: MaliciousProfile = MaliciousProfile {
        event_counter: "attacker.event",
        phase_multiplier: 991,
        probe_hooks: true,
        handles_resync: true,
        handles_renewal: true,
        eager_rejoin: true,
    };

    /// The classic gray-hole shell: membership only — no probe reactions,
    /// no resync or renewal handling.
    pub const GRAY_HOLE: MaliciousProfile = MaliciousProfile {
        event_counter: "grayhole.event",
        phase_multiplier: 983,
        probe_hooks: false,
        handles_resync: false,
        handles_renewal: false,
        eager_rejoin: false,
    };
}

/// Scenario-level behaviour knobs for a malicious vehicle.
#[derive(Debug, Clone)]
pub struct MaliciousNodeConfig {
    /// Tick cadence.
    pub tick: Duration,
    /// Hello beacon interval (mimics honest nodes).
    pub hello_interval: Duration,
    /// Clusters designated as the certificate-renewal zone (paper:
    /// clusters 8–10), where the evasion policy activates.
    pub renewal_zone: (u32, u32),
    /// Departs to the next cluster right after answering the first
    /// detection probe — the mobility that produces the paper's 8/9-packet
    /// Figure 5 scenarios.
    pub move_after_probe: bool,
    /// Evasion behaviour in the renewal zone.
    pub evasion: EvasionPolicy,
    /// The trusted authority that issued the attacker's credential
    /// (addressed by renewal requests).
    pub issuer: TaId,
    /// Which shell behaviours run.
    pub profile: MaliciousProfile,
}

impl MaliciousNodeConfig {
    /// Black-hole defaults (Table-I cadences, paper renewal zone).
    pub fn black_hole(issuer: TaId) -> Self {
        MaliciousNodeConfig {
            tick: Duration::from_millis(100),
            hello_interval: Duration::from_secs(1),
            renewal_zone: (8, 10),
            move_after_probe: false,
            evasion: EvasionPolicy::None,
            issuer,
            profile: MaliciousProfile::BLACK_HOLE,
        }
    }

    /// Gray-hole defaults: same cadences, the membership-only profile.
    pub fn gray_hole(issuer: TaId) -> Self {
        MaliciousNodeConfig {
            profile: MaliciousProfile::GRAY_HOLE,
            ..Self::black_hole(issuer)
        }
    }
}

/// A malicious vehicle: an interceptor-composed attacker brain inside the
/// shared membership/evasion/mobility shell.
pub struct MaliciousNode {
    stack: AttackerStack,
    trajectory: Trajectory,
    plan: ClusterPlan,
    cfg: MaliciousNodeConfig,
    l2: L2Cache,
    cluster: Option<ClusterId>,
    ch_addr: Option<Addr>,
    ch_epoch: Option<u64>,
    join_pending_since: Option<Time>,
    pending_renew: Option<Keypair>,
    renewed: bool,
    addr_history: Vec<Addr>,
    move_pending: bool,
    fled: bool,
    rng: StdRng,
}

impl std::fmt::Debug for MaliciousNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaliciousNode")
            .field("addr", &self.addr())
            .field("cluster", &self.cluster)
            .finish()
    }
}

impl MaliciousNode {
    /// Creates the malicious vehicle around a composed attacker stack.
    pub fn new(
        stack: AttackerStack,
        trajectory: Trajectory,
        plan: ClusterPlan,
        cfg: MaliciousNodeConfig,
        seed: u64,
    ) -> Self {
        let addr = stack.core().addr();
        MaliciousNode {
            stack,
            trajectory,
            plan,
            cfg,
            l2: L2Cache::new(),
            cluster: None,
            ch_addr: None,
            ch_epoch: None,
            join_pending_since: None,
            pending_renew: None,
            renewed: false,
            addr_history: vec![addr],
            move_pending: false,
            fled: false,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Every protocol address this attacker has ever used (for metrics:
    /// a confirmation against any of them counts as a true positive).
    pub fn addr_history(&self) -> &[Addr] {
        &self.addr_history
    }

    /// The attacker's current address.
    pub fn addr(&self) -> Addr {
        self.stack.core().addr()
    }

    /// Data packets dropped by the attack.
    pub fn dropped_count(&self) -> u64 {
        self.stack.core().dropped_count()
    }

    /// Data packets deliberately forwarded as camouflage (gray holes).
    pub fn forwarded_count(&self) -> u64 {
        self.stack.core().forwarded_count()
    }

    /// Victims lured.
    pub fn lured_count(&self) -> u64 {
        self.stack.core().lured_count()
    }

    /// True if the attacker fled the network (or drove off the highway).
    pub fn has_fled(&self) -> bool {
        self.fled
    }

    /// Read access to the interceptor stack (for assertions in tests).
    pub fn stack(&self) -> &AttackerStack {
        &self.stack
    }

    fn in_renewal_zone(&self, now: Time) -> bool {
        let pos = self.trajectory.position_at(now);
        self.plan
            .cluster_of(pos)
            .map(|c| (self.cfg.renewal_zone.0..=self.cfg.renewal_zone.1).contains(&c.0))
            .unwrap_or(false)
    }

    fn run_attacker_actions(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        actions: Vec<AttackerAction>,
    ) {
        let my = self.stack.core().addr();
        for action in actions {
            match action {
                AttackerAction::SendTo { to, wire } => {
                    send_wire(ctx, &self.l2, my, to, wire);
                }
                AttackerAction::Broadcast { wire } => broadcast_wire(ctx, my, wire),
                AttackerAction::Event(_) => ctx.count(self.cfg.profile.event_counter),
            }
        }
    }

    /// Deregisters from the current cluster head, if any.
    fn leave_current(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        if let (Some(_), Some(ch)) = (self.cluster, self.ch_addr) {
            let my = self.stack.core().addr();
            send_wire(
                ctx,
                &self.l2,
                my,
                ch,
                Wire::BlackDp(BlackDpMessage::Leave {
                    vehicle: self.stack.core().pseudonym(),
                }),
            );
            self.cluster = None;
            self.ch_addr = None;
            self.stack.core_mut().set_cluster(None);
        }
    }

    /// Sends Leave + JREQ as the vehicle crosses (or pretends to cross)
    /// into the next cluster.
    fn rejoin(&mut self, ctx: &mut Context<'_, Frame, Tick>, target: Option<ClusterId>) {
        let now = ctx.now();
        self.leave_current(ctx);
        let pos = self.trajectory.position_at(now);
        // If moving "into" a target cluster, present a position just over
        // the boundary (the attacker is near it anyway).
        let claimed_x = match target {
            Some(c) => ((c.0 as f64 - 1.0) * self.plan.cluster_len_m() + 10.0).max(pos.x),
            None => pos.x,
        };
        let body = JoinBody {
            pos_x: claimed_x,
            pos_y: pos.y,
            speed_kmh: self.trajectory.speed().0,
            forward: true,
        };
        let sealed = Sealed::seal(
            body,
            *self.stack.core().cert(),
            None,
            self.stack.core().keys(),
            &mut self.rng,
        );
        broadcast_wire(
            ctx,
            self.stack.core().addr(),
            Wire::BlackDp(BlackDpMessage::Jreq(sealed)),
        );
        self.join_pending_since = Some(now);
    }

    fn membership_tick(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        let now = ctx.now();
        let pos = self.trajectory.position_at(now);
        let here = self.plan.cluster_of(pos);
        if here == self.cluster && self.cluster.is_some() {
            return;
        }
        if let Some(since) = self.join_pending_since {
            if now.saturating_since(since) < Duration::from_millis(500) {
                return;
            }
        }
        if !self.cfg.profile.eager_rejoin && here.is_none() {
            // Off every segment: deregister, but do not claim membership.
            self.leave_current(ctx);
            return;
        }
        self.rejoin(ctx, None);
    }

    fn renewal_tick(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        let now = ctx.now();
        let in_zone = self.in_renewal_zone(now);
        match self.cfg.evasion {
            EvasionPolicy::ActLegitimately => {
                // Dormant inside the zone, attacking outside it.
                self.stack.core_mut().set_dormant(in_zone);
            }
            EvasionPolicy::RenewIdentity => {
                if in_zone && !self.renewed && self.pending_renew.is_none() {
                    if let Some(ch) = self.ch_addr {
                        let keys = Keypair::generate(&mut self.rng);
                        let my = self.stack.core().addr();
                        send_wire(
                            ctx,
                            &self.l2,
                            my,
                            ch,
                            Wire::BlackDp(BlackDpMessage::RenewRequest {
                                current: self.stack.core().pseudonym(),
                                issuer: self.cfg.issuer,
                                new_key: keys.public(),
                                reply_cluster: self.cluster.unwrap_or(ClusterId(0)),
                            }),
                        );
                        self.pending_renew = Some(keys);
                        ctx.count("attacker.renew_requested");
                    }
                }
            }
            EvasionPolicy::None | EvasionPolicy::Flee => {}
        }
    }
}

impl Node<Frame, Tick> for MaliciousNode {
    fn position(&self, now: Time) -> Position {
        self.trajectory.position_at(now)
    }

    /// Attackers may flee — despawn — straight from `on_packet` (the
    /// paper's "leaves the network instead of responding" manoeuvre), which
    /// changes the engine's gating state for later same-window deliveries.
    /// Marking the node exclusive keeps its deliveries on the windowed
    /// executor's serial path; see [`Node::exclusive_dispatch`].
    fn exclusive_dispatch(&self) -> bool {
        true
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        let phase = Duration::from_micros(
            u64::from(ctx.self_id().index()) * self.cfg.profile.phase_multiplier % 50_000,
        );
        ctx.set_timer(self.cfg.tick + phase, Tick);
    }

    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        from: NodeId,
        frame: Frame,
        _channel: Channel,
    ) {
        let now = ctx.now();
        if let Some(dst) = frame.dst {
            if dst != self.stack.core().addr() {
                return;
            }
        }
        self.l2.learn(frame.src, from);

        // Evasion hooks before the brain reacts.
        if self.cfg.profile.probe_hooks {
            if let Wire::Aodv(AodvMessage::Rreq(rreq)) = &frame.wire {
                let looks_like_probe = rreq.ttl <= 1;
                if looks_like_probe {
                    ctx.count("attacker.probe_seen");
                    if self.cfg.evasion == EvasionPolicy::Flee && self.in_renewal_zone(now) {
                        // "The attacker fled from the network ... without
                        // responding to the RSU detection packets."
                        ctx.count("attacker.fled");
                        self.fled = true;
                        ctx.despawn();
                        return;
                    }
                    if self.cfg.move_after_probe {
                        self.move_pending = true;
                    }
                }
            }
        }

        // Membership / renewal plumbing the brain doesn't own.
        match &frame.wire {
            Wire::BlackDp(BlackDpMessage::Jrep {
                cluster,
                ch_addr,
                epoch,
                ..
            }) => {
                self.cluster = Some(*cluster);
                self.ch_addr = Some(*ch_addr);
                self.ch_epoch = Some(*epoch);
                self.join_pending_since = None;
                self.stack.core_mut().set_cluster(Some(*cluster));
                return;
            }
            Wire::BlackDp(BlackDpMessage::Resync { cluster, epoch, .. })
                if self.cfg.profile.handles_resync =>
            {
                // The CH rebooted and forgot us. Re-registering keeps the
                // attacker looking legitimate (and probe-able).
                if self.cluster == Some(*cluster) && self.ch_epoch != Some(*epoch) {
                    self.cluster = None;
                    self.ch_addr = None;
                    self.ch_epoch = None;
                    self.join_pending_since = None;
                    self.stack.core_mut().set_cluster(None);
                }
                return;
            }
            Wire::BlackDp(BlackDpMessage::RenewReply { current, cert })
                if self.cfg.profile.handles_renewal =>
            {
                if *current == self.stack.core().pseudonym() {
                    match (cert, self.pending_renew.take()) {
                        (Some(new_cert), Some(keys)) => {
                            ctx.count("attacker.renewed");
                            self.renewed = true;
                            self.stack.core_mut().renew_identity(keys, *new_cert);
                            self.addr_history.push(self.stack.core().addr());
                            // Re-register under the fresh pseudonym.
                            self.rejoin(ctx, None);
                        }
                        _ => ctx.count("attacker.renewal_refused"),
                    }
                }
                return;
            }
            _ => {}
        }

        let actions = self.stack.handle_wire(frame.src, &frame.wire, now);
        self.run_attacker_actions(ctx, actions);

        // Cross into the next cluster right after answering the probe
        // (Figure 5's moving-suspect scenarios).
        if self.move_pending {
            self.move_pending = false;
            self.cfg.move_after_probe = false; // once
            let next = self
                .cluster
                .map(|c| ClusterId(c.0 + 1))
                .filter(|c| c.0 <= self.plan.cluster_count());
            if next.is_some() {
                ctx.count("attacker.moved_mid_detection");
                self.rejoin(ctx, next);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Frame, Tick>, _token: Tick) {
        let now = ctx.now();
        if self.trajectory.has_exited(self.plan.highway(), now) {
            // Malicious nodes do not bother to deregister.
            self.fled = true;
            ctx.despawn();
            return;
        }
        self.membership_tick(ctx);
        self.renewal_tick(ctx);
        let actions = self.stack.tick(now, self.cfg.hello_interval);
        self.run_attacker_actions(ctx, actions);
        ctx.set_timer(self.cfg.tick, Tick);
    }

    fn state_digest(&self) -> u64 {
        // The attacker stack holds trace-invisible state (private RNG, drop
        // counters); surfacing it lets checkpoint verification catch silent
        // divergence inside the middleware chain.
        self.stack.state_digest()
    }
}
