//! A wire-level frame journal: records every delivered frame in a trial
//! for post-hoc protocol analysis (packet accounting audits, anonymity
//! invariants, conversation extraction).

use std::cell::RefCell;
use std::rc::Rc;

use blackdp_aodv::Addr;
use blackdp_sim::{Channel, NodeId, Time};

use crate::build::BuiltScenario;
use crate::frame::Frame;

/// One delivered frame.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Delivery time.
    pub at: Time,
    /// Transmitting simulator node.
    pub from: NodeId,
    /// Receiving simulator node.
    pub to: NodeId,
    /// Radio or wired backbone.
    pub channel: Channel,
    /// The frame's link-layer source address.
    pub src: Addr,
    /// The frame's link-layer destination (None = broadcast).
    pub dst: Option<Addr>,
    /// The payload kind tag (`rreq`, `dreq`, `hello_probe`, …).
    pub kind: &'static str,
    /// FNV-64 digest of the full wire payload (its canonical `Debug`
    /// rendering), so trace diffs catch content changes that keep the
    /// same kind tag.
    pub digest: u64,
}

/// FNV-1a 64-bit digest of a wire payload's canonical `Debug` rendering.
pub(crate) fn wire_digest(wire: &blackdp::Wire) -> u64 {
    use std::fmt::Write;
    struct Fnv(u64);
    impl Write for Fnv {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for b in s.bytes() {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Ok(())
        }
    }
    let mut h = Fnv(0xCBF2_9CE4_8422_2325);
    let _ = write!(h, "{wire:?}");
    h.0
}

/// The journal: a time-ordered record of every delivery in a run.
///
/// # Examples
///
/// ```no_run
/// use blackdp_scenario::{attach_journal, build_scenario, ScenarioConfig, TrialSpec};
/// use blackdp_sim::Time;
///
/// let cfg = ScenarioConfig::small_test();
/// let mut built = build_scenario(&cfg, &TrialSpec::single(1, 2, 10));
/// let journal = attach_journal(&mut built);
/// built.world.run_until(Time::from_secs(10));
/// println!("{} frames delivered", journal.borrow().len());
/// println!("{} of them were detection requests", journal.borrow().count_kind("dreq"));
/// ```
#[derive(Debug, Default)]
pub struct FrameJournal {
    entries: Vec<JournalEntry>,
}

impl FrameJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        FrameJournal::default()
    }

    /// Number of recorded deliveries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in delivery order.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Number of deliveries of the given payload kind.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.entries.iter().filter(|e| e.kind == kind).count()
    }

    /// Entries involving the protocol address `addr` (as L2 source or
    /// destination).
    pub fn involving(&self, addr: Addr) -> impl Iterator<Item = &JournalEntry> {
        self.entries
            .iter()
            .filter(move |e| e.src == addr || e.dst == Some(addr))
    }

    /// Entries received by simulator node `node`.
    pub fn received_by(&self, node: NodeId) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter().filter(move |e| e.to == node)
    }

    /// The distinct payload kinds seen, with counts, in kind order.
    pub fn kind_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for e in &self.entries {
            *map.entry(e.kind).or_insert(0) += 1;
        }
        map.into_iter().collect()
    }
}

/// Shared handle to a journal being filled by a running world.
pub type JournalHandle = Rc<RefCell<FrameJournal>>;

/// Attaches a fresh frame journal to a built scenario's world. Every frame
/// delivered from this point on is recorded. Returns the shared handle to
/// read after (or during) the run.
pub fn attach_journal(built: &mut BuiltScenario) -> JournalHandle {
    let journal: JournalHandle = Rc::new(RefCell::new(FrameJournal::new()));
    let sink = Rc::clone(&journal);
    built
        .world
        .set_tap(Box::new(move |at, from, to, frame: &Frame, channel| {
            sink.borrow_mut().entries.push(JournalEntry {
                at,
                from,
                to,
                channel,
                src: frame.src,
                dst: frame.dst,
                kind: frame.wire.kind(),
                digest: wire_digest(&frame.wire),
            });
        }));
    journal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(kind: &'static str, src: u64, dst: Option<u64>) -> JournalEntry {
        JournalEntry {
            at: Time::ZERO,
            from: NodeId::new(0),
            to: NodeId::new(1),
            channel: Channel::Radio,
            src: Addr(src),
            dst: dst.map(Addr),
            kind,
            digest: 0,
        }
    }

    #[test]
    fn histogram_and_counts() {
        let mut j = FrameJournal::new();
        j.entries.push(entry("rreq", 1, None));
        j.entries.push(entry("rreq", 2, None));
        j.entries.push(entry("dreq", 1, Some(9)));
        assert_eq!(j.len(), 3);
        assert_eq!(j.count_kind("rreq"), 2);
        assert_eq!(j.count_kind("nothing"), 0);
        assert_eq!(j.kind_histogram(), vec![("dreq", 1), ("rreq", 2)]);
        assert_eq!(j.involving(Addr(1)).count(), 2);
        assert_eq!(j.involving(Addr(9)).count(), 1);
        assert_eq!(j.received_by(NodeId::new(1)).count(), 3);
        assert!(!j.is_empty());
    }
}
