//! The simulated RSU: hosts a [`ClusterHead`] at the center of its
//! segment, bridging the radio and the wired backbone.

use blackdp::{BlackDpMessage, ChAction, ChEvent, ClusterHead, Wire};
use blackdp_aodv::{Message as AodvMessage, Rreq};
use blackdp_mobility::ClusterPlan;
use blackdp_sim::{Channel, Context, Duration, Node, NodeId, Position, Time};

use crate::directory::WiredDirectory;
use crate::frame::{broadcast_wire, send_wire, Frame, L2Cache, Tick};

/// The RSU / cluster-head node.
pub struct RsuNode {
    ch: ClusterHead,
    position: Position,
    segment: (f64, f64),
    dir: WiredDirectory,
    l2: L2Cache,
    tick: Duration,
    events: Vec<ChEvent>,
    timeline: Vec<(Time, ChEvent)>,
}

impl std::fmt::Debug for RsuNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RsuNode")
            .field("cluster", &self.ch.cluster())
            .field("events", &self.events.len())
            .finish()
    }
}

impl RsuNode {
    /// Creates the RSU for `ch`'s cluster, positioned per `plan`.
    pub fn new(ch: ClusterHead, plan: &ClusterPlan, tick: Duration) -> Self {
        let cluster = ch.cluster();
        let position = plan
            .rsu_position(cluster)
            .expect("cluster head must have a planned position");
        let start = (cluster.0 as f64 - 1.0) * plan.cluster_len_m();
        let end = (start + plan.cluster_len_m()).min(plan.highway().length_m);
        RsuNode {
            ch,
            position,
            segment: (start, end),
            dir: WiredDirectory::new(),
            l2: L2Cache::new(),
            tick,
            events: Vec::new(),
            timeline: Vec::new(),
        }
    }

    /// Installs the wired-backbone directory (after all infrastructure is
    /// spawned).
    pub fn set_directory(&mut self, dir: WiredDirectory) {
        self.dir = dir;
    }

    /// The wrapped cluster head (for metrics and assertions).
    pub fn cluster_head(&self) -> &ClusterHead {
        &self.ch
    }

    /// Protocol events observed so far.
    pub fn events(&self) -> &[ChEvent] {
        &self.events
    }

    /// Events with the virtual times they occurred at.
    pub fn timeline(&self) -> &[(Time, ChEvent)] {
        &self.timeline
    }

    fn run_ch_actions(&mut self, ctx: &mut Context<'_, Frame, Tick>, actions: Vec<ChAction>) {
        let now = ctx.now();
        for action in actions {
            match action {
                ChAction::Radio { to, wire } => {
                    // Probe RREQs travel under their disposable identity so
                    // the suspect cannot link them to the RSU.
                    let src = match &wire {
                        Wire::Aodv(AodvMessage::Rreq(Rreq { orig, .. })) => *orig,
                        _ => self.ch.addr(),
                    };
                    send_wire(ctx, &self.l2, src, to, wire);
                }
                ChAction::RadioBroadcast { wire } => {
                    broadcast_wire(ctx, self.ch.addr(), wire);
                }
                ChAction::WiredCh { cluster, msg } => {
                    if let Some(node) = self.dir.ch(cluster) {
                        ctx.send_wired(
                            node,
                            Frame {
                                src: self.ch.addr(),
                                dst: None,
                                wire: Wire::BlackDp(msg),
                            },
                        );
                    } else {
                        ctx.count("rsu.wired_unknown_ch");
                    }
                }
                ChAction::WiredTa { ta, msg } => {
                    if let Some(node) = self.dir.ta(ta) {
                        ctx.send_wired(
                            node,
                            Frame {
                                src: self.ch.addr(),
                                dst: None,
                                wire: Wire::BlackDp(msg),
                            },
                        );
                    } else {
                        ctx.count("rsu.wired_unknown_ta");
                    }
                }
                ChAction::Event(e) => {
                    ctx.count(&format!("rsu.event.{}", event_tag(&e)));
                    self.timeline.push((now, e.clone()));
                    self.events.push(e);
                }
            }
        }
    }
}

fn event_tag(e: &ChEvent) -> &'static str {
    match e {
        ChEvent::MemberJoined(_) => "member_joined",
        ChEvent::MemberLeft(_) => "member_left",
        ChEvent::JoinRejected(_) => "join_rejected",
        ChEvent::DetectionStarted { .. } => "detection_started",
        ChEvent::DetectionConcluded { .. } => "detection_concluded",
        ChEvent::IsolationRequested(_) => "isolation_requested",
        ChEvent::Restarted => "restarted",
        ChEvent::RevocationRetried { .. } => "revocation_retried",
        ChEvent::RevocationAbandoned(_) => "revocation_abandoned",
        ChEvent::DetectionDeferred { .. } => "detection_deferred",
        ChEvent::ForwardReplayed { .. } => "forward_replayed",
    }
}

impl Node<Frame, Tick> for RsuNode {
    fn position(&self, _now: Time) -> Position {
        self.position
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        ctx.set_timer(self.tick, Tick);
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        // The crash wiped the CH's volatile tables: run the protocol-level
        // reboot (conclude in-flight episodes, announce a fresh epoch) and
        // re-arm the maintenance timer the crash dropped.
        let actions = self.ch.restart(ctx.now());
        self.run_ch_actions(ctx, actions);
        // Announce the fresh epoch to peer CHs over the backbone as well:
        // inter-RSU radio reach is marginal, and peers must replay any
        // detection they forwarded here before the crash.
        let own = self.ch.cluster();
        let mut peers: Vec<_> = self
            .dir
            .clusters()
            .filter(|&(c, _)| c != own)
            .collect();
        peers.sort_by_key(|&(c, _)| c.0);
        for (_, node) in peers {
            ctx.send_wired(
                node,
                Frame {
                    src: self.ch.addr(),
                    dst: None,
                    wire: Wire::BlackDp(BlackDpMessage::Resync {
                        cluster: own,
                        ch_addr: self.ch.addr(),
                        epoch: self.ch.epoch(),
                    }),
                },
            );
        }
        ctx.set_timer(self.tick, Tick);
    }

    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        from: NodeId,
        frame: Frame,
        channel: Channel,
    ) {
        let now = ctx.now();
        // Accept frames for the CH itself or for any of its disposable
        // probe identities.
        if channel == Channel::Radio {
            if let Some(dst) = frame.dst {
                if dst != self.ch.addr() && !self.ch.is_probe_orig(dst) {
                    return;
                }
            }
            self.l2.learn(frame.src, from);
        }
        match frame.wire {
            Wire::SecuredRrep { rrep, .. } => {
                if self.ch.is_probe_orig(rrep.orig) {
                    let actions = self.ch.on_probe_rrep(frame.src, &rrep, now);
                    self.run_ch_actions(ctx, actions);
                }
            }
            Wire::Aodv(AodvMessage::Rrep(rrep)) => {
                if self.ch.is_probe_orig(rrep.orig) {
                    let actions = self.ch.on_probe_rrep(frame.src, &rrep, now);
                    self.run_ch_actions(ctx, actions);
                }
            }
            Wire::Aodv(_) => {
                // RSUs do not participate in AODV routing (the paper keeps
                // routing among vehicles; RSUs do detection).
            }
            Wire::BlackDp(msg) => {
                // Join requests are claimed by the segment owner — or by a
                // CH a vehicle addressed directly (fail-over registration
                // while its home CH is down).
                if let BlackDpMessage::Jreq(sealed) = &msg {
                    let x = sealed.body.pos_x;
                    let addressed = frame.dst == Some(self.ch.addr());
                    if (x < self.segment.0 || x >= self.segment.1) && !addressed {
                        return;
                    }
                }
                let actions = self.ch.handle_blackdp(frame.src, msg, now);
                self.run_ch_actions(ctx, actions);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Frame, Tick>, _token: Tick) {
        let now = ctx.now();
        let actions = self.ch.tick(now);
        self.run_ch_actions(ctx, actions);
        ctx.set_timer(self.tick, Tick);
    }
}
