//! Symbolic infrastructure-fault schedules for scenario trials.
//!
//! A [`FaultSpec`] names faults in scenario terms — "cluster 2's RSU
//! crashes at t=3 s for 2 s", "TA region 0 is unreachable from t=4 s to
//! t=8 s" — and is *realized* against a built scenario into the
//! simulator-level [`FaultPlan`] of node ids. [`run_fault_trial`] wires
//! the two together and harvests recovery metrics (time-to-recover,
//! degraded-mode activity) on top of the usual [`TrialOutcome`].

use blackdp::ChEvent;
use blackdp_sim::{
    CrashFault, Duration, FaultPlan, FaultWindow, RadioBurst, Time, WiredOutage,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::build::{build_scenario, harvest, stage_false_suspicion, BuiltScenario};
use crate::config::{ScenarioConfig, TrialSpec};
use crate::metrics::TrialOutcome;
use crate::rsu_node::RsuNode;

/// One scheduled RSU crash (offsets are from trial start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RsuCrash {
    /// Which cluster's RSU dies.
    pub cluster: u32,
    /// When it dies.
    pub at: Duration,
    /// How long it stays down; `None` means it never comes back.
    pub down_for: Option<Duration>,
}

/// A trusted authority unreachable over the backbone for a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaOutage {
    /// Index into [`ScenarioConfig::ta_regions`].
    pub region: usize,
    /// Outage start.
    pub from: Duration,
    /// Outage end (exclusive).
    pub until: Duration,
}

/// A backhaul partition: the wired link between two clusters' RSUs drops
/// everything in both directions for a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackhaulPartition {
    /// One side of the severed link.
    pub cluster_a: u32,
    /// The other side.
    pub cluster_b: u32,
    /// Partition start.
    pub from: Duration,
    /// Partition end (exclusive).
    pub until: Duration,
}

/// A window of extra radio loss on top of the configured channel model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioBurstSpec {
    /// Burst start.
    pub from: Duration,
    /// Burst end (exclusive).
    pub until: Duration,
    /// Additional independent loss probability in `[0, 1]`.
    pub extra_loss: f64,
}

/// A full symbolic fault schedule for one trial.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// RSU crash/restart events.
    pub rsu_crashes: Vec<RsuCrash>,
    /// TA backhaul outages.
    pub ta_outages: Vec<TaOutage>,
    /// Inter-RSU backhaul partitions.
    pub backhaul_partitions: Vec<BackhaulPartition>,
    /// Radio-degradation bursts.
    pub radio_bursts: Vec<RadioBurstSpec>,
}

impl FaultSpec {
    /// A schedule with no faults at all.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.rsu_crashes.is_empty()
            && self.ta_outages.is_empty()
            && self.backhaul_partitions.is_empty()
            && self.radio_bursts.is_empty()
    }

    /// Draws a randomized schedule scaled by `intensity` in `[0, 1]`.
    ///
    /// The schedule is shaped so recovery is *observable* within the run:
    /// every crash restarts, and every fault window closes by ~60 % of the
    /// horizon, leaving the tail for re-joins, replayed detections, and
    /// retried revocations. Radio bursts land in the closing third, where
    /// they stress data delivery rather than masking the detection
    /// exchange entirely.
    pub fn randomized(seed: u64, intensity: f64, cfg: &ScenarioConfig) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        let mut spec = FaultSpec::none();
        if intensity == 0.0 {
            return spec;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0FA1_17ED_5EED);
        let h = cfg.sim_duration.as_micros();
        let clusters = cfg.plan().cluster_count();

        let crashes = (intensity * 3.0).ceil() as usize;
        for _ in 0..crashes {
            let at = h / 10 + rng.random_range(0..h / 5);
            let down = h / 20 + rng.random_range(0..h / 10);
            spec.rsu_crashes.push(RsuCrash {
                cluster: rng.random_range(1..=clusters),
                at: Duration::from_micros(at),
                down_for: Some(Duration::from_micros(down)),
            });
        }
        if rng.random::<f64>() < intensity && !cfg.ta_regions.is_empty() {
            let from = h / 8 + rng.random_range(0..h / 4);
            let len = h / 10 + rng.random_range(0..h / 10);
            spec.ta_outages.push(TaOutage {
                region: rng.random_range(0..cfg.ta_regions.len()),
                from: Duration::from_micros(from),
                until: Duration::from_micros(from + len),
            });
        }
        if rng.random::<f64>() < intensity && clusters >= 2 {
            let a = rng.random_range(1..clusters);
            let from = h / 8 + rng.random_range(0..h / 4);
            let len = h / 10 + rng.random_range(0..h / 10);
            spec.backhaul_partitions.push(BackhaulPartition {
                cluster_a: a,
                cluster_b: a + 1,
                from: Duration::from_micros(from),
                until: Duration::from_micros(from + len),
            });
        }
        if rng.random::<f64>() < intensity {
            let from = 2 * h / 3 + rng.random_range(0..h / 6);
            let len = h / 10 + rng.random_range(0..h / 8);
            spec.radio_bursts.push(RadioBurstSpec {
                from: Duration::from_micros(from),
                until: Duration::from_micros((from + len).min(h)),
                extra_loss: 0.05 + 0.25 * intensity * rng.random::<f64>(),
            });
        }
        spec
    }

    /// Translates the symbolic schedule into a node-level [`FaultPlan`]
    /// for `built`. Entries naming clusters or regions the scenario does
    /// not have are skipped.
    pub fn realize(&self, cfg: &ScenarioConfig, built: &BuiltScenario) -> FaultPlan {
        let mut plan = FaultPlan::none();
        let rsu_of = |cluster: u32| {
            (cluster >= 1)
                .then(|| built.rsus.get((cluster - 1) as usize).copied())
                .flatten()
        };
        for crash in &self.rsu_crashes {
            let Some(node) = rsu_of(crash.cluster) else {
                continue;
            };
            plan.crashes.push(CrashFault {
                node,
                at: Time::ZERO + crash.at,
                restart_at: crash.down_for.map(|d| Time::ZERO + crash.at + d),
            });
        }
        for outage in &self.ta_outages {
            let Some(&node) = built.tas.get(outage.region) else {
                continue;
            };
            plan.wired_isolations.push((
                node,
                FaultWindow::new(Time::ZERO + outage.from, Time::ZERO + outage.until),
            ));
        }
        for part in &self.backhaul_partitions {
            let (Some(a), Some(b)) = (rsu_of(part.cluster_a), rsu_of(part.cluster_b)) else {
                continue;
            };
            plan.wired_outages.push(WiredOutage {
                a,
                b,
                window: FaultWindow::new(Time::ZERO + part.from, Time::ZERO + part.until),
            });
        }
        for burst in &self.radio_bursts {
            plan.radio_bursts.push(RadioBurst {
                window: FaultWindow::new(Time::ZERO + burst.from, Time::ZERO + burst.until),
                extra_loss: burst.extra_loss,
            });
        }
        let _ = cfg;
        plan
    }
}

/// A [`TrialOutcome`] extended with infrastructure-recovery metrics.
#[derive(Debug, Clone)]
pub struct FaultTrialOutcome {
    /// The ordinary detection/delivery outcome.
    pub base: TrialOutcome,
    /// RSU crashes that fired (`fault.crash`).
    pub crashes: u64,
    /// Crashed nodes that came back (`fault.restart`).
    pub restarts: u64,
    /// Worst membership-recovery time across restarted RSUs: from the
    /// restart to that RSU's first `MemberJoined` afterwards.
    pub time_to_recover: Option<Duration>,
    /// Restarts after which no member ever re-registered (an empty
    /// segment at restart time also counts here).
    pub unrecovered_restarts: u32,
    /// Revocation-request retries across all RSUs
    /// (`rsu.event.revocation_retried`).
    pub revocation_retries: u64,
    /// Revocation requests abandoned after exhausting retries.
    pub revocations_abandoned: u64,
    /// Deliveries swallowed by faults (`fault.drop.*`).
    pub fault_drops: u64,
}

/// Runs one trial under `faults` and harvests outcome plus recovery
/// metrics. With [`FaultSpec::none`] this is byte-for-byte [`run_trial`]
/// (the injector installs nothing).
///
/// [`run_trial`]: crate::build::run_trial
pub fn run_fault_trial(
    cfg: &ScenarioConfig,
    spec: &TrialSpec,
    faults: &FaultSpec,
) -> FaultTrialOutcome {
    let mut built = build_scenario(cfg, spec);
    let plan = faults.realize(cfg, &built);
    if !plan.is_empty() {
        built.world.install_faults(plan);
    }
    stage_false_suspicion(&mut built, spec);
    built.world.run_until(Time::ZERO + cfg.sim_duration);

    let base = harvest(cfg, spec, &built);
    let stats = built.world.stats();

    let mut time_to_recover: Option<Duration> = None;
    let mut unrecovered = 0u32;
    for &rsu in &built.rsus {
        let Some(node) = built.world.get::<RsuNode>(rsu) else {
            continue;
        };
        let timeline = node.timeline();
        for (i, (t_restart, event)) in timeline.iter().enumerate() {
            if !matches!(event, ChEvent::Restarted) {
                continue;
            }
            let rejoin = timeline[i + 1..]
                .iter()
                .find(|(_, e)| matches!(e, ChEvent::MemberJoined(_)))
                .map(|(t, _)| t.saturating_since(*t_restart));
            match rejoin {
                Some(d) => {
                    time_to_recover = Some(time_to_recover.map_or(d, |m: Duration| m.max(d)))
                }
                None => unrecovered += 1,
            }
        }
    }

    FaultTrialOutcome {
        base,
        crashes: stats.get("fault.crash"),
        restarts: stats.get("fault.restart"),
        time_to_recover,
        unrecovered_restarts: unrecovered,
        revocation_retries: stats.get("rsu.event.revocation_retried"),
        revocations_abandoned: stats.get("rsu.event.revocation_abandoned"),
        fault_drops: stats.sum_prefix("fault.drop."),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randomized_is_deterministic_and_scales() {
        let cfg = ScenarioConfig::small_test();
        let a = FaultSpec::randomized(7, 0.6, &cfg);
        let b = FaultSpec::randomized(7, 0.6, &cfg);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(!a.is_empty());
        let c = FaultSpec::randomized(8, 0.6, &cfg);
        assert_ne!(a, c, "different seeds draw different schedules");
        assert!(FaultSpec::randomized(7, 0.0, &cfg).is_empty());
    }

    #[test]
    fn randomized_windows_close_before_the_tail() {
        let cfg = ScenarioConfig::small_test();
        let h = cfg.sim_duration;
        for seed in 0..30 {
            let spec = FaultSpec::randomized(seed, 1.0, &cfg);
            for c in &spec.rsu_crashes {
                let restart = c.at + c.down_for.expect("randomized crashes always restart");
                assert!(restart < Duration::from_micros(h.as_micros() * 6 / 10));
            }
            for o in &spec.ta_outages {
                assert!(o.until < Duration::from_micros(h.as_micros() * 6 / 10));
            }
            for p in &spec.backhaul_partitions {
                assert!(p.until < Duration::from_micros(h.as_micros() * 6 / 10));
            }
            for b in &spec.radio_bursts {
                assert!(b.extra_loss > 0.0 && b.extra_loss < 0.5);
                assert!(b.until <= h, "burst must end within the run");
            }
        }
    }

    #[test]
    fn empty_spec_realizes_to_empty_plan() {
        let cfg = ScenarioConfig::small_test();
        let spec = TrialSpec::single(1, 2, cfg.plan().cluster_count());
        let built = build_scenario(&cfg, &spec);
        assert!(FaultSpec::none().realize(&cfg, &built).is_empty());
    }

    #[test]
    fn out_of_range_entries_are_skipped() {
        let cfg = ScenarioConfig::small_test();
        let spec = TrialSpec::single(1, 2, cfg.plan().cluster_count());
        let built = build_scenario(&cfg, &spec);
        let faults = FaultSpec {
            rsu_crashes: vec![RsuCrash {
                cluster: 99,
                at: Duration::from_secs(1),
                down_for: None,
            }],
            ta_outages: vec![TaOutage {
                region: 9,
                from: Duration::from_secs(1),
                until: Duration::from_secs(2),
            }],
            backhaul_partitions: vec![BackhaulPartition {
                cluster_a: 0,
                cluster_b: 98,
                from: Duration::from_secs(1),
                until: Duration::from_secs(2),
            }],
            radio_bursts: Vec::new(),
        };
        assert!(faults.realize(&cfg, &built).is_empty());
    }
}
