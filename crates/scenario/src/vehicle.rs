//! The honest vehicle node: AODV routing + BlackDP verification +
//! cluster membership + application traffic, in one simulated entity.

use std::collections::{HashMap, HashSet};

use blackdp::{
    addr_of, BlackDpConfig, BlackDpMessage, DReq, DetectionOutcome, DetectionResponse, HelloReply,
    JoinBody, RouteAuth, RrepBody, Sealed, SourceVerifier, VerifierAction, Wire,
};
use blackdp_aodv::{
    Action as AodvAction, Addr, Aodv, AodvConfig, Event as AodvEvent, Message as AodvMessage, Rrep,
};
use blackdp_baselines::{FirstRrepComparator, PeakDetector, RrepJudge, ThresholdDetector, Verdict};
use blackdp_crypto::{Certificate, Keypair, PseudonymId, PublicKey, RevocationList};
use blackdp_mobility::{ClusterId, ClusterPlan, Trajectory};
use blackdp_sim::{Channel, Context, Duration, Node, NodeId, Position, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::frame::{broadcast_wire, send_wire, Frame, L2Cache, Tick};

/// Which route-acceptance defense the vehicle runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseMode {
    /// The paper's protocol: secure RREPs, Hello probes, RSU detection.
    BlackDp,
    /// Jaiswal-style first-RREP comparison (collect window then judge).
    BaselineFirstRrep,
    /// Jhaveri-style dynamic PEAK bound.
    BaselinePeak,
    /// Tan-style static sequence-number threshold.
    BaselineThreshold,
    /// No defense: accept the freshest RREP blindly (plain AODV).
    None,
}

/// One application traffic intent: send `count` packets to `dest`,
/// `interval` apart, starting at `start`.
#[derive(Debug, Clone)]
pub struct TrafficIntent {
    /// The destination address.
    pub dest: Addr,
    /// When to begin.
    pub start: Time,
    /// Number of data packets to send.
    pub count: u32,
    /// Gap between packets.
    pub interval: Duration,
}

#[derive(Debug)]
struct IntentState {
    intent: TrafficIntent,
    sent: u32,
    next_at: Time,
    last_kick: Option<Time>,
}

/// Statistics and protocol configuration for a vehicle.
#[derive(Debug, Clone)]
pub struct VehicleConfig {
    /// AODV parameters.
    pub aodv: AodvConfig,
    /// BlackDP parameters.
    pub blackdp: BlackDpConfig,
    /// Defense mode.
    pub defense: DefenseMode,
    /// Tick cadence.
    pub tick: Duration,
    /// Collection window for the first-RREP baseline.
    pub first_rrep_window: Duration,
    /// Radio range, used to classify join zones (single vs. overlapped,
    /// Section III-A).
    pub range_m: f64,
}

impl Default for VehicleConfig {
    fn default() -> Self {
        VehicleConfig {
            aodv: AodvConfig::default(),
            blackdp: BlackDpConfig::default(),
            defense: DefenseMode::BlackDp,
            tick: Duration::from_millis(100),
            first_rrep_window: Duration::from_millis(600),
            range_m: 1000.0,
        }
    }
}

/// A route identity snapshot used to decide when re-verification is
/// needed: the route changed if its next hop or sequence number did.
type RouteFingerprint = (Addr, u32);

/// The honest vehicle.
pub struct VehicleNode {
    trajectory: Trajectory,
    plan: ClusterPlan,
    keys: Keypair,
    cert: Certificate,
    ta_key: PublicKey,
    cfg: VehicleConfig,
    aodv: Aodv,
    verifier: SourceVerifier,
    l2: L2Cache,
    cluster: Option<ClusterId>,
    ch_addr: Option<Addr>,
    ch_epoch: Option<u64>,
    join_pending_since: Option<Time>,
    failed_joins: u32,
    failover: bool,
    blacklist: RevocationList,
    local_blacklist: HashSet<Addr>,
    // Baseline machinery.
    peak: PeakDetector,
    threshold: ThresholdDetector,
    first_cmp: FirstRrepComparator,
    first_window: Option<(Addr, Time)>,
    first_buffer: Vec<(Addr, Addr, Rrep, Option<RouteAuth>)>,
    // Verification bookkeeping.
    verified: HashMap<Addr, RouteFingerprint>,
    intents: Vec<IntentState>,
    forced_report: Option<(Addr, Option<ClusterId>)>,
    /// The last detection request sent, held until a verdict (or the
    /// suspect's revocation) is observed, so it can be re-submitted to a
    /// CH that rebooted or to a fail-over CH.
    pending_report: Option<DReq>,
    /// Set when the CH that received our report lost its state (resync /
    /// fail-over); the next `Jrep` triggers a re-submission.
    report_needs_resend: bool,
    // Metrics.
    delivered: Vec<(Addr, u64)>,
    data_sent: u64,
    responses: Vec<DetectionResponse>,
    dreqs_sent: u32,
    gave_up: Vec<Addr>,
    rng: StdRng,
}

impl std::fmt::Debug for VehicleNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VehicleNode")
            .field("addr", &self.addr())
            .field("cluster", &self.cluster)
            .finish()
    }
}

impl VehicleNode {
    /// Creates a vehicle with the given motion plan and credential.
    pub fn new(
        trajectory: Trajectory,
        plan: ClusterPlan,
        keys: Keypair,
        cert: Certificate,
        ta_key: PublicKey,
        cfg: VehicleConfig,
        seed: u64,
    ) -> Self {
        let aodv = Aodv::new(addr_of(cert.pseudonym), cfg.aodv.clone());
        let verifier = SourceVerifier::new(cfg.blackdp.clone(), ta_key, cert.pseudonym);
        VehicleNode {
            trajectory,
            plan,
            keys,
            cert,
            ta_key,
            aodv,
            verifier,
            l2: L2Cache::new(),
            cluster: None,
            ch_addr: None,
            ch_epoch: None,
            join_pending_since: None,
            failed_joins: 0,
            failover: false,
            blacklist: RevocationList::new(),
            local_blacklist: HashSet::new(),
            peak: PeakDetector::new(100, Duration::from_secs(2)),
            threshold: ThresholdDetector::medium(),
            first_cmp: FirstRrepComparator::new(2.0),
            first_window: None,
            first_buffer: Vec::new(),
            verified: HashMap::new(),
            intents: Vec::new(),
            forced_report: None,
            pending_report: None,
            report_needs_resend: false,
            delivered: Vec::new(),
            data_sent: 0,
            responses: Vec::new(),
            dreqs_sent: 0,
            gave_up: Vec::new(),
            cfg,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The vehicle's current protocol address.
    pub fn addr(&self) -> Addr {
        addr_of(self.cert.pseudonym)
    }

    /// The vehicle's pseudonym.
    pub fn pseudonym(&self) -> PseudonymId {
        self.cert.pseudonym
    }

    /// Registers an application traffic intent.
    pub fn add_intent(&mut self, intent: TrafficIntent) {
        self.intents.push(IntentState {
            next_at: intent.start,
            intent,
            sent: 0,
            last_kick: None,
        });
    }

    /// Forces this vehicle to report `suspect` to its CH at the next tick
    /// (drives the "no attacker / false suspicion" experiment row).
    pub fn force_report(&mut self, suspect: Addr, suspect_cluster: Option<ClusterId>) {
        self.forced_report = Some((suspect, suspect_cluster));
    }

    /// Data packets delivered to this vehicle, as `(source, seq)` pairs.
    pub fn delivered(&self) -> &[(Addr, u64)] {
        &self.delivered
    }

    /// Application packets this vehicle has sent.
    pub fn data_sent(&self) -> u64 {
        self.data_sent
    }

    /// Detection verdicts received from the cluster head.
    pub fn responses(&self) -> &[DetectionResponse] {
        &self.responses
    }

    /// Detection requests this vehicle has raised.
    pub fn dreqs_sent(&self) -> u32 {
        self.dreqs_sent
    }

    /// Destinations whose verification was abandoned.
    pub fn gave_up(&self) -> &[Addr] {
        &self.gave_up
    }

    /// The cluster the vehicle is registered with.
    pub fn cluster(&self) -> Option<ClusterId> {
        self.cluster
    }

    /// True while registered with a neighboring cluster because the home
    /// cluster head stopped answering joins.
    pub fn is_failed_over(&self) -> bool {
        self.failover
    }

    /// True if a verified route to `dest` is currently held.
    pub fn is_verified(&self, dest: Addr) -> bool {
        self.verified.contains_key(&dest)
    }

    /// Read access to the routing layer (tests and metrics).
    pub fn aodv(&self) -> &Aodv {
        &self.aodv
    }

    /// Addresses locally blacklisted by a baseline detector.
    pub fn local_blacklist(&self) -> &HashSet<Addr> {
        &self.local_blacklist
    }

    fn is_banned(&self, addr: Addr) -> bool {
        self.blacklist.is_revoked(PseudonymId(addr.0)) || self.local_blacklist.contains(&addr)
    }

    fn current_fingerprint(&self, dest: Addr, now: Time) -> Option<RouteFingerprint> {
        self.aodv
            .routes()
            .lookup_usable(dest, now)
            .map(|r| (r.next_hop, r.dest_seq.unwrap_or(0)))
    }

    /// Executes AODV actions; `rrep_auth` carries the envelope when this
    /// batch came from handling an (optionally secured) RREP.
    fn run_aodv_actions(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        actions: Vec<AodvAction>,
        rrep_auth: Option<Option<&RouteAuth>>,
    ) {
        let my_addr = self.addr();
        for action in actions {
            match action {
                AodvAction::SendTo { next_hop, msg } => {
                    let wire = match &msg {
                        AodvMessage::Rrep(r) => match rrep_auth {
                            // Forwarding a reply we received: keep (or lack)
                            // its original envelope.
                            Some(Some(auth)) => Wire::SecuredRrep {
                                rrep: *r,
                                auth: auth.clone(),
                            },
                            Some(None) => Wire::Aodv(msg.clone()),
                            // Locally originated reply (we are the
                            // destination, or we answered from cache): seal
                            // it with our own credential.
                            None => {
                                let auth = Sealed::seal(
                                    RrepBody(*r),
                                    self.cert,
                                    self.cluster,
                                    &self.keys,
                                    &mut self.rng,
                                );
                                Wire::SecuredRrep { rrep: *r, auth }
                            }
                        },
                        _ => Wire::Aodv(msg.clone()),
                    };
                    send_wire(ctx, &self.l2, my_addr, next_hop, wire);
                }
                AodvAction::Broadcast { msg } => {
                    broadcast_wire(ctx, my_addr, Wire::Aodv(msg));
                }
                AodvAction::Event(event) => self.on_aodv_event(ctx, event, rrep_auth),
            }
        }
    }

    fn on_aodv_event(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        event: AodvEvent,
        rrep_auth: Option<Option<&RouteAuth>>,
    ) {
        let now = ctx.now();
        match event {
            AodvEvent::DataDelivered(d) => {
                ctx.count("vehicle.data_delivered");
                self.delivered.push((d.orig, d.seq_no));
            }
            AodvEvent::RrepReceived { from, rrep } => {
                ctx.count("vehicle.rrep_received");
                if self.cfg.defense != DefenseMode::BlackDp {
                    return;
                }
                // Only verify if this reply is what the route now uses.
                let Some(fp) = self.current_fingerprint(rrep.dest, now) else {
                    return;
                };
                if fp.1 != rrep.dest_seq {
                    return; // an older reply; the installed route is fresher
                }
                if self.verified.get(&rrep.dest) == Some(&fp) {
                    return; // already verified this exact route
                }
                // The route changed (or is new): (re-)verify before use.
                self.verified.remove(&rrep.dest);
                if self.intents.iter().any(|i| i.intent.dest == rrep.dest)
                    || self.verifier.pending().any(|d| d == rrep.dest)
                {
                    self.verifier.begin(rrep.dest);
                    let auth = rrep_auth.flatten();
                    let actions = self
                        .verifier
                        .on_route_established(rrep.dest, from, &rrep, auth, now);
                    self.run_verifier_actions(ctx, actions);
                }
            }
            AodvEvent::DiscoveryFailed { dest } => {
                let actions = self.verifier.on_discovery_failed(dest);
                self.run_verifier_actions(ctx, actions);
            }
            AodvEvent::DataDropped { .. } => ctx.count("vehicle.data_dropped"),
            AodvEvent::RouteEstablished { .. } | AodvEvent::LinkBroken { .. } => {}
        }
    }

    fn run_verifier_actions(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        actions: Vec<VerifierAction>,
    ) {
        let now = ctx.now();
        for action in actions {
            match action {
                VerifierAction::SendProbe(probe) => {
                    ctx.count("vehicle.probe_sent");
                    let sealed =
                        Sealed::seal(probe, self.cert, self.cluster, &self.keys, &mut self.rng);
                    self.route_blackdp(ctx, probe.dest, BlackDpMessage::HelloProbe(sealed));
                }
                VerifierAction::RestartDiscovery { dest } => {
                    ctx.count("vehicle.rediscovery");
                    self.aodv.invalidate_route(dest);
                    let actions = self.aodv.start_discovery(dest, now);
                    self.run_aodv_actions(ctx, actions, None);
                }
                VerifierAction::Report(dreq) => {
                    ctx.count("vehicle.dreq_sent");
                    self.dreqs_sent += 1;
                    self.pending_report = Some(dreq);
                    if self.ch_addr.is_none() {
                        // Mid-resync / mid-failover: deliver on the next
                        // successful join instead of dropping the report.
                        self.report_needs_resend = true;
                    }
                    if let Some(ch) = self.ch_addr {
                        let sealed =
                            Sealed::seal(dreq, self.cert, self.cluster, &self.keys, &mut self.rng);
                        let my = self.addr();
                        send_wire(
                            ctx,
                            &self.l2,
                            my,
                            ch,
                            Wire::BlackDp(BlackDpMessage::DetectionRequest(sealed)),
                        );
                    }
                }
                VerifierAction::Verified { dest } => {
                    ctx.count("vehicle.route_verified");
                    if let Some(fp) = self.current_fingerprint(dest, now) {
                        self.verified.insert(dest, fp);
                    }
                }
                VerifierAction::GaveUp { dest } => {
                    ctx.count("vehicle.gave_up");
                    self.gave_up.push(dest);
                }
            }
        }
    }

    /// Routes a BlackDP end-to-end message (probe/reply) toward `dest`
    /// using the AODV table; drops silently with a counter when no route
    /// exists.
    fn route_blackdp(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        dest: Addr,
        msg: BlackDpMessage,
    ) {
        let now = ctx.now();
        let Some(route) = self.aodv.routes().lookup_usable(dest, now) else {
            ctx.count("vehicle.blackdp_no_route");
            return;
        };
        let next_hop = route.next_hop;
        let my = self.addr();
        send_wire(ctx, &self.l2, my, next_hop, Wire::BlackDp(msg));
    }

    fn handle_blackdp(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        src: Addr,
        msg: BlackDpMessage,
    ) {
        let now = ctx.now();
        match msg {
            BlackDpMessage::Jrep {
                cluster,
                ch_addr,
                epoch,
                blacklist,
            } => {
                // Switching heads (e.g. the home CH answered again while we
                // were failed over to a neighbor): deregister from the old
                // one first.
                if let (Some(old), Some(old_ch)) = (self.cluster, self.ch_addr) {
                    if old != cluster {
                        let my = self.addr();
                        send_wire(
                            ctx,
                            &self.l2,
                            my,
                            old_ch,
                            Wire::BlackDp(BlackDpMessage::Leave {
                                vehicle: self.cert.pseudonym,
                            }),
                        );
                    }
                }
                let pos = self.trajectory.position_at(now);
                let home = self.plan.cluster_of(pos);
                self.failover = home.is_some() && home != Some(cluster);
                self.cluster = Some(cluster);
                self.ch_addr = Some(ch_addr);
                self.ch_epoch = Some(epoch);
                self.join_pending_since = None;
                self.failed_joins = 0;
                self.verifier.set_cluster(Some(cluster));
                for notice in blacklist {
                    self.blacklist.insert(notice);
                    self.aodv.purge_node(addr_of(notice.pseudonym));
                }
                self.drop_settled_report();
                // This CH never saw our in-flight report (it rebooted, or
                // we failed over to it): submit it again.
                if self.report_needs_resend {
                    self.report_needs_resend = false;
                    if let Some(dreq) = self.pending_report {
                        ctx.count("vehicle.dreq_resent");
                        let sealed = Sealed::seal(
                            dreq,
                            self.cert,
                            self.cluster,
                            &self.keys,
                            &mut self.rng,
                        );
                        let my = self.addr();
                        send_wire(
                            ctx,
                            &self.l2,
                            my,
                            ch_addr,
                            Wire::BlackDp(BlackDpMessage::DetectionRequest(sealed)),
                        );
                    }
                }
            }
            BlackDpMessage::Resync { cluster, epoch, .. } => {
                // Our CH rebooted and lost its member table: our
                // registration is gone, so re-join at the next tick.
                if self.cluster == Some(cluster) && self.ch_epoch != Some(epoch) {
                    ctx.count("vehicle.resync_rejoin");
                    self.cluster = None;
                    self.ch_addr = None;
                    self.ch_epoch = None;
                    self.join_pending_since = None;
                    self.verifier.set_cluster(None);
                    // The reboot wiped the CH's verification table: an
                    // unanswered report must be re-submitted on re-join.
                    self.report_needs_resend |= self.pending_report.is_some();
                }
            }
            BlackDpMessage::HelloProbe(sealed) => {
                let probe = sealed.body;
                if probe.dest == self.addr() {
                    // We are the destination: authenticate the prober and
                    // answer with our own signed Hello.
                    if sealed.verify(self.ta_key, now).is_err() {
                        ctx.count("vehicle.probe_bad_auth");
                        return;
                    }
                    let reply = HelloReply {
                        probe_id: probe.probe_id,
                        src: self.addr(),
                        dest: probe.src,
                        ttl: 16,
                    };
                    let sealed_reply =
                        Sealed::seal(reply, self.cert, self.cluster, &self.keys, &mut self.rng);
                    self.route_blackdp(ctx, probe.src, BlackDpMessage::HelloReply(sealed_reply));
                } else if probe.ttl > 0 {
                    // Forward along the route like data.
                    let mut fwd = sealed;
                    fwd.body.ttl -= 1;
                    self.route_blackdp(ctx, probe.dest, BlackDpMessage::HelloProbe(fwd));
                }
            }
            BlackDpMessage::HelloReply(sealed) => {
                let reply = sealed.body;
                if reply.dest == self.addr() {
                    let actions = self.verifier.on_hello_reply(&sealed, now);
                    self.run_verifier_actions(ctx, actions);
                } else if reply.ttl > 0 {
                    let mut fwd = sealed;
                    fwd.body.ttl -= 1;
                    self.route_blackdp(ctx, reply.dest, BlackDpMessage::HelloReply(fwd));
                }
            }
            BlackDpMessage::Response(resp) => {
                ctx.count("vehicle.response_received");
                if matches!(
                    resp.outcome,
                    DetectionOutcome::ConfirmedSingle
                        | DetectionOutcome::ConfirmedCooperative { .. }
                ) {
                    self.aodv.purge_node(resp.suspect);
                    self.local_blacklist.insert(resp.suspect);
                }
                if self.pending_report.is_some_and(|d| d.suspect == resp.suspect) {
                    self.pending_report = None;
                    self.report_needs_resend = false;
                }
                self.responses.push(resp);
            }
            BlackDpMessage::BlacklistAdvisory { notices } => {
                for notice in notices {
                    self.blacklist.insert(notice);
                    self.aodv.purge_node(addr_of(notice.pseudonym));
                }
                self.drop_settled_report();
            }
            // Vehicle ignores CH/TA-plane traffic and others' joins.
            _ => {
                let _ = src;
            }
        }
    }

    /// Baseline route filtering: returns `true` when the RREP should be
    /// dropped before AODV sees it.
    fn baseline_rejects(
        &mut self,
        src: Addr,
        rrep: &Rrep,
        signer: Option<Addr>,
        now: Time,
    ) -> bool {
        let judged = signer.unwrap_or(src);
        let verdict = match self.cfg.defense {
            DefenseMode::BaselinePeak => self.peak.judge(judged, rrep, now),
            DefenseMode::BaselineThreshold => self.threshold.judge(judged, rrep, now),
            _ => return false,
        };
        if verdict == Verdict::Suspect {
            self.local_blacklist.insert(judged);
            true
        } else {
            false
        }
    }

    fn membership_tick(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        let now = ctx.now();
        let pos = self.trajectory.position_at(now);
        let here = self.plan.cluster_of(pos);
        if here == self.cluster && self.cluster.is_some() {
            self.failed_joins = 0;
            return;
        }
        // Throttle join attempts: one per half second normally; the
        // home-cluster retry while failed over to a neighbor runs at a
        // slower cadence (the neighbor membership keeps us served).
        let gap = if self.failover {
            Duration::from_secs(2)
        } else {
            Duration::from_millis(500)
        };
        if let Some(since) = self.join_pending_since {
            if now.saturating_since(since) < gap {
                return;
            }
            // The previous attempt went unanswered — a Jrep would have
            // cleared `join_pending_since`.
            self.failed_joins = self.failed_joins.saturating_add(1);
        }
        // Leaving the previous cluster — except a fail-over membership,
        // which is kept until the home CH answers again (the switch-back
        // happens in the Jrep handler).
        if !self.failover {
            if let (Some(_old), Some(ch)) = (self.cluster, self.ch_addr) {
                let my = self.addr();
                send_wire(
                    ctx,
                    &self.l2,
                    my,
                    ch,
                    Wire::BlackDp(BlackDpMessage::Leave {
                        vehicle: self.cert.pseudonym,
                    }),
                );
                self.cluster = None;
                self.ch_addr = None;
                self.ch_epoch = None;
            }
        }
        if here.is_some() {
            let body = JoinBody {
                pos_x: pos.x,
                pos_y: pos.y,
                speed_kmh: self.trajectory.speed().0,
                forward: true,
            };
            let sealed = Sealed::seal(body, self.cert, None, &self.keys, &mut self.rng);
            let wire = Wire::BlackDp(BlackDpMessage::Jreq(sealed));
            // Infrastructure-failure fail-over (beyond the paper): after
            // several unanswered joins, a vehicle that can also hear a
            // neighboring cluster's RSU registers there directly, so a
            // crashed home CH does not orphan it.
            if !self.failover && self.failed_joins >= 3 {
                if let Some(neighbor) = self.failover_target(pos, here) {
                    ctx.count("vehicle.join_failover");
                    // The neighbor CH never saw our in-flight report.
                    self.report_needs_resend |= self.pending_report.is_some();
                    let my = self.addr();
                    send_wire(ctx, &self.l2, my, crate::config::ch_addr(neighbor), wire);
                    self.join_pending_since = Some(now);
                    return;
                }
            }
            // Section III-A: in a single zone the vehicle "only needs to
            // send a join request to the CH"; in an overlapped zone "it is
            // required to broadcast a JREQ to all CHs".
            match self.plan.join_zone(pos, self.cfg.range_m) {
                blackdp_mobility::JoinZone::Single(cluster) => {
                    let my = self.addr();
                    ctx.count("vehicle.join_unicast");
                    send_wire(ctx, &self.l2, my, crate::config::ch_addr(cluster), wire);
                }
                _ => {
                    ctx.count("vehicle.join_broadcast");
                    broadcast_wire(ctx, self.addr(), wire);
                }
            }
            self.join_pending_since = Some(now);
        }
    }

    /// Forgets the held detection request once its suspect appears on the
    /// TA-backed blacklist — the report has served its purpose.
    fn drop_settled_report(&mut self) {
        if let Some(d) = self.pending_report {
            if self.blacklist.is_revoked(PseudonymId(d.suspect.0)) {
                self.pending_report = None;
                self.report_needs_resend = false;
            }
        }
    }

    /// The nearest in-range cluster other than the local segment's own —
    /// the fail-over registration target while the home CH is down.
    fn failover_target(&self, pos: Position, here: Option<ClusterId>) -> Option<ClusterId> {
        let dist = |c: ClusterId| {
            self.plan
                .rsu_position(c)
                .map(|p| p.distance_to(pos))
                .unwrap_or(f64::INFINITY)
        };
        self.plan
            .rsus_in_range(pos, self.cfg.range_m)
            .into_iter()
            .filter(|&c| Some(c) != here)
            .min_by(|&a, &b| {
                dist(a)
                    .partial_cmp(&dist(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    fn traffic_tick(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        let now = ctx.now();
        let defense = self.cfg.defense;
        let mut send_data: Vec<Addr> = Vec::new();
        let mut kick: Vec<Addr> = Vec::new();
        for state in &mut self.intents {
            if now < state.intent.start || state.sent >= state.intent.count {
                continue;
            }
            let dest = state.intent.dest;
            let ready = match defense {
                // The paper's source holds traffic until the route is
                // authenticated end to end — and only while the installed
                // route still IS the verified one (a fresher forged RREP
                // flipping the route un-readies it immediately).
                DefenseMode::BlackDp => {
                    let current = self
                        .aodv
                        .routes()
                        .lookup_usable(dest, now)
                        .map(|r| (r.next_hop, r.dest_seq.unwrap_or(0)));
                    current.is_some() && self.verified.get(&dest) == current.as_ref()
                }
                // The first-RREP baseline holds traffic until the judged
                // discovery window produced a route.
                DefenseMode::BaselineFirstRrep => self.aodv.has_route(dest, now),
                // Peak/threshold/no-defense: send immediately; AODV buffers
                // during discovery.
                _ => true,
            };
            if !ready {
                let due = state
                    .last_kick
                    .map(|t| now.saturating_since(t) >= Duration::from_secs(3))
                    .unwrap_or(true);
                if due {
                    state.last_kick = Some(now);
                    kick.push(dest);
                }
                // Keep the schedule current so packets do not burst once
                // the route verifies.
                if now > state.next_at {
                    state.next_at = now;
                }
                continue;
            }
            if now >= state.next_at {
                state.sent += 1;
                state.next_at = now + state.intent.interval;
                send_data.push(dest);
            }
        }
        for dest in kick {
            ctx.count("vehicle.intent_kick");
            match defense {
                DefenseMode::BlackDp => {
                    self.verifier.begin(dest);
                    if !self.aodv.has_route(dest, now) {
                        let actions = self.aodv.start_discovery(dest, now);
                        self.run_aodv_actions(ctx, actions, None);
                    }
                }
                DefenseMode::BaselineFirstRrep if self.first_window.is_none() => {
                    self.first_cmp.start(now);
                    self.first_window = Some((dest, now + self.cfg.first_rrep_window));
                    let actions = self.aodv.start_discovery(dest, now);
                    self.run_aodv_actions(ctx, actions, None);
                }
                _ => {}
            }
        }
        for dest in send_data {
            self.data_sent += 1;
            ctx.count("vehicle.data_sent");
            let actions = self.aodv.send_data(dest, now);
            self.run_aodv_actions(ctx, actions, None);
        }
    }

    fn first_rrep_tick(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        let now = ctx.now();
        let Some((dest, deadline)) = self.first_window else {
            return;
        };
        if now < deadline {
            return;
        }
        self.first_window = None;
        let judgement = self.first_cmp.conclude();
        if let Some(suspect) = judgement.suspect {
            ctx.count("baseline.first_rrep_suspect");
            self.local_blacklist.insert(suspect);
        }
        // Feed the surviving replies into AODV in arrival order, filtered
        // by the *judged identity* (the envelope signer when present — the
        // relay that delivered the frame is not the culprit).
        let buffered = std::mem::take(&mut self.first_buffer);
        for (src, judged, rrep, auth) in buffered {
            if Some(judged) == judgement.suspect {
                continue;
            }
            let actions = self.aodv.handle_message(src, AodvMessage::Rrep(rrep), now);
            self.run_aodv_actions(ctx, actions, Some(auth.as_ref()));
        }
        let _ = dest;
    }
}

impl Node<Frame, Tick> for VehicleNode {
    fn position(&self, now: Time) -> Position {
        self.trajectory.position_at(now)
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        // Stagger ticks a little so 100 vehicles don't beat in lockstep.
        let phase = Duration::from_micros(u64::from(ctx.self_id().index()) * 997 % 50_000);
        ctx.set_timer(self.cfg.tick + phase, Tick);
    }

    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        from: NodeId,
        frame: Frame,
        _channel: Channel,
    ) {
        let now = ctx.now();
        if let Some(dst) = frame.dst {
            if dst != self.addr() {
                return;
            }
        }
        self.l2.learn(frame.src, from);
        if self.is_banned(frame.src) {
            ctx.count("vehicle.dropped_blacklisted");
            return;
        }
        ctx.count(&format!("vrx.{}", frame.wire.kind()));
        match frame.wire {
            Wire::Aodv(msg) => {
                if let AodvMessage::Rrep(r) = &msg {
                    if self.baseline_rejects(frame.src, r, None, now) {
                        ctx.count("baseline.rrep_rejected");
                        return;
                    }
                    if self.first_window.is_some() {
                        self.first_cmp.add(frame.src, r.dest_seq, now);
                        self.first_buffer.push((frame.src, frame.src, *r, None));
                        return;
                    }
                }
                let actions = self.aodv.handle_message(frame.src, msg.clone(), now);
                let auth_ctx = matches!(msg, AodvMessage::Rrep(_)).then_some(None);
                self.run_aodv_actions(ctx, actions, auth_ctx);
            }
            Wire::SecuredRrep { rrep, auth } => {
                let signer = addr_of(auth.signer());
                if self.is_banned(signer) {
                    ctx.count("vehicle.dropped_blacklisted");
                    return;
                }
                if self.baseline_rejects(frame.src, &rrep, Some(signer), now) {
                    ctx.count("baseline.rrep_rejected");
                    return;
                }
                if self.first_window.is_some() {
                    self.first_cmp.add(signer, rrep.dest_seq, now);
                    self.first_buffer
                        .push((frame.src, signer, rrep, Some(auth)));
                    return;
                }
                let actions = self
                    .aodv
                    .handle_message(frame.src, AodvMessage::Rrep(rrep), now);
                self.run_aodv_actions(ctx, actions, Some(Some(&auth)));
            }
            Wire::BlackDp(msg) => self.handle_blackdp(ctx, frame.src, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Frame, Tick>, _token: Tick) {
        let now = ctx.now();
        // Exit the highway?
        if self.trajectory.has_exited(self.plan.highway(), now) {
            if let Some(ch) = self.ch_addr {
                let my = self.addr();
                send_wire(
                    ctx,
                    &self.l2,
                    my,
                    ch,
                    Wire::BlackDp(BlackDpMessage::Leave {
                        vehicle: self.cert.pseudonym,
                    }),
                );
            }
            ctx.despawn();
            return;
        }
        self.membership_tick(ctx);
        let actions = self.aodv.tick(now);
        self.run_aodv_actions(ctx, actions, None);
        let actions = self.verifier.tick(now);
        self.run_verifier_actions(ctx, actions);
        self.traffic_tick(ctx);
        self.first_rrep_tick(ctx);
        // A forced (false-suspicion) report, once registered.
        if let Some((suspect, suspect_cluster)) = self.forced_report {
            if let (Some(cluster), Some(_ch)) = (self.cluster, self.ch_addr) {
                self.forced_report = None;
                let dreq = blackdp::DReq {
                    reporter: self.cert.pseudonym,
                    reporter_cluster: cluster,
                    suspect,
                    suspect_cluster,
                    reason: blackdp::SuspicionReason::NoHelloResponse,
                };
                self.run_verifier_actions(ctx, vec![VerifierAction::Report(dreq)]);
            }
        }
        ctx.set_timer(self.cfg.tick, Tick);
    }
}
