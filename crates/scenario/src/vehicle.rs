//! The honest vehicle node: a thin simulator-facing shell around the
//! layered protocol stack in [`crate::stack`] (L2 membership → AODV
//! routing → route defense → application traffic).

use std::collections::HashSet;

use blackdp::DetectionResponse;
use blackdp_aodv::{Addr, Aodv};
use blackdp_crypto::{Certificate, Keypair, PseudonymId, PublicKey};
use blackdp_mobility::{ClusterId, ClusterPlan, Trajectory};
use blackdp_sim::{Channel, Context, Duration, Node, NodeId, Position, Time};

use crate::frame::{Frame, Tick};
use crate::stack::Stack;
pub use crate::stack::{DefenseMode, TrafficIntent, VehicleConfig};

/// The honest vehicle.
pub struct VehicleNode {
    stack: Stack,
}

impl std::fmt::Debug for VehicleNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VehicleNode")
            .field("addr", &self.addr())
            .field("cluster", &self.cluster())
            .finish()
    }
}

impl VehicleNode {
    /// Creates a vehicle with the given motion plan and credential.
    pub fn new(
        trajectory: Trajectory,
        plan: ClusterPlan,
        keys: Keypair,
        cert: Certificate,
        ta_key: PublicKey,
        cfg: VehicleConfig,
        seed: u64,
    ) -> Self {
        VehicleNode {
            stack: Stack::new(trajectory, plan, keys, cert, ta_key, cfg, seed),
        }
    }

    /// The vehicle's layered protocol stack.
    pub fn stack(&self) -> &Stack {
        &self.stack
    }

    /// The vehicle's current protocol address.
    pub fn addr(&self) -> Addr {
        self.stack.core().addr()
    }

    /// The vehicle's pseudonym.
    pub fn pseudonym(&self) -> PseudonymId {
        self.stack.core().pseudonym()
    }

    /// Registers an application traffic intent.
    pub fn add_intent(&mut self, intent: TrafficIntent) {
        self.stack.traffic_mut().add_intent(intent);
    }

    /// Forces this vehicle to report `suspect` to its CH at the next tick
    /// (drives the "no attacker / false suspicion" experiment row).
    pub fn force_report(&mut self, suspect: Addr, suspect_cluster: Option<ClusterId>) {
        self.stack.force_report(suspect, suspect_cluster);
    }

    /// Data packets delivered to this vehicle, as `(source, seq)` pairs.
    pub fn delivered(&self) -> &[(Addr, u64)] {
        self.stack.traffic().delivered()
    }

    /// Application packets this vehicle has sent.
    pub fn data_sent(&self) -> u64 {
        self.stack.traffic().data_sent()
    }

    /// Detection verdicts received from the cluster head.
    pub fn responses(&self) -> &[DetectionResponse] {
        self.stack.responses()
    }

    /// Detection requests this vehicle has raised.
    pub fn dreqs_sent(&self) -> u32 {
        self.stack.dreqs_sent()
    }

    /// Destinations whose verification was abandoned.
    pub fn gave_up(&self) -> &[Addr] {
        self.stack.gave_up()
    }

    /// The cluster the vehicle is registered with.
    pub fn cluster(&self) -> Option<ClusterId> {
        self.stack.membership().cluster()
    }

    /// True while registered with a neighboring cluster because the home
    /// cluster head stopped answering joins.
    pub fn is_failed_over(&self) -> bool {
        self.stack.membership().is_failed_over()
    }

    /// True if a verified route to `dest` is currently held.
    pub fn is_verified(&self, dest: Addr) -> bool {
        self.stack.defense().is_verified(dest)
    }

    /// Read access to the routing layer (tests and metrics).
    pub fn aodv(&self) -> &Aodv {
        self.stack.routing().aodv()
    }

    /// Addresses locally blacklisted by a baseline detector.
    pub fn local_blacklist(&self) -> &HashSet<Addr> {
        self.stack.local_blacklist()
    }
}

impl Node<Frame, Tick> for VehicleNode {
    fn position(&self, now: Time) -> Position {
        self.stack.position(now)
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        // Stagger ticks a little so 100 vehicles don't beat in lockstep.
        let phase = Duration::from_micros(u64::from(ctx.self_id().index()) * 997 % 50_000);
        ctx.set_timer(self.stack.config().tick + phase, Tick);
    }

    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        from: NodeId,
        frame: Frame,
        _channel: Channel,
    ) {
        self.stack.on_packet(ctx, from, frame);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Frame, Tick>, _token: Tick) {
        self.stack.on_timer(ctx);
    }
}
