//! The gray hole attacker vehicle (selective dropper).

use blackdp::{BlackDpMessage, JoinBody, Sealed, Wire};
use blackdp_aodv::Addr;
use blackdp_attacks::{AttackerAction, GrayHole};
use blackdp_mobility::{ClusterId, ClusterPlan, Trajectory};
use blackdp_sim::{Channel, Context, Duration, Node, NodeId, Position, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::frame::{broadcast_wire, send_wire, Frame, L2Cache, Tick};

/// The gray hole vehicle node: same membership plumbing as the black hole,
/// but with probabilistic data forwarding as camouflage.
pub struct GrayHoleNode {
    gh: GrayHole,
    trajectory: Trajectory,
    plan: ClusterPlan,
    tick: Duration,
    hello_interval: Duration,
    l2: L2Cache,
    cluster: Option<ClusterId>,
    ch_addr: Option<Addr>,
    join_pending_since: Option<Time>,
    rng: StdRng,
}

impl std::fmt::Debug for GrayHoleNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrayHoleNode")
            .field("addr", &self.gh.addr())
            .field("cluster", &self.cluster)
            .finish()
    }
}

impl GrayHoleNode {
    /// Creates the gray hole vehicle.
    pub fn new(
        gh: GrayHole,
        trajectory: Trajectory,
        plan: ClusterPlan,
        tick: Duration,
        hello_interval: Duration,
        seed: u64,
    ) -> Self {
        GrayHoleNode {
            gh,
            trajectory,
            plan,
            tick,
            hello_interval,
            l2: L2Cache::new(),
            cluster: None,
            ch_addr: None,
            join_pending_since: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The gray hole's current address.
    pub fn addr(&self) -> Addr {
        self.gh.addr()
    }

    /// Data packets dropped.
    pub fn dropped_count(&self) -> u64 {
        self.gh.dropped_count()
    }

    /// Data packets forwarded as camouflage.
    pub fn forwarded_count(&self) -> u64 {
        self.gh.forwarded_count()
    }

    /// Victims lured.
    pub fn lured_count(&self) -> u64 {
        self.gh.lured_count()
    }

    fn run_actions(&mut self, ctx: &mut Context<'_, Frame, Tick>, actions: Vec<AttackerAction>) {
        let my = self.gh.addr();
        for action in actions {
            match action {
                AttackerAction::SendTo { to, wire } => send_wire(ctx, &self.l2, my, to, wire),
                AttackerAction::Broadcast { wire } => broadcast_wire(ctx, my, wire),
                AttackerAction::Event(_) => ctx.count("grayhole.event"),
            }
        }
    }

    fn membership_tick(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        let now = ctx.now();
        let pos = self.trajectory.position_at(now);
        let here = self.plan.cluster_of(pos);
        if here == self.cluster && self.cluster.is_some() {
            return;
        }
        if let Some(since) = self.join_pending_since {
            if now.saturating_since(since) < Duration::from_millis(500) {
                return;
            }
        }
        if let (Some(_), Some(ch)) = (self.cluster, self.ch_addr) {
            let my = self.gh.addr();
            send_wire(
                ctx,
                &self.l2,
                my,
                ch,
                Wire::BlackDp(BlackDpMessage::Leave {
                    vehicle: self.gh.pseudonym(),
                }),
            );
            self.cluster = None;
            self.ch_addr = None;
            self.gh.set_cluster(None);
        }
        if here.is_some() {
            let body = JoinBody {
                pos_x: pos.x,
                pos_y: pos.y,
                speed_kmh: self.trajectory.speed().0,
                forward: true,
            };
            let sealed = Sealed::seal(body, *self.gh.cert(), None, self.gh.keys(), &mut self.rng);
            broadcast_wire(
                ctx,
                self.gh.addr(),
                Wire::BlackDp(BlackDpMessage::Jreq(sealed)),
            );
            self.join_pending_since = Some(now);
        }
    }
}

impl Node<Frame, Tick> for GrayHoleNode {
    fn position(&self, now: Time) -> Position {
        self.trajectory.position_at(now)
    }

    fn on_start(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        let phase = Duration::from_micros(u64::from(ctx.self_id().index()) * 983 % 50_000);
        ctx.set_timer(self.tick + phase, Tick);
    }

    fn on_packet(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        from: NodeId,
        frame: Frame,
        _channel: Channel,
    ) {
        let now = ctx.now();
        if let Some(dst) = frame.dst {
            if dst != self.gh.addr() {
                return;
            }
        }
        self.l2.learn(frame.src, from);
        if let Wire::BlackDp(BlackDpMessage::Jrep {
            cluster, ch_addr, ..
        }) = &frame.wire
        {
            self.cluster = Some(*cluster);
            self.ch_addr = Some(*ch_addr);
            self.join_pending_since = None;
            self.gh.set_cluster(Some(*cluster));
            return;
        }
        let actions = self.gh.handle_wire(frame.src, &frame.wire, now);
        self.run_actions(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Frame, Tick>, _token: Tick) {
        let now = ctx.now();
        if self.trajectory.has_exited(self.plan.highway(), now) {
            ctx.despawn();
            return;
        }
        self.membership_tick(ctx);
        let actions = self.gh.tick(now, self.hello_interval);
        self.run_actions(ctx, actions);
        ctx.set_timer(self.tick, Tick);
    }
}
