//! The routing slot of the vehicle stack: a thin layer over the sans-io
//! AODV state machine from `blackdp-aodv`.
//!
//! Routing claims every plain AODV frame *except* route replies — RREPs
//! pass up to the defense slot first ([`super::defense::RouteDefense`])
//! and come back down through [`super::StackOp::DeliverRrep`] once
//! vetted. All emitted actions are executed by the stack driver, which
//! knows how to seal locally-originated replies and to feed routing
//! events (delivery, discovery failure) to the layers above.

use blackdp::Wire;
use blackdp_aodv::{Addr, Aodv, AodvConfig, Message as AodvMessage};
use blackdp_sim::Time;

use super::{Layer, LayerIo, RouteFingerprint, StackOp};
use crate::frame::Frame;

/// The AODV routing layer.
#[derive(Debug)]
pub struct Routing {
    aodv: Aodv,
}

impl Routing {
    /// Creates the routing layer for the vehicle at `addr`. Public so
    /// tests (and alternative stacks) can compose layers directly.
    pub fn new(addr: Addr, cfg: AodvConfig) -> Self {
        Routing {
            aodv: Aodv::new(addr, cfg),
        }
    }

    /// Read access to the AODV state machine (tests and metrics).
    pub fn aodv(&self) -> &Aodv {
        &self.aodv
    }

    /// The identity snapshot of the currently installed route to `dest`:
    /// `(next hop, destination sequence number)`. The defense uses it to
    /// decide when a route change requires re-verification.
    pub fn current_fingerprint(&self, dest: Addr, now: Time) -> Option<RouteFingerprint> {
        self.aodv
            .routes()
            .lookup_usable(dest, now)
            .map(|r| (r.next_hop, r.dest_seq.unwrap_or(0)))
    }

    /// The next hop of a usable route to `dest`, if any.
    pub fn next_hop(&self, dest: Addr, now: Time) -> Option<Addr> {
        self.aodv
            .routes()
            .lookup_usable(dest, now)
            .map(|r| r.next_hop)
    }

    /// True if a usable route to `dest` exists.
    pub fn has_route(&self, dest: Addr, now: Time) -> bool {
        self.aodv.has_route(dest, now)
    }

    pub(crate) fn handle_message(
        &mut self,
        from: Addr,
        msg: AodvMessage,
        now: Time,
    ) -> Vec<blackdp_aodv::Action> {
        self.aodv.handle_message(from, msg, now)
    }

    pub(crate) fn start_discovery(&mut self, dest: Addr, now: Time) -> Vec<blackdp_aodv::Action> {
        self.aodv.start_discovery(dest, now)
    }

    pub(crate) fn send_data(&mut self, dest: Addr, now: Time) -> Vec<blackdp_aodv::Action> {
        self.aodv.send_data(dest, now)
    }

    pub(crate) fn invalidate_route(&mut self, dest: Addr) {
        self.aodv.invalidate_route(dest);
    }

    pub(crate) fn purge_node(&mut self, addr: Addr) {
        self.aodv.purge_node(addr);
    }
}

impl Layer for Routing {
    fn name(&self) -> &'static str {
        "routing"
    }

    fn on_frame(
        &mut self,
        io: &mut LayerIo<'_, '_, '_>,
        frame: &Frame,
        ops: &mut Vec<StackOp>,
    ) -> bool {
        let Wire::Aodv(msg) = &frame.wire else {
            return false;
        };
        if matches!(msg, AodvMessage::Rrep(_)) {
            // Route replies are vetted by the defense slot first and come
            // back down via `StackOp::DeliverRrep`.
            return false;
        }
        let actions = self.aodv.handle_message(frame.src, msg.clone(), io.now());
        if !actions.is_empty() {
            ops.push(StackOp::Aodv {
                actions,
                rrep_auth: None,
            });
        }
        true
    }

    fn on_tick(&mut self, io: &mut LayerIo<'_, '_, '_>, ops: &mut Vec<StackOp>) {
        let actions = self.aodv.tick(io.now());
        if !actions.is_empty() {
            ops.push(StackOp::Aodv {
                actions,
                rrep_auth: None,
            });
        }
    }
}
