//! The route-defense slot of the vehicle stack.
//!
//! Every defense the reproduction compares — the paper's BlackDP protocol
//! and the related-work baselines from `blackdp-baselines` — plugs into
//! the same slot between routing and traffic, as a [`RouteDefense`] trait
//! object. The stack driver consults the defense at seven well-defined
//! points (see the trait methods); each implementation fills in only the
//! hooks its scheme uses, so swapping `defense` in [`VehicleConfig`]
//! swaps the whole scheme without touching any other layer.

use std::collections::HashMap;

use blackdp::{DReq, HelloReply, RouteAuth, Sealed, SourceVerifier, VerifierAction};
use blackdp_aodv::{Addr, Rrep};
use blackdp_baselines::{FirstRrepComparator, PeakDetector, RrepJudge, ThresholdDetector, Verdict};
use blackdp_crypto::{PseudonymId, PublicKey};
use blackdp_mobility::ClusterId;
use blackdp_sim::{Duration, Time};

use super::routing::Routing;
use super::{RouteFingerprint, VehicleConfig};

/// Which route-acceptance defense the vehicle runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseMode {
    /// The paper's protocol: secure RREPs, Hello probes, RSU detection.
    BlackDp,
    /// Jaiswal-style first-RREP comparison (collect window then judge).
    BaselineFirstRrep,
    /// Jhaveri-style dynamic PEAK bound.
    BaselinePeak,
    /// Tan-style static sequence-number threshold.
    BaselineThreshold,
    /// No defense: accept the freshest RREP blindly (plain AODV).
    None,
}

impl DefenseMode {
    /// Instantiates the defense implementation for this mode.
    pub fn build(
        self,
        cfg: &VehicleConfig,
        ta_key: PublicKey,
        identity: PseudonymId,
    ) -> Box<dyn RouteDefense> {
        match self {
            DefenseMode::BlackDp => Box::new(BlackDpDefense::new(cfg, ta_key, identity)),
            DefenseMode::BaselineFirstRrep => {
                Box::new(FirstRrepDefense::new(cfg.first_rrep_window))
            }
            DefenseMode::BaselinePeak => Box::new(PeakDefense::new()),
            DefenseMode::BaselineThreshold => Box::new(ThresholdDefense::new()),
            DefenseMode::None => Box::new(NoDefense),
        }
    }
}

/// An effect requested by the defense, executed by the stack driver (the
/// defense itself is sans-io and never touches the radio or the RNG).
#[derive(Debug, Clone, PartialEq)]
pub enum DefenseAction {
    /// Seal and route this Hello probe toward its destination.
    SendProbe(blackdp::HelloProbe),
    /// Tear down the unverified route and rerun AODV route discovery.
    RestartDiscovery {
        /// The destination to rediscover.
        dest: Addr,
    },
    /// Begin a route discovery without invalidating existing state (used
    /// when a traffic intent has no route at all yet).
    StartDiscovery {
        /// The destination to discover.
        dest: Addr,
    },
    /// Seal this detection request and send it to the cluster head.
    Report(DReq),
    /// The route to `dest` is authenticated; record its fingerprint.
    Verified {
        /// The verified destination.
        dest: Addr,
    },
    /// Verification could not complete; the attack — if any — was
    /// prevented but nothing is reportable.
    GaveUp {
        /// The abandoned destination.
        dest: Addr,
    },
}

/// Lifts the sans-io verifier's actions into stack-level effects.
fn lift(actions: Vec<VerifierAction>) -> Vec<DefenseAction> {
    actions
        .into_iter()
        .map(|a| match a {
            VerifierAction::SendProbe(p) => DefenseAction::SendProbe(p),
            VerifierAction::RestartDiscovery { dest } => DefenseAction::RestartDiscovery { dest },
            VerifierAction::Report(d) => DefenseAction::Report(d),
            VerifierAction::Verified { dest } => DefenseAction::Verified { dest },
            VerifierAction::GaveUp { dest } => DefenseAction::GaveUp { dest },
        })
        .collect()
}

/// The defense's verdict on an inbound RREP, before AODV sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum RrepVerdict {
    /// Hand the reply down to routing immediately.
    Deliver,
    /// Drop the reply and locally blacklist the judged sender.
    Reject {
        /// The identity the verdict is charged to (the envelope signer
        /// when present, else the relaying neighbor).
        judged: Addr,
    },
    /// The reply was absorbed into a collection window; it may be
    /// delivered later by [`RouteDefense::conclude_window`].
    Buffered,
}

/// The outcome of a closed first-RREP collection window.
#[derive(Debug)]
pub struct WindowConclusion {
    /// The sender judged malicious, if any.
    pub suspect: Option<Addr>,
    /// Surviving buffered replies in arrival order, already filtered by
    /// the judged identity: `(relaying neighbor, reply, envelope)`.
    pub deliver: Vec<(Addr, Rrep, Option<RouteAuth>)>,
}

/// The pluggable route-acceptance defense.
///
/// The stack driver calls these hooks at fixed points; default
/// implementations are no-ops so each scheme overrides only what it uses:
///
/// * [`intercept_rrep`](RouteDefense::intercept_rrep) — every inbound
///   RREP, before routing (Peak/Threshold judge here; first-RREP
///   buffers here).
/// * [`on_rrep_installed`](RouteDefense::on_rrep_installed) — after AODV
///   accepted a reply (BlackDP starts its verification ladder here).
/// * [`traffic_ready`](RouteDefense::traffic_ready) /
///   [`kick`](RouteDefense::kick) — gate and un-stall application
///   traffic.
/// * [`tick`](RouteDefense::tick) /
///   [`conclude_window`](RouteDefense::conclude_window) — the defense's
///   two slots in the periodic tick schedule.
///
/// `Send + Sync` rides along from the engine's `Node` bounds (the sharded
/// backend reads node positions from scoped threads); defenses are only
/// ever invoked from the single-threaded event loop.
pub trait RouteDefense: Send + Sync {
    /// A short name for reports and debugging.
    fn name(&self) -> &'static str;

    /// The mode this defense was built from.
    fn mode(&self) -> DefenseMode;

    /// Vets an inbound RREP before the routing layer sees it. `signer` is
    /// the authenticated envelope signer for secured replies.
    fn intercept_rrep(
        &mut self,
        src: Addr,
        signer: Option<Addr>,
        rrep: &Rrep,
        auth: Option<&RouteAuth>,
        now: Time,
    ) -> RrepVerdict {
        let _ = (src, signer, rrep, auth, now);
        RrepVerdict::Deliver
    }

    /// Routing accepted `rrep` (delivered by neighbor `from`) as the
    /// route toward its destination; `has_intent` says whether the
    /// application wants to talk to that destination.
    fn on_rrep_installed(
        &mut self,
        routing: &Routing,
        has_intent: bool,
        from: Addr,
        rrep: &Rrep,
        auth: Option<&RouteAuth>,
        now: Time,
    ) -> Vec<DefenseAction> {
        let _ = (routing, has_intent, from, rrep, auth, now);
        Vec::new()
    }

    /// AODV reported that route discovery for `dest` failed outright.
    fn on_discovery_failed(&mut self, dest: Addr) -> Vec<DefenseAction> {
        let _ = dest;
        Vec::new()
    }

    /// A sealed Hello reply addressed to this vehicle arrived.
    fn on_hello_reply(&mut self, sealed: &Sealed<HelloReply>, now: Time) -> Vec<DefenseAction> {
        let _ = (sealed, now);
        Vec::new()
    }

    /// The membership layer's cluster registration changed.
    fn set_cluster(&mut self, cluster: Option<ClusterId>) {
        let _ = cluster;
    }

    /// True when application data for `dest` may be sent now.
    fn traffic_ready(&self, routing: &Routing, dest: Addr, now: Time) -> bool {
        let _ = (routing, dest, now);
        true
    }

    /// A traffic intent for `dest` is stalled; begin whatever acquisition
    /// this defense needs (verification, a judged discovery window, …).
    fn kick(&mut self, routing: &Routing, dest: Addr, now: Time) -> Vec<DefenseAction> {
        let _ = (routing, dest, now);
        Vec::new()
    }

    /// The defense's slot in the periodic tick schedule (probe timeouts).
    fn tick(&mut self, now: Time) -> Vec<DefenseAction> {
        let _ = now;
        Vec::new()
    }

    /// The defense's late tick slot: close an elapsed collection window
    /// and release the surviving buffered replies.
    fn conclude_window(&mut self, now: Time) -> Option<WindowConclusion> {
        let _ = now;
        None
    }

    /// Records that the route to `dest` (identified by `fp`) verified.
    fn note_verified(&mut self, dest: Addr, fp: RouteFingerprint) {
        let _ = (dest, fp);
    }

    /// True if a verified route to `dest` is currently held.
    fn is_verified(&self, dest: Addr) -> bool {
        let _ = dest;
        false
    }
}

/// The paper's protocol: source verification (Hello probes) over secured
/// RREPs, escalating to a detection request at the cluster head.
#[derive(Debug)]
pub struct BlackDpDefense {
    verifier: SourceVerifier,
    /// Fingerprints of verified routes, used to decide when a route
    /// change requires re-verification.
    verified: HashMap<Addr, RouteFingerprint>,
}

impl BlackDpDefense {
    /// Creates the defense for the vehicle holding `identity`.
    pub fn new(cfg: &VehicleConfig, ta_key: PublicKey, identity: PseudonymId) -> Self {
        BlackDpDefense {
            verifier: SourceVerifier::new(cfg.blackdp.clone(), ta_key, identity),
            verified: HashMap::new(),
        }
    }
}

impl RouteDefense for BlackDpDefense {
    fn name(&self) -> &'static str {
        "blackdp"
    }

    fn mode(&self) -> DefenseMode {
        DefenseMode::BlackDp
    }

    fn on_rrep_installed(
        &mut self,
        routing: &Routing,
        has_intent: bool,
        from: Addr,
        rrep: &Rrep,
        auth: Option<&RouteAuth>,
        now: Time,
    ) -> Vec<DefenseAction> {
        // Only verify if this reply is what the route now uses.
        let Some(fp) = routing.current_fingerprint(rrep.dest, now) else {
            return Vec::new();
        };
        if fp.1 != rrep.dest_seq {
            return Vec::new(); // an older reply; the installed route is fresher
        }
        if self.verified.get(&rrep.dest) == Some(&fp) {
            return Vec::new(); // already verified this exact route
        }
        // The route changed (or is new): (re-)verify before use.
        self.verified.remove(&rrep.dest);
        if has_intent || self.verifier.pending().any(|d| d == rrep.dest) {
            self.verifier.begin(rrep.dest);
            lift(self
                .verifier
                .on_route_established(rrep.dest, from, rrep, auth, now))
        } else {
            Vec::new()
        }
    }

    fn on_discovery_failed(&mut self, dest: Addr) -> Vec<DefenseAction> {
        lift(self.verifier.on_discovery_failed(dest))
    }

    fn on_hello_reply(&mut self, sealed: &Sealed<HelloReply>, now: Time) -> Vec<DefenseAction> {
        lift(self.verifier.on_hello_reply(sealed, now))
    }

    fn set_cluster(&mut self, cluster: Option<ClusterId>) {
        self.verifier.set_cluster(cluster);
    }

    fn traffic_ready(&self, routing: &Routing, dest: Addr, now: Time) -> bool {
        // The paper's source holds traffic until the route is
        // authenticated end to end — and only while the installed route
        // still IS the verified one (a fresher forged RREP flipping the
        // route un-readies it immediately).
        let current = routing.current_fingerprint(dest, now);
        current.is_some() && self.verified.get(&dest) == current.as_ref()
    }

    fn kick(&mut self, routing: &Routing, dest: Addr, now: Time) -> Vec<DefenseAction> {
        self.verifier.begin(dest);
        if !routing.has_route(dest, now) {
            vec![DefenseAction::StartDiscovery { dest }]
        } else {
            Vec::new()
        }
    }

    fn tick(&mut self, now: Time) -> Vec<DefenseAction> {
        lift(self.verifier.tick(now))
    }

    fn note_verified(&mut self, dest: Addr, fp: RouteFingerprint) {
        self.verified.insert(dest, fp);
    }

    fn is_verified(&self, dest: Addr) -> bool {
        self.verified.contains_key(&dest)
    }
}

/// Jaiswal-style baseline: hold the first discovery in a collection
/// window, compare the first reply against the rest, blacklist outliers.
#[derive(Debug)]
pub struct FirstRrepDefense {
    cmp: FirstRrepComparator,
    /// Open collection window: `(destination, deadline)`.
    window: Option<(Addr, Time)>,
    /// Replies held until the window concludes:
    /// `(relaying neighbor, judged identity, reply, envelope)`.
    buffer: Vec<(Addr, Addr, Rrep, Option<RouteAuth>)>,
    window_len: Duration,
}

impl FirstRrepDefense {
    /// Creates the baseline with the given collection window length.
    pub fn new(window_len: Duration) -> Self {
        FirstRrepDefense {
            cmp: FirstRrepComparator::new(2.0),
            window: None,
            buffer: Vec::new(),
            window_len,
        }
    }
}

impl RouteDefense for FirstRrepDefense {
    fn name(&self) -> &'static str {
        "first_rrep"
    }

    fn mode(&self) -> DefenseMode {
        DefenseMode::BaselineFirstRrep
    }

    fn intercept_rrep(
        &mut self,
        src: Addr,
        signer: Option<Addr>,
        rrep: &Rrep,
        auth: Option<&RouteAuth>,
        now: Time,
    ) -> RrepVerdict {
        if self.window.is_none() {
            return RrepVerdict::Deliver;
        }
        let judged = signer.unwrap_or(src);
        self.cmp.add(judged, rrep.dest_seq, now);
        self.buffer.push((src, judged, *rrep, auth.cloned()));
        RrepVerdict::Buffered
    }

    fn traffic_ready(&self, routing: &Routing, dest: Addr, now: Time) -> bool {
        // Hold traffic until the judged discovery window produced a route.
        routing.has_route(dest, now)
    }

    fn kick(&mut self, _routing: &Routing, dest: Addr, now: Time) -> Vec<DefenseAction> {
        if self.window.is_some() {
            return Vec::new(); // a window is already collecting
        }
        self.cmp.start(now);
        self.window = Some((dest, now + self.window_len));
        vec![DefenseAction::StartDiscovery { dest }]
    }

    fn conclude_window(&mut self, now: Time) -> Option<WindowConclusion> {
        let (dest, deadline) = self.window?;
        if now < deadline {
            return None;
        }
        self.window = None;
        let judgement = self.cmp.conclude();
        // Release the surviving replies in arrival order, filtered by the
        // *judged identity* (the envelope signer when present — the relay
        // that delivered the frame is not the culprit).
        let buffered = std::mem::take(&mut self.buffer);
        let deliver = buffered
            .into_iter()
            .filter(|(_, judged, _, _)| Some(*judged) != judgement.suspect)
            .map(|(src, _, rrep, auth)| (src, rrep, auth))
            .collect();
        let _ = dest;
        Some(WindowConclusion {
            suspect: judgement.suspect,
            deliver,
        })
    }
}

/// Jhaveri-style baseline: reject RREPs whose sequence number exceeds a
/// dynamically-tracked peak.
#[derive(Debug)]
pub struct PeakDefense {
    peak: PeakDetector,
}

impl PeakDefense {
    /// Creates the baseline with the reproduction's standard parameters.
    pub fn new() -> Self {
        PeakDefense {
            peak: PeakDetector::new(100, Duration::from_secs(2)),
        }
    }
}

impl Default for PeakDefense {
    fn default() -> Self {
        PeakDefense::new()
    }
}

impl RouteDefense for PeakDefense {
    fn name(&self) -> &'static str {
        "peak"
    }

    fn mode(&self) -> DefenseMode {
        DefenseMode::BaselinePeak
    }

    fn intercept_rrep(
        &mut self,
        src: Addr,
        signer: Option<Addr>,
        rrep: &Rrep,
        _auth: Option<&RouteAuth>,
        now: Time,
    ) -> RrepVerdict {
        let judged = signer.unwrap_or(src);
        if self.peak.judge(judged, rrep, now) == Verdict::Suspect {
            RrepVerdict::Reject { judged }
        } else {
            RrepVerdict::Deliver
        }
    }
}

/// Tan-style baseline: reject RREPs whose sequence number exceeds a
/// static threshold.
#[derive(Debug)]
pub struct ThresholdDefense {
    threshold: ThresholdDetector,
}

impl ThresholdDefense {
    /// Creates the baseline with the reproduction's standard parameters.
    pub fn new() -> Self {
        ThresholdDefense {
            threshold: ThresholdDetector::medium(),
        }
    }
}

impl Default for ThresholdDefense {
    fn default() -> Self {
        ThresholdDefense::new()
    }
}

impl RouteDefense for ThresholdDefense {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn mode(&self) -> DefenseMode {
        DefenseMode::BaselineThreshold
    }

    fn intercept_rrep(
        &mut self,
        src: Addr,
        signer: Option<Addr>,
        rrep: &Rrep,
        _auth: Option<&RouteAuth>,
        now: Time,
    ) -> RrepVerdict {
        let judged = signer.unwrap_or(src);
        if self.threshold.judge(judged, rrep, now) == Verdict::Suspect {
            RrepVerdict::Reject { judged }
        } else {
            RrepVerdict::Deliver
        }
    }
}

/// No defense: accept the freshest RREP blindly (plain AODV).
#[derive(Debug)]
pub struct NoDefense;

impl RouteDefense for NoDefense {
    fn name(&self) -> &'static str {
        "none"
    }

    fn mode(&self) -> DefenseMode {
        DefenseMode::None
    }
}
