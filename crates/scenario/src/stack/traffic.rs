//! The application-traffic slot of the vehicle stack.
//!
//! Owns the declared traffic intents and the delivery/send bookkeeping.
//! Each tick it consults the defense layer (through the read-only views
//! in [`LayerIo`]) to decide which intents may transmit and which are
//! stalled and need a kick; the actual sends and kicks are returned as
//! [`StackOp`]s so the driver can run them through routing and the
//! defense in the original order.

use blackdp_aodv::Addr;
use blackdp_sim::{Duration, Time};

use super::{Layer, LayerIo, StackOp};
use crate::frame::Frame;

/// One application traffic intent: send `count` packets to `dest`,
/// `interval` apart, starting at `start`.
#[derive(Debug, Clone)]
pub struct TrafficIntent {
    /// The destination address.
    pub dest: Addr,
    /// When to begin.
    pub start: Time,
    /// Number of data packets to send.
    pub count: u32,
    /// Gap between packets.
    pub interval: Duration,
}

#[derive(Debug)]
struct IntentState {
    intent: TrafficIntent,
    sent: u32,
    next_at: Time,
    last_kick: Option<Time>,
}

/// The application-traffic layer.
#[derive(Debug, Default)]
pub struct Traffic {
    intents: Vec<IntentState>,
    data_sent: u64,
    delivered: Vec<(Addr, u64)>,
}

impl Traffic {
    /// Creates the layer with no registered intents.
    pub(crate) fn new() -> Self {
        Traffic::default()
    }

    /// Registers an application traffic intent.
    pub fn add_intent(&mut self, intent: TrafficIntent) {
        self.intents.push(IntentState {
            next_at: intent.start,
            intent,
            sent: 0,
            last_kick: None,
        });
    }

    /// True if any intent targets `dest`.
    pub fn has_intent(&self, dest: Addr) -> bool {
        self.intents.iter().any(|i| i.intent.dest == dest)
    }

    /// Data packets delivered to this vehicle, as `(source, seq)` pairs.
    pub fn delivered(&self) -> &[(Addr, u64)] {
        &self.delivered
    }

    /// Application packets this vehicle has sent.
    pub fn data_sent(&self) -> u64 {
        self.data_sent
    }

    /// Records an inbound application packet (fed from routing events).
    pub(crate) fn note_delivered(&mut self, orig: Addr, seq: u64) {
        self.delivered.push((orig, seq));
    }

    /// Records an outbound application packet.
    pub(crate) fn note_sent(&mut self) {
        self.data_sent += 1;
    }
}

impl Layer for Traffic {
    fn name(&self) -> &'static str {
        "traffic"
    }

    fn on_frame(
        &mut self,
        _io: &mut LayerIo<'_, '_, '_>,
        _frame: &Frame,
        _ops: &mut Vec<StackOp>,
    ) -> bool {
        // Application data arrives through routing's DataDelivered event,
        // not as raw frames.
        false
    }

    fn on_tick(&mut self, io: &mut LayerIo<'_, '_, '_>, ops: &mut Vec<StackOp>) {
        let now = io.now();
        let routing = io.routing.expect("traffic runs above routing");
        let defense = io.defense.expect("traffic runs above the defense");
        // Kicks go straight into the shared scratch; sends are staged in a
        // small local list so the original kicks-then-sends order (and
        // thus the golden trace) is preserved. The local list allocates
        // only on ticks that actually transmit.
        let mut send_data: Vec<Addr> = Vec::new();
        for state in &mut self.intents {
            if now < state.intent.start || state.sent >= state.intent.count {
                continue;
            }
            let dest = state.intent.dest;
            if !defense.traffic_ready(routing, dest, now) {
                let due = state
                    .last_kick
                    .map(|t| now.saturating_since(t) >= Duration::from_secs(3))
                    .unwrap_or(true);
                if due {
                    state.last_kick = Some(now);
                    ops.push(StackOp::KickIntent(dest));
                }
                // Keep the schedule current so packets do not burst once
                // the route verifies.
                if now > state.next_at {
                    state.next_at = now;
                }
                continue;
            }
            if now >= state.next_at {
                state.sent += 1;
                state.next_at = now + state.intent.interval;
                send_data.push(dest);
            }
        }
        ops.extend(send_data.into_iter().map(StackOp::SendData));
    }
}
