//! The L2 membership slot of the vehicle stack: cluster registration
//! (Section III-A joins), resync handling after a cluster-head reboot,
//! and the infrastructure-failure fail-over to a neighboring cluster.
//!
//! The layer owns the registration state (`cluster` / `ch_addr` /
//! `ch_epoch`) and the join retry machinery; it claims `Jrep` and
//! `Resync` frames. Cross-layer consequences of a membership change —
//! telling the defense its cluster, purging freshly-revoked nodes from
//! the routing table — are returned as [`StackOp`]s for the driver.

use blackdp::{addr_of, BlackDpMessage, JoinBody, Wire};
use blackdp_aodv::Addr;
use blackdp_crypto::RevocationNotice;
use blackdp_mobility::{ClusterId, JoinZone};
use blackdp_sim::{Duration, Position};

use super::{Layer, LayerIo, StackOp};
use crate::frame::Frame;

/// The cluster-membership layer.
#[derive(Debug, Default)]
pub struct L2Membership {
    cluster: Option<ClusterId>,
    ch_addr: Option<Addr>,
    ch_epoch: Option<u64>,
    join_pending_since: Option<blackdp_sim::Time>,
    failed_joins: u32,
    failover: bool,
}

impl L2Membership {
    /// Creates an unregistered membership layer.
    pub(crate) fn new() -> Self {
        L2Membership::default()
    }

    /// The cluster the vehicle is registered with.
    pub fn cluster(&self) -> Option<ClusterId> {
        self.cluster
    }

    /// The registered cluster head's address.
    pub fn ch_addr(&self) -> Option<Addr> {
        self.ch_addr
    }

    /// True while registered with a neighboring cluster because the home
    /// cluster head stopped answering joins.
    pub fn is_failed_over(&self) -> bool {
        self.failover
    }

    /// A join reply arrived: register with the answering cluster head.
    fn on_jrep(
        &mut self,
        io: &mut LayerIo<'_, '_, '_>,
        cluster: ClusterId,
        ch_addr: Addr,
        epoch: u64,
        notices: &[RevocationNotice],
        ops: &mut Vec<StackOp>,
    ) {
        let now = io.now();
        // Switching heads (e.g. the home CH answered again while we were
        // failed over to a neighbor): deregister from the old one first.
        if let (Some(old), Some(old_ch)) = (self.cluster, self.ch_addr) {
            if old != cluster {
                let vehicle = io.core.cert.pseudonym;
                io.send(old_ch, Wire::BlackDp(BlackDpMessage::Leave { vehicle }));
            }
        }
        let pos = io.core.trajectory.position_at(now);
        let home = io.core.plan.cluster_of(pos);
        self.failover = home.is_some() && home != Some(cluster);
        self.cluster = Some(cluster);
        self.ch_addr = Some(ch_addr);
        self.ch_epoch = Some(epoch);
        self.join_pending_since = None;
        self.failed_joins = 0;
        ops.push(StackOp::SetDefenseCluster(Some(cluster)));
        for notice in notices {
            io.core.blacklist.insert(*notice);
            ops.push(StackOp::PurgeRoute(addr_of(notice.pseudonym)));
        }
        io.core.drop_settled_report();
        // This CH never saw our in-flight report (it rebooted, or we
        // failed over to it): submit it again.
        if io.core.report_needs_resend {
            io.core.report_needs_resend = false;
            if let Some(dreq) = io.core.pending_report {
                io.count("vehicle.dreq_resent");
                let sealed = io.core.seal(dreq, Some(cluster));
                io.send(
                    ch_addr,
                    Wire::BlackDp(BlackDpMessage::DetectionRequest(sealed)),
                );
            }
        }
    }

    /// Our CH rebooted and lost its member table: our registration is
    /// gone, so re-join at the next tick.
    fn on_resync(
        &mut self,
        io: &mut LayerIo<'_, '_, '_>,
        cluster: ClusterId,
        epoch: u64,
        ops: &mut Vec<StackOp>,
    ) {
        if self.cluster == Some(cluster) && self.ch_epoch != Some(epoch) {
            io.count("vehicle.resync_rejoin");
            self.cluster = None;
            self.ch_addr = None;
            self.ch_epoch = None;
            self.join_pending_since = None;
            // The reboot wiped the CH's verification table: an unanswered
            // report must be re-submitted on re-join.
            io.core.report_needs_resend |= io.core.pending_report.is_some();
            ops.push(StackOp::SetDefenseCluster(None));
        }
    }

    /// The nearest in-range cluster other than the local segment's own —
    /// the fail-over registration target while the home CH is down.
    fn failover_target(
        &self,
        io: &LayerIo<'_, '_, '_>,
        pos: Position,
        here: Option<ClusterId>,
    ) -> Option<ClusterId> {
        let dist = |c: ClusterId| {
            io.core
                .plan
                .rsu_position(c)
                .map(|p| p.distance_to(pos))
                .unwrap_or(f64::INFINITY)
        };
        io.core
            .plan
            .rsus_in_range(pos, io.core.cfg.range_m)
            .into_iter()
            .filter(|&c| Some(c) != here)
            .min_by(|&a, &b| {
                dist(a)
                    .partial_cmp(&dist(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}

impl Layer for L2Membership {
    fn name(&self) -> &'static str {
        "l2-membership"
    }

    fn on_frame(
        &mut self,
        io: &mut LayerIo<'_, '_, '_>,
        frame: &Frame,
        ops: &mut Vec<StackOp>,
    ) -> bool {
        match &frame.wire {
            Wire::BlackDp(BlackDpMessage::Jrep {
                cluster,
                ch_addr,
                epoch,
                blacklist,
            }) => {
                self.on_jrep(io, *cluster, *ch_addr, *epoch, blacklist, ops);
                true
            }
            Wire::BlackDp(BlackDpMessage::Resync { cluster, epoch, .. }) => {
                self.on_resync(io, *cluster, *epoch, ops);
                true
            }
            _ => false,
        }
    }

    fn on_tick(&mut self, io: &mut LayerIo<'_, '_, '_>, _ops: &mut Vec<StackOp>) {
        let now = io.now();
        let pos = io.core.trajectory.position_at(now);
        let here = io.core.plan.cluster_of(pos);
        if here == self.cluster && self.cluster.is_some() {
            self.failed_joins = 0;
            return;
        }
        // Throttle join attempts: one per half second normally; the
        // home-cluster retry while failed over to a neighbor runs at a
        // slower cadence (the neighbor membership keeps us served).
        let gap = if self.failover {
            Duration::from_secs(2)
        } else {
            Duration::from_millis(500)
        };
        if let Some(since) = self.join_pending_since {
            if now.saturating_since(since) < gap {
                return;
            }
            // The previous attempt went unanswered — a Jrep would have
            // cleared `join_pending_since`.
            self.failed_joins = self.failed_joins.saturating_add(1);
        }
        // Leaving the previous cluster — except a fail-over membership,
        // which is kept until the home CH answers again (the switch-back
        // happens in the Jrep handler).
        if !self.failover {
            if let (Some(_old), Some(ch)) = (self.cluster, self.ch_addr) {
                let vehicle = io.core.cert.pseudonym;
                io.send(ch, Wire::BlackDp(BlackDpMessage::Leave { vehicle }));
                self.cluster = None;
                self.ch_addr = None;
                self.ch_epoch = None;
            }
        }
        if here.is_some() {
            let body = JoinBody {
                pos_x: pos.x,
                pos_y: pos.y,
                speed_kmh: io.core.trajectory.speed().0,
                forward: true,
            };
            let sealed = io.core.seal(body, None);
            let wire = Wire::BlackDp(BlackDpMessage::Jreq(sealed));
            // Infrastructure-failure fail-over (beyond the paper): after
            // several unanswered joins, a vehicle that can also hear a
            // neighboring cluster's RSU registers there directly, so a
            // crashed home CH does not orphan it.
            if !self.failover && self.failed_joins >= 3 {
                if let Some(neighbor) = self.failover_target(io, pos, here) {
                    io.count("vehicle.join_failover");
                    // The neighbor CH never saw our in-flight report.
                    io.core.report_needs_resend |= io.core.pending_report.is_some();
                    io.send(crate::config::ch_addr(neighbor), wire);
                    self.join_pending_since = Some(now);
                    return;
                }
            }
            // Section III-A: in a single zone the vehicle "only needs to
            // send a join request to the CH"; in an overlapped zone "it is
            // required to broadcast a JREQ to all CHs".
            match io.core.plan.join_zone(pos, io.core.cfg.range_m) {
                JoinZone::Single(cluster) => {
                    io.count("vehicle.join_unicast");
                    io.send(crate::config::ch_addr(cluster), wire);
                }
                _ => {
                    io.count("vehicle.join_broadcast");
                    io.broadcast(wire);
                }
            }
            self.join_pending_since = Some(now);
        }
    }
}
