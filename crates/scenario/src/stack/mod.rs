//! The honest vehicle's layered protocol stack.
//!
//! [`VehicleNode`](crate::VehicleNode) used to be a god-object mixing
//! cluster membership, AODV routing, five route defenses and application
//! traffic in one `impl`. This module decomposes it into four composable
//! layers driven by a deterministic [`Stack`]:
//!
//! ```text
//!   Traffic        application intents, delivery bookkeeping
//!   RouteDefense   BlackDP | first-RREP | peak | threshold | none
//!   Routing        the sans-io AODV state machine
//!   L2Membership   cluster joins, resync, fail-over
//! ```
//!
//! Inbound frames are offered bottom-up (`membership → routing → defense
//! → traffic`); the first layer to claim one returns [`StackOp`]s that
//! the driver executes eagerly. Route replies deliberately *skip*
//! routing on the way up — the defense slot vets every RREP first and
//! hands survivors back down via [`StackOp::DeliverRrep`]. The periodic
//! tick runs one [`Layer::on_tick`] slot per layer in the same order,
//! then the defense's late window-conclusion slot.
//!
//! # Equivalence guarantee
//!
//! The decomposition is a pure refactor of the original `VehicleNode`:
//! all [`StackOp`]s are executed **eagerly and in claim order**, every
//! counter string is preserved, and the single [`StackCore`] RNG is
//! drawn at exactly the original call sites (sealing envelopes), so RNG
//! draw order, event order and emitted frames are bit-identical — the
//! PR-3 golden trace replays unchanged on top of this module.

mod defense;
mod membership;
mod routing;
mod traffic;

pub use defense::{
    BlackDpDefense, DefenseAction, DefenseMode, FirstRrepDefense, NoDefense, PeakDefense,
    RouteDefense, RrepVerdict, ThresholdDefense, WindowConclusion,
};
pub use membership::L2Membership;
pub use routing::Routing;
pub use traffic::{Traffic, TrafficIntent};

use std::collections::HashSet;

use blackdp::{
    addr_of, BlackDpConfig, BlackDpMessage, DetectionOutcome, DetectionResponse, DReq, HelloReply,
    RouteAuth, RrepBody, Sealed, SignBytes, SuspicionReason, VerifyQueue, Wire,
};
use blackdp_aodv::{
    Action as AodvAction, Addr, AodvConfig, Event as AodvEvent, Message as AodvMessage,
};
use blackdp_crypto::{Certificate, Keypair, PseudonymId, PublicKey, RevocationList};
use blackdp_mobility::{ClusterId, ClusterPlan, Trajectory};
use blackdp_sim::{Context, Duration, NodeId, Position, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::frame::{broadcast_wire, send_wire, Frame, L2Cache, Tick};

/// Statistics and protocol configuration for a vehicle.
#[derive(Debug, Clone)]
pub struct VehicleConfig {
    /// AODV parameters.
    pub aodv: AodvConfig,
    /// BlackDP parameters.
    pub blackdp: BlackDpConfig,
    /// Defense mode.
    pub defense: DefenseMode,
    /// Tick cadence.
    pub tick: Duration,
    /// Collection window for the first-RREP baseline.
    pub first_rrep_window: Duration,
    /// Radio range, used to classify join zones (single vs. overlapped,
    /// Section III-A).
    pub range_m: f64,
}

impl Default for VehicleConfig {
    fn default() -> Self {
        VehicleConfig {
            aodv: AodvConfig::default(),
            blackdp: BlackDpConfig::default(),
            defense: DefenseMode::BlackDp,
            tick: Duration::from_millis(100),
            first_rrep_window: Duration::from_millis(600),
            range_m: 1000.0,
        }
    }
}

/// A route identity snapshot used to decide when re-verification is
/// needed: the route changed if its next hop or sequence number did.
pub type RouteFingerprint = (Addr, u32);

/// State shared by every layer: identity, credentials, mobility, the
/// link-layer cache, report bookkeeping, metrics, and the node's single
/// RNG (one RNG, drawn only when sealing, keeps draw order identical to
/// the pre-stack vehicle).
pub struct StackCore {
    pub(crate) trajectory: Trajectory,
    pub(crate) plan: ClusterPlan,
    pub(crate) keys: Keypair,
    pub(crate) cert: Certificate,
    pub(crate) ta_key: PublicKey,
    pub(crate) cfg: VehicleConfig,
    pub(crate) l2: L2Cache,
    pub(crate) blacklist: RevocationList,
    pub(crate) local_blacklist: HashSet<Addr>,
    /// The last detection request sent, held until a verdict (or the
    /// suspect's revocation) is observed, so it can be re-submitted to a
    /// CH that rebooted or to a fail-over CH.
    pub(crate) pending_report: Option<DReq>,
    /// Set when the CH that received our report lost its state (resync /
    /// fail-over); the next `Jrep` triggers a re-submission.
    pub(crate) report_needs_resend: bool,
    pub(crate) forced_report: Option<(Addr, Option<ClusterId>)>,
    pub(crate) responses: Vec<DetectionResponse>,
    pub(crate) dreqs_sent: u32,
    pub(crate) gave_up: Vec<Addr>,
    /// Batch-backed envelope verification with retained buffers; see
    /// [`VerifyQueue`].
    pub(crate) queue: VerifyQueue,
    pub(crate) rng: StdRng,
}

impl StackCore {
    /// The vehicle's current protocol address.
    pub fn addr(&self) -> Addr {
        addr_of(self.cert.pseudonym)
    }

    /// The vehicle's pseudonym.
    pub fn pseudonym(&self) -> PseudonymId {
        self.cert.pseudonym
    }

    /// True if `addr` is on the TA-backed or the local blacklist.
    pub fn is_banned(&self, addr: Addr) -> bool {
        self.blacklist.is_revoked(PseudonymId(addr.0)) || self.local_blacklist.contains(&addr)
    }

    /// Seals `body` with this vehicle's credential and the given cluster
    /// registration. This is the stack's only RNG draw site.
    pub(crate) fn seal<T: SignBytes>(&mut self, body: T, cluster: Option<ClusterId>) -> Sealed<T> {
        Sealed::seal(body, self.cert, cluster, &self.keys, &mut self.rng)
    }

    /// Forgets the held detection request once its suspect appears on the
    /// TA-backed blacklist — the report has served its purpose.
    pub(crate) fn drop_settled_report(&mut self) {
        if let Some(d) = self.pending_report {
            if self.blacklist.is_revoked(PseudonymId(d.suspect.0)) {
                self.pending_report = None;
                self.report_needs_resend = false;
            }
        }
    }
}

/// The per-call environment handed to a [`Layer`] hook: mutable access
/// to the shared [`StackCore`] and the simulator context, plus read-only
/// views of lower layers where the schedule provides them.
pub struct LayerIo<'a, 'b, 'c> {
    pub(crate) core: &'a mut StackCore,
    pub(crate) ctx: &'a mut Context<'b, Frame, Tick>,
    /// Read view of the routing layer; only present for layers above it.
    pub(crate) routing: Option<&'c Routing>,
    /// Read view of the defense slot; only present for layers above it.
    pub(crate) defense: Option<&'c dyn RouteDefense>,
}

impl LayerIo<'_, '_, '_> {
    /// The current simulation time.
    pub fn now(&self) -> Time {
        self.ctx.now()
    }

    /// Increments a named statistics counter.
    pub fn count(&mut self, key: &str) {
        self.ctx.count(key);
    }

    /// Emits `wire` to protocol address `to` (resolved unicast when the
    /// L2 cache knows the target).
    pub fn send(&mut self, to: Addr, wire: Wire) {
        let my = self.core.addr();
        send_wire(self.ctx, &self.core.l2, my, to, wire);
    }

    /// Emits `wire` to everyone in radio range.
    pub fn broadcast(&mut self, wire: Wire) {
        let my = self.core.addr();
        broadcast_wire(self.ctx, my, wire);
    }
}

/// A cross-layer operation requested by a layer and executed eagerly by
/// the [`Stack`] driver, in order. Layers never call each other
/// directly; everything that crosses a layer boundary is a `StackOp`,
/// which is what makes the composition pluggable without perturbing
/// event order.
#[derive(Debug)]
pub enum StackOp {
    /// Run routing-protocol actions through the stack executor.
    /// `rrep_auth` carries the envelope context when the batch came from
    /// handling an (optionally secured) route reply.
    Aodv {
        /// The actions emitted by the AODV state machine.
        actions: Vec<AodvAction>,
        /// `None`: not an RREP batch (locally-originated replies are
        /// sealed fresh). `Some(None)`: a plain unsigned RREP.
        /// `Some(Some(_))`: a secured RREP's envelope, kept on forward.
        rrep_auth: Option<Option<RouteAuth>>,
    },
    /// Hand a defense-vetted route reply down to the routing layer.
    DeliverRrep {
        /// The relaying neighbor the reply arrived from.
        src: Addr,
        /// The vetted reply.
        rrep: blackdp_aodv::Rrep,
        /// Its authentication envelope, when it was a secured reply.
        auth: Option<RouteAuth>,
    },
    /// Run defense effects (probes, reports, rediscoveries, verdicts).
    Defense(Vec<DefenseAction>),
    /// Tell the defense slot its cluster registration changed.
    SetDefenseCluster(Option<ClusterId>),
    /// Purge a revoked or blacklisted node from the routing table.
    PurgeRoute(Addr),
    /// Kick a stalled traffic intent through the defense's route
    /// acquisition path.
    KickIntent(Addr),
    /// Send one application data packet toward the destination.
    SendData(Addr),
}

/// One slot of the vehicle's protocol stack.
///
/// The driver offers every inbound frame to each layer bottom-up
/// ([`Layer::on_frame`]) and runs one [`Layer::on_tick`] slot per layer
/// per timer tick in the same order. Emission happens either directly
/// through [`LayerIo::send`] / [`LayerIo::broadcast`], or indirectly by
/// returning [`StackOp`]s for effects that cross a layer boundary.
pub trait Layer {
    /// A short name for debugging and reports.
    fn name(&self) -> &'static str;

    /// Offered an inbound frame. Return `false` to pass it up the stack,
    /// or `true` to claim it; cross-layer consequences are pushed into
    /// `ops` (the driver executes them in order and stops offering the
    /// frame). The buffer is driver-owned scratch, recycled across calls
    /// so the per-frame hot path never allocates.
    fn on_frame(
        &mut self,
        io: &mut LayerIo<'_, '_, '_>,
        frame: &Frame,
        ops: &mut Vec<StackOp>,
    ) -> bool;

    /// This layer's slot in the periodic tick schedule. Requested
    /// operations are pushed into the driver-owned `ops` scratch buffer.
    fn on_tick(&mut self, io: &mut LayerIo<'_, '_, '_>, ops: &mut Vec<StackOp>);
}

/// The defense slot participates in the stack as a layer: it claims
/// route replies (plain and secured) on the way up and runs the
/// verifier's probe-timeout ladder in its tick slot.
impl Layer for Box<dyn RouteDefense> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn on_frame(
        &mut self,
        io: &mut LayerIo<'_, '_, '_>,
        frame: &Frame,
        ops: &mut Vec<StackOp>,
    ) -> bool {
        let now = io.now();
        let (src, signer, rrep, auth) = match &frame.wire {
            Wire::Aodv(AodvMessage::Rrep(r)) => (frame.src, None, *r, None),
            Wire::SecuredRrep { rrep, auth } => {
                let signer = addr_of(auth.signer());
                if io.core.is_banned(signer) {
                    io.count("vehicle.dropped_blacklisted");
                    return true;
                }
                (frame.src, Some(signer), *rrep, Some(auth.clone()))
            }
            _ => return false,
        };
        match self.intercept_rrep(src, signer, &rrep, auth.as_ref(), now) {
            RrepVerdict::Deliver => ops.push(StackOp::DeliverRrep { src, rrep, auth }),
            RrepVerdict::Reject { judged } => {
                io.core.local_blacklist.insert(judged);
                io.count("baseline.rrep_rejected");
            }
            RrepVerdict::Buffered => {}
        }
        true
    }

    fn on_tick(&mut self, io: &mut LayerIo<'_, '_, '_>, ops: &mut Vec<StackOp>) {
        let actions = (**self).tick(io.now());
        if !actions.is_empty() {
            ops.push(StackOp::Defense(actions));
        }
    }
}

/// The composed vehicle stack: shared core plus the four layers, driven
/// deterministically from the simulator's packet and timer events.
pub struct Stack {
    core: StackCore,
    membership: L2Membership,
    routing: Routing,
    defense: Box<dyn RouteDefense>,
    traffic: Traffic,
    /// Recycled [`StackOp`] scratch handed to every layer hook, so the
    /// per-frame and per-tick hot paths stay allocation-free.
    ops_buf: Vec<StackOp>,
}

impl std::fmt::Debug for Stack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stack")
            .field("addr", &self.core.addr())
            .field("defense", &self.defense.name())
            .field("cluster", &self.membership.cluster())
            .finish()
    }
}

impl Stack {
    /// Builds the stack for a vehicle with the given motion plan and
    /// credential.
    pub fn new(
        trajectory: Trajectory,
        plan: ClusterPlan,
        keys: Keypair,
        cert: Certificate,
        ta_key: PublicKey,
        cfg: VehicleConfig,
        seed: u64,
    ) -> Self {
        let addr = addr_of(cert.pseudonym);
        let routing = Routing::new(addr, cfg.aodv.clone());
        let defense = cfg.defense.build(&cfg, ta_key, cert.pseudonym);
        Stack {
            core: StackCore {
                trajectory,
                plan,
                keys,
                cert,
                ta_key,
                cfg,
                l2: L2Cache::new(),
                blacklist: RevocationList::new(),
                local_blacklist: HashSet::new(),
                pending_report: None,
                report_needs_resend: false,
                forced_report: None,
                responses: Vec::new(),
                dreqs_sent: 0,
                gave_up: Vec::new(),
                queue: VerifyQueue::new(),
                rng: StdRng::seed_from_u64(seed),
            },
            membership: L2Membership::new(),
            routing,
            defense,
            traffic: Traffic::new(),
            ops_buf: Vec::new(),
        }
    }

    /// The shared layer state.
    pub fn core(&self) -> &StackCore {
        &self.core
    }

    /// Mutable access to the shared layer state.
    pub fn core_mut(&mut self) -> &mut StackCore {
        &mut self.core
    }

    /// The membership layer.
    pub fn membership(&self) -> &L2Membership {
        &self.membership
    }

    /// The routing layer.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// The defense slot.
    pub fn defense(&self) -> &dyn RouteDefense {
        self.defense.as_ref()
    }

    /// The traffic layer.
    pub fn traffic(&self) -> &Traffic {
        &self.traffic
    }

    /// Mutable access to the traffic layer (intent registration).
    pub fn traffic_mut(&mut self) -> &mut Traffic {
        &mut self.traffic
    }

    /// The stack's protocol configuration.
    pub fn config(&self) -> &VehicleConfig {
        &self.core.cfg
    }

    /// Forces a report of `suspect` to the cluster head at the next tick
    /// (drives the "no attacker / false suspicion" experiment row).
    pub fn force_report(&mut self, suspect: Addr, suspect_cluster: Option<ClusterId>) {
        self.core.forced_report = Some((suspect, suspect_cluster));
    }

    /// Detection verdicts received from the cluster head.
    pub fn responses(&self) -> &[DetectionResponse] {
        &self.core.responses
    }

    /// Detection requests this vehicle has raised.
    pub fn dreqs_sent(&self) -> u32 {
        self.core.dreqs_sent
    }

    /// Destinations whose verification was abandoned.
    pub fn gave_up(&self) -> &[Addr] {
        &self.core.gave_up
    }

    /// Addresses locally blacklisted by a baseline detector.
    pub fn local_blacklist(&self) -> &HashSet<Addr> {
        &self.core.local_blacklist
    }

    /// The vehicle's position at `now`.
    pub fn position(&self, now: Time) -> Position {
        self.core.trajectory.position_at(now)
    }

    /// Handles one inbound frame: L2 learning and blacklist filtering in
    /// the core, then the frame is offered up the stack.
    pub fn on_packet(&mut self, ctx: &mut Context<'_, Frame, Tick>, from: NodeId, frame: Frame) {
        if let Some(dst) = frame.dst {
            if dst != self.core.addr() {
                return;
            }
        }
        self.core.l2.learn(frame.src, from);
        if self.core.is_banned(frame.src) {
            ctx.count("vehicle.dropped_blacklisted");
            return;
        }
        ctx.count(frame.wire.vrx_key());
        // Offer the frame up the stack; the first claimant wins. The ops
        // scratch is recycled across events (a reentrant call would fall
        // back to a fresh allocation via `mem::take`).
        let mut ops = std::mem::take(&mut self.ops_buf);
        debug_assert!(ops.is_empty());
        let claimed = {
            let mut io = LayerIo {
                core: &mut self.core,
                ctx,
                routing: None,
                defense: None,
            };
            self.membership.on_frame(&mut io, &frame, &mut ops)
        };
        if claimed {
            self.exec_ops(ctx, &mut ops);
            self.ops_buf = ops;
            return;
        }
        let claimed = {
            let mut io = LayerIo {
                core: &mut self.core,
                ctx,
                routing: None,
                defense: None,
            };
            self.routing.on_frame(&mut io, &frame, &mut ops)
        };
        if claimed {
            self.exec_ops(ctx, &mut ops);
            self.ops_buf = ops;
            return;
        }
        let claimed = {
            let mut io = LayerIo {
                core: &mut self.core,
                ctx,
                routing: None,
                defense: None,
            };
            self.defense.on_frame(&mut io, &frame, &mut ops)
        };
        if claimed {
            self.exec_ops(ctx, &mut ops);
            self.ops_buf = ops;
            return;
        }
        let claimed = {
            let Stack {
                core,
                routing,
                defense,
                traffic,
                ..
            } = self;
            let mut io = LayerIo {
                core,
                ctx,
                routing: Some(routing),
                defense: Some(defense.as_ref()),
            };
            traffic.on_frame(&mut io, &frame, &mut ops)
        };
        if claimed {
            self.exec_ops(ctx, &mut ops);
            self.ops_buf = ops;
            return;
        }
        self.ops_buf = ops;
        // Unclaimed: the stack's own transport floor terminates BlackDP
        // end-to-end messages (probe/reply relaying, verdicts,
        // advisories).
        if let Wire::BlackDp(msg) = frame.wire {
            self.blackdp_transport(ctx, frame.src, msg);
        }
    }

    /// Runs one timer tick: highway-exit check, then one `on_tick` slot
    /// per layer bottom-up, the defense's late window slot, and any
    /// forced report. Re-arms the tick timer unless the vehicle exited.
    pub fn on_timer(&mut self, ctx: &mut Context<'_, Frame, Tick>) {
        let now = ctx.now();
        // Exit the highway?
        if self.core.trajectory.has_exited(self.core.plan.highway(), now) {
            if let Some(ch) = self.membership.ch_addr() {
                let my = self.core.addr();
                send_wire(
                    ctx,
                    &self.core.l2,
                    my,
                    ch,
                    Wire::BlackDp(BlackDpMessage::Leave {
                        vehicle: self.core.cert.pseudonym,
                    }),
                );
            }
            ctx.despawn();
            return;
        }
        let mut ops = std::mem::take(&mut self.ops_buf);
        debug_assert!(ops.is_empty());
        {
            let mut io = LayerIo {
                core: &mut self.core,
                ctx,
                routing: None,
                defense: None,
            };
            self.membership.on_tick(&mut io, &mut ops);
        }
        self.exec_ops(ctx, &mut ops);
        {
            let mut io = LayerIo {
                core: &mut self.core,
                ctx,
                routing: None,
                defense: None,
            };
            self.routing.on_tick(&mut io, &mut ops);
        }
        self.exec_ops(ctx, &mut ops);
        {
            let mut io = LayerIo {
                core: &mut self.core,
                ctx,
                routing: None,
                defense: None,
            };
            self.defense.on_tick(&mut io, &mut ops);
        }
        self.exec_ops(ctx, &mut ops);
        {
            let Stack {
                core,
                routing,
                defense,
                traffic,
                ..
            } = self;
            let mut io = LayerIo {
                core,
                ctx,
                routing: Some(routing),
                defense: Some(defense.as_ref()),
            };
            traffic.on_tick(&mut io, &mut ops);
        }
        self.exec_ops(ctx, &mut ops);
        self.ops_buf = ops;
        // The defense's late slot: close an elapsed collection window and
        // replay the surviving buffered replies through routing.
        if let Some(conclusion) = self.defense.conclude_window(now) {
            if let Some(suspect) = conclusion.suspect {
                ctx.count("baseline.first_rrep_suspect");
                self.core.local_blacklist.insert(suspect);
            }
            for (src, rrep, auth) in conclusion.deliver {
                let actions = self.routing.handle_message(src, AodvMessage::Rrep(rrep), now);
                self.run_aodv_actions(ctx, actions, Some(auth.as_ref()));
            }
        }
        // A forced (false-suspicion) report, once registered.
        if let Some((suspect, suspect_cluster)) = self.core.forced_report {
            if let (Some(cluster), Some(_ch)) = (self.membership.cluster(), self.membership.ch_addr())
            {
                self.core.forced_report = None;
                let dreq = DReq {
                    reporter: self.core.cert.pseudonym,
                    reporter_cluster: cluster,
                    suspect,
                    suspect_cluster,
                    reason: SuspicionReason::NoHelloResponse,
                };
                self.run_defense_actions(ctx, vec![DefenseAction::Report(dreq)]);
            }
        }
        ctx.set_timer(self.core.cfg.tick, Tick);
    }

    /// Executes layer-requested operations eagerly, in order, draining
    /// (and thereby recycling) the driver's scratch buffer.
    fn exec_ops(&mut self, ctx: &mut Context<'_, Frame, Tick>, ops: &mut Vec<StackOp>) {
        let now = ctx.now();
        for op in ops.drain(..) {
            match op {
                StackOp::Aodv { actions, rrep_auth } => {
                    self.run_aodv_actions(ctx, actions, rrep_auth.as_ref().map(|o| o.as_ref()));
                }
                StackOp::DeliverRrep { src, rrep, auth } => {
                    let actions = self.routing.handle_message(src, AodvMessage::Rrep(rrep), now);
                    self.run_aodv_actions(ctx, actions, Some(auth.as_ref()));
                }
                StackOp::Defense(actions) => self.run_defense_actions(ctx, actions),
                StackOp::SetDefenseCluster(cluster) => self.defense.set_cluster(cluster),
                StackOp::PurgeRoute(addr) => self.routing.purge_node(addr),
                StackOp::KickIntent(dest) => {
                    ctx.count("vehicle.intent_kick");
                    let actions = self.defense.kick(&self.routing, dest, now);
                    self.run_defense_actions(ctx, actions);
                }
                StackOp::SendData(dest) => {
                    self.traffic.note_sent();
                    ctx.count("vehicle.data_sent");
                    let actions = self.routing.send_data(dest, now);
                    self.run_aodv_actions(ctx, actions, None);
                }
            }
        }
    }

    /// Executes AODV actions; `rrep_auth` carries the envelope context
    /// when this batch came from handling an (optionally secured) RREP.
    fn run_aodv_actions(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        actions: Vec<AodvAction>,
        rrep_auth: Option<Option<&RouteAuth>>,
    ) {
        let my_addr = self.core.addr();
        for action in actions {
            match action {
                AodvAction::SendTo { next_hop, msg } => {
                    let wire = match &msg {
                        AodvMessage::Rrep(r) => match rrep_auth {
                            // Forwarding a reply we received: keep (or lack)
                            // its original envelope.
                            Some(Some(auth)) => Wire::SecuredRrep {
                                rrep: *r,
                                auth: auth.clone(),
                            },
                            Some(None) => Wire::Aodv(msg.clone()),
                            // Locally originated reply (we are the
                            // destination, or we answered from cache): seal
                            // it with our own credential.
                            None => {
                                let auth =
                                    self.core.seal(RrepBody(*r), self.membership.cluster());
                                Wire::SecuredRrep { rrep: *r, auth }
                            }
                        },
                        _ => Wire::Aodv(msg.clone()),
                    };
                    send_wire(ctx, &self.core.l2, my_addr, next_hop, wire);
                }
                AodvAction::Broadcast { msg } => {
                    broadcast_wire(ctx, my_addr, Wire::Aodv(msg));
                }
                AodvAction::Event(event) => self.on_aodv_event(ctx, event, rrep_auth),
            }
        }
    }

    /// Feeds a routing event to the layers above routing.
    fn on_aodv_event(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        event: AodvEvent,
        rrep_auth: Option<Option<&RouteAuth>>,
    ) {
        let now = ctx.now();
        match event {
            AodvEvent::DataDelivered(d) => {
                ctx.count("vehicle.data_delivered");
                self.traffic.note_delivered(d.orig, d.seq_no);
            }
            AodvEvent::RrepReceived { from, rrep } => {
                ctx.count("vehicle.rrep_received");
                let has_intent = self.traffic.has_intent(rrep.dest);
                let actions = self.defense.on_rrep_installed(
                    &self.routing,
                    has_intent,
                    from,
                    &rrep,
                    rrep_auth.flatten(),
                    now,
                );
                self.run_defense_actions(ctx, actions);
            }
            AodvEvent::DiscoveryFailed { dest } => {
                let actions = self.defense.on_discovery_failed(dest);
                self.run_defense_actions(ctx, actions);
            }
            AodvEvent::DataDropped { .. } => ctx.count("vehicle.data_dropped"),
            AodvEvent::RouteEstablished { .. } | AodvEvent::LinkBroken { .. } => {}
        }
    }

    /// Executes defense effects: probes are sealed and routed, reports
    /// go to the cluster head, discovery requests go through routing.
    fn run_defense_actions(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        actions: Vec<DefenseAction>,
    ) {
        let now = ctx.now();
        for action in actions {
            match action {
                DefenseAction::SendProbe(probe) => {
                    ctx.count("vehicle.probe_sent");
                    let sealed = self.core.seal(probe, self.membership.cluster());
                    self.route_blackdp(ctx, probe.dest, BlackDpMessage::HelloProbe(sealed));
                }
                DefenseAction::RestartDiscovery { dest } => {
                    ctx.count("vehicle.rediscovery");
                    self.routing.invalidate_route(dest);
                    let actions = self.routing.start_discovery(dest, now);
                    self.run_aodv_actions(ctx, actions, None);
                }
                DefenseAction::StartDiscovery { dest } => {
                    let actions = self.routing.start_discovery(dest, now);
                    self.run_aodv_actions(ctx, actions, None);
                }
                DefenseAction::Report(dreq) => {
                    ctx.count("vehicle.dreq_sent");
                    self.core.dreqs_sent += 1;
                    self.core.pending_report = Some(dreq);
                    if self.membership.ch_addr().is_none() {
                        // Mid-resync / mid-failover: deliver on the next
                        // successful join instead of dropping the report.
                        self.core.report_needs_resend = true;
                    }
                    if let Some(ch) = self.membership.ch_addr() {
                        let sealed = self.core.seal(dreq, self.membership.cluster());
                        let my = self.core.addr();
                        send_wire(
                            ctx,
                            &self.core.l2,
                            my,
                            ch,
                            Wire::BlackDp(BlackDpMessage::DetectionRequest(sealed)),
                        );
                    }
                }
                DefenseAction::Verified { dest } => {
                    ctx.count("vehicle.route_verified");
                    if let Some(fp) = self.routing.current_fingerprint(dest, now) {
                        self.defense.note_verified(dest, fp);
                    }
                }
                DefenseAction::GaveUp { dest } => {
                    ctx.count("vehicle.gave_up");
                    self.core.gave_up.push(dest);
                }
            }
        }
    }

    /// Routes a BlackDP end-to-end message (probe/reply) toward `dest`
    /// using the routing table; drops silently with a counter when no
    /// route exists.
    fn route_blackdp(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        dest: Addr,
        msg: BlackDpMessage,
    ) {
        let now = ctx.now();
        let Some(next_hop) = self.routing.next_hop(dest, now) else {
            ctx.count("vehicle.blackdp_no_route");
            return;
        };
        let my = self.core.addr();
        send_wire(ctx, &self.core.l2, my, next_hop, Wire::BlackDp(msg));
    }

    /// The stack's transport floor: BlackDP end-to-end messages that no
    /// layer claimed (probe/reply relaying and termination, detection
    /// verdicts, blacklist advisories).
    fn blackdp_transport(
        &mut self,
        ctx: &mut Context<'_, Frame, Tick>,
        src: Addr,
        msg: BlackDpMessage,
    ) {
        let now = ctx.now();
        match msg {
            BlackDpMessage::HelloProbe(sealed) => {
                let probe = sealed.body;
                if probe.dest == self.core.addr() {
                    // We are the destination: authenticate the prober and
                    // answer with our own signed Hello.
                    if self
                        .core
                        .queue
                        .verify_one(&sealed, self.core.ta_key, now)
                        .is_err()
                    {
                        ctx.count("vehicle.probe_bad_auth");
                        return;
                    }
                    let reply = HelloReply {
                        probe_id: probe.probe_id,
                        src: self.core.addr(),
                        dest: probe.src,
                        ttl: 16,
                    };
                    let sealed_reply = self.core.seal(reply, self.membership.cluster());
                    self.route_blackdp(ctx, probe.src, BlackDpMessage::HelloReply(sealed_reply));
                } else if probe.ttl > 0 {
                    // Forward along the route like data.
                    let mut fwd = sealed;
                    fwd.body.ttl -= 1;
                    self.route_blackdp(ctx, probe.dest, BlackDpMessage::HelloProbe(fwd));
                }
            }
            BlackDpMessage::HelloReply(sealed) => {
                let reply = sealed.body;
                if reply.dest == self.core.addr() {
                    let actions = self.defense.on_hello_reply(&sealed, now);
                    self.run_defense_actions(ctx, actions);
                } else if reply.ttl > 0 {
                    let mut fwd = sealed;
                    fwd.body.ttl -= 1;
                    self.route_blackdp(ctx, reply.dest, BlackDpMessage::HelloReply(fwd));
                }
            }
            BlackDpMessage::Response(resp) => {
                ctx.count("vehicle.response_received");
                if matches!(
                    resp.outcome,
                    DetectionOutcome::ConfirmedSingle
                        | DetectionOutcome::ConfirmedCooperative { .. }
                ) {
                    self.routing.purge_node(resp.suspect);
                    self.core.local_blacklist.insert(resp.suspect);
                }
                if self
                    .core
                    .pending_report
                    .is_some_and(|d| d.suspect == resp.suspect)
                {
                    self.core.pending_report = None;
                    self.core.report_needs_resend = false;
                }
                self.core.responses.push(resp);
            }
            BlackDpMessage::BlacklistAdvisory { notices } => {
                for notice in notices {
                    self.core.blacklist.insert(notice);
                    self.routing.purge_node(addr_of(notice.pseudonym));
                }
                self.core.drop_settled_report();
            }
            // The vehicle stack ignores CH/TA-plane traffic and others'
            // joins.
            _ => {
                let _ = src;
            }
        }
    }
}
