//! Experiment drivers: one function per figure/table of the paper, plus
//! the comparison ablations.

use blackdp_attacks::EvasionPolicy;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::build::run_trial;
use crate::config::{AttackSetup, ScenarioConfig, TrialSpec};
use crate::faults::{run_fault_trial, FaultSpec, FaultTrialOutcome};
use crate::metrics::{RateSummary, TrialOutcome};
use crate::parallel::parallel_map;
use crate::vehicle::DefenseMode;

/// One Figure 4 data point: the attacker's cluster and the aggregated
/// rates for that placement.
#[derive(Debug, Clone)]
pub struct Fig4Point {
    /// The attacker's starting cluster (x axis).
    pub cluster: u32,
    /// Aggregated detection rates (y axes).
    pub rates: RateSummary,
}

/// Which attack family a Figure 4 series covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// One attacker.
    Single,
    /// Two cooperating attackers.
    Cooperative,
}

/// Probability that an attacker inside the renewal zone (clusters 8–10)
/// exercises an evasion behaviour in a given trial. The paper reports the
/// accuracy drop there as a *mixture* of evasions and normal attacks.
pub const RENEWAL_ZONE_EVASION_PROB: f64 = 0.4;

/// Runs the Figure 4 experiment for one attack kind: `repetitions` trials
/// per attacker cluster (the paper uses 150 across treatments).
pub fn fig4(cfg: &ScenarioConfig, kind: AttackKind, repetitions: u32) -> Vec<Fig4Point> {
    let cluster_count = cfg.plan().cluster_count();
    let mut points = Vec::new();
    for cluster in 1..=cluster_count {
        let outcomes = fig4_cell(cfg, kind, cluster, repetitions);
        points.push(Fig4Point {
            cluster,
            rates: RateSummary::from_outcomes(&outcomes),
        });
    }
    points
}

/// The specification for repetition `rep` of one Figure 4 cell. The seed
/// and the evasion draw depend only on `(cluster, rep)` — never on which
/// thread runs the trial — which is what lets [`fig4_cell`] parallelize
/// repetitions while staying bit-identical to the serial loop.
pub fn fig4_cell_spec(
    cfg: &ScenarioConfig,
    kind: AttackKind,
    cluster: u32,
    rep: u32,
) -> TrialSpec {
    let cluster_count = cfg.plan().cluster_count();
    let in_renewal_zone = (cfg.renewal_zone.0..=cfg.renewal_zone.1).contains(&cluster);
    let seed = u64::from(cluster) * 10_000 + u64::from(rep) * 13 + 1;
    let mut spec = match kind {
        AttackKind::Single => TrialSpec::single(seed, cluster, cluster_count),
        AttackKind::Cooperative => TrialSpec::cooperative(seed, cluster, cluster_count),
    };
    if in_renewal_zone {
        // Attackers in the renewal zone may evade (Section IV-B):
        // act legitimately, flee, or renew their identity.
        let mut evasion_rng =
            StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xE7A5);
        if evasion_rng.random::<f64>() < RENEWAL_ZONE_EVASION_PROB {
            spec.evasion = match evasion_rng.random_range(0..3u8) {
                0 => EvasionPolicy::ActLegitimately,
                1 => EvasionPolicy::Flee,
                _ => EvasionPolicy::RenewIdentity,
            };
        }
    }
    spec
}

/// Runs the trials for a single Figure 4 cell (one cluster), with
/// repetitions spread across worker threads. Results are returned in
/// repetition order and are bit-identical to [`fig4_cell_serial`].
pub fn fig4_cell(
    cfg: &ScenarioConfig,
    kind: AttackKind,
    cluster: u32,
    repetitions: u32,
) -> Vec<TrialOutcome> {
    let specs: Vec<TrialSpec> = (0..repetitions)
        .map(|rep| fig4_cell_spec(cfg, kind, cluster, rep))
        .collect();
    parallel_map(&specs, |spec| run_trial(cfg, spec))
}

/// Single-threaded reference implementation of [`fig4_cell`], kept for
/// determinism tests and serial-vs-parallel benchmarking.
pub fn fig4_cell_serial(
    cfg: &ScenarioConfig,
    kind: AttackKind,
    cluster: u32,
    repetitions: u32,
) -> Vec<TrialOutcome> {
    (0..repetitions)
        .map(|rep| run_trial(cfg, &fig4_cell_spec(cfg, kind, cluster, rep)))
        .collect()
}

/// One Figure 5 row: a named detection scenario and the packet counts it
/// produced over its repetitions.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Scenario label.
    pub label: &'static str,
    /// The paper's reported packet range for this scenario.
    pub paper_range: (u32, u32),
    /// Measured detection-packet counts (one per repetition that produced
    /// a concluded episode).
    pub measured: Vec<u32>,
}

impl Fig5Row {
    /// Minimum measured count.
    pub fn min(&self) -> Option<u32> {
        self.measured.iter().copied().min()
    }

    /// Maximum measured count.
    pub fn max(&self) -> Option<u32> {
        self.measured.iter().copied().max()
    }
}

/// Runs the Figure 5 experiment: detection-packet counts per scenario.
pub fn fig5(cfg: &ScenarioConfig, repetitions: u32) -> Vec<Fig5Row> {
    let cluster_count = cfg.plan().cluster_count();
    let mut rows = Vec::new();

    let collect = |specs: Vec<TrialSpec>| -> Vec<u32> {
        parallel_map(&specs, |spec| run_trial(cfg, spec).detection_packets)
            .into_iter()
            .flatten()
            .collect()
    };

    // No attacker: a legitimate node is falsely suspected; mixes the
    // same-cluster (4–5 packets) and cross-cluster (5–6) reporting paths.
    rows.push(Fig5Row {
        label: "no attacker (false suspicion)",
        paper_range: (4, 6),
        measured: collect(
            (0..repetitions)
                .map(|rep| TrialSpec {
                    seed: 31 + u64::from(rep) * 7,
                    attack: AttackSetup::FalseSuspicion {
                        cross_cluster: rep % 2 == 1,
                    },
                    evasion: EvasionPolicy::None,
                    source_cluster: 1,
                    dest_cluster: Some(4),
                    attacker_moves: false,
                    attacker_fake_hello: false,
                })
                .collect(),
        ),
    });

    // Single black hole in the originator's own cluster.
    rows.push(Fig5Row {
        label: "single, same cluster",
        paper_range: (6, 6),
        measured: collect(
            (0..repetitions)
                .map(|rep| TrialSpec {
                    seed: 101 + u64::from(rep) * 7,
                    attack: AttackSetup::Single { cluster: 1 },
                    evasion: EvasionPolicy::None,
                    source_cluster: 1,
                    dest_cluster: Some(4),
                    attacker_moves: false,
                    attacker_fake_hello: false,
                })
                .collect(),
        ),
    });

    // Single black hole, same cluster, moving to the next cluster after
    // answering the first probe.
    rows.push(Fig5Row {
        label: "single, same cluster, moves mid-detection",
        paper_range: (8, 8),
        measured: collect(
            (0..repetitions)
                .map(|rep| TrialSpec {
                    seed: 201 + u64::from(rep) * 7,
                    attack: AttackSetup::Single { cluster: 1 },
                    evasion: EvasionPolicy::None,
                    source_cluster: 1,
                    dest_cluster: Some(5),
                    attacker_moves: true,
                    attacker_fake_hello: false,
                })
                .collect(),
        ),
    });

    // Single black hole in a different cluster than the originator (the
    // d_req must be forwarded), moving mid-detection.
    rows.push(Fig5Row {
        label: "single, different cluster, moves mid-detection",
        paper_range: (9, 9),
        measured: collect(
            (0..repetitions)
                .map(|rep| TrialSpec {
                    seed: 301 + u64::from(rep) * 7,
                    attack: AttackSetup::Single { cluster: 2 },
                    evasion: EvasionPolicy::None,
                    source_cluster: 1,
                    dest_cluster: Some(5),
                    attacker_moves: true,
                    attacker_fake_hello: false,
                })
                .collect(),
        ),
    });

    // Single black hole, different cluster, stationary: not separately
    // enumerated by the paper; its single-attack band is 6–9 and the same
    // bookkeeping predicts 8 (6 + forward + second response leg).
    rows.push(Fig5Row {
        label: "single, different cluster",
        paper_range: (6, 9),
        measured: collect(
            (0..repetitions)
                .map(|rep| TrialSpec {
                    seed: 401 + u64::from(rep) * 7,
                    attack: AttackSetup::Single { cluster: 2 },
                    evasion: EvasionPolicy::None,
                    source_cluster: 1,
                    dest_cluster: Some(5),
                    attacker_moves: false,
                    attacker_fake_hello: false,
                })
                .collect(),
        ),
    });

    // Cooperative black hole, same cluster: the single count + the
    // teammate's probe exchange.
    rows.push(Fig5Row {
        label: "cooperative, same cluster",
        paper_range: (8, 11),
        measured: collect(
            (0..repetitions)
                .map(|rep| TrialSpec {
                    seed: 501 + u64::from(rep) * 7,
                    attack: AttackSetup::Cooperative { cluster: 1 },
                    evasion: EvasionPolicy::None,
                    source_cluster: 1,
                    dest_cluster: Some(4),
                    attacker_moves: false,
                    attacker_fake_hello: false,
                })
                .collect(),
        ),
    });

    // Cooperative, different cluster: upper end of the paper's band.
    rows.push(Fig5Row {
        label: "cooperative, different cluster",
        paper_range: (8, 11),
        measured: collect(
            (0..repetitions)
                .map(|rep| TrialSpec {
                    seed: 601 + u64::from(rep) * 7,
                    attack: AttackSetup::Cooperative { cluster: 2 },
                    evasion: EvasionPolicy::None,
                    source_cluster: 1,
                    dest_cluster: Some(5),
                    attacker_moves: false,
                    attacker_fake_hello: false,
                })
                .collect(),
        ),
    });

    let _ = cluster_count;
    rows
}

/// One gray hole data point: drop probability vs detection & delivery.
#[derive(Debug, Clone)]
pub struct GrayHolePoint {
    /// The gray hole's per-packet drop probability.
    pub drop_probability: f64,
    /// Aggregated rates over the repetitions.
    pub rates: RateSummary,
}

/// Gray hole ablation: BlackDP's detection rate should be flat across drop
/// probabilities (the probe behaviour does not depend on the data plane),
/// while PDR degrades smoothly with the drop rate.
pub fn grayhole_sweep(
    cfg: &ScenarioConfig,
    drop_probs: &[f64],
    repetitions: u32,
) -> Vec<GrayHolePoint> {
    drop_probs
        .iter()
        .map(|&p| {
            let specs: Vec<TrialSpec> = (0..repetitions)
                .map(|rep| TrialSpec {
                    seed: 60_000 + u64::from(rep) * 19 + (p * 1000.0) as u64,
                    attack: AttackSetup::GrayHole {
                        cluster: 2,
                        drop_probability: p,
                    },
                    evasion: EvasionPolicy::None,
                    source_cluster: 1,
                    dest_cluster: Some(5),
                    attacker_moves: false,
                    attacker_fake_hello: false,
                })
                .collect();
            let outcomes = parallel_map(&specs, |spec| run_trial(cfg, spec));
            GrayHolePoint {
                drop_probability: p,
                rates: RateSummary::from_outcomes(&outcomes),
            }
        })
        .collect()
}

/// One sensitivity-sweep data point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub x: f64,
    /// Aggregated rates at this value.
    pub rates: RateSummary,
    /// Mean detection latency (virtual seconds) where detections occurred.
    pub mean_latency_s: Option<f64>,
}

fn sweep_summary(outcomes: Vec<TrialOutcome>, x: f64) -> SweepPoint {
    let lat: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.detection_latency.map(|d| d.as_secs_f64()))
        .collect();
    SweepPoint {
        x,
        rates: RateSummary::from_outcomes(&outcomes),
        mean_latency_s: (!lat.is_empty()).then(|| lat.iter().sum::<f64>() / lat.len() as f64),
    }
}

/// Radio-loss sensitivity: detection accuracy and latency as the channel
/// degrades (the paper assumes a lossless channel; this probes how far
/// that assumption carries).
pub fn loss_sweep(cfg: &ScenarioConfig, losses: &[f64], repetitions: u32) -> Vec<SweepPoint> {
    losses
        .iter()
        .map(|&loss| {
            let mut cfg = cfg.clone();
            cfg.radio_loss = loss;
            let specs: Vec<TrialSpec> = (0..repetitions)
                .map(|rep| {
                    TrialSpec::single(
                        70_000 + u64::from(rep) * 23 + (loss * 1000.0) as u64,
                        2,
                        cfg.plan().cluster_count(),
                    )
                })
                .collect();
            let outcomes = parallel_map(&specs, |spec| run_trial(&cfg, spec));
            sweep_summary(outcomes, loss)
        })
        .collect()
}

/// Vehicle-density sensitivity: with fewer vehicles the chain fragments
/// (the paper chose 100 "to ensure the disconnectivity between some
/// nodes" while keeping the network navigable).
pub fn density_sweep(cfg: &ScenarioConfig, counts: &[u32], repetitions: u32) -> Vec<SweepPoint> {
    counts
        .iter()
        .map(|&n| {
            let mut cfg = cfg.clone();
            cfg.vehicles = n;
            let specs: Vec<TrialSpec> = (0..repetitions)
                .map(|rep| {
                    TrialSpec::single(
                        71_000 + u64::from(rep) * 29 + u64::from(n),
                        2,
                        cfg.plan().cluster_count(),
                    )
                })
                .collect();
            let outcomes = parallel_map(&specs, |spec| run_trial(&cfg, spec));
            sweep_summary(outcomes, n as f64)
        })
        .collect()
}

/// Fading-radio sensitivity: relaxes the paper's unit-disk assumption to a
/// linear-decay reception model; `x` is the guaranteed-reception fraction
/// of the range (1.0 ≈ unit disk).
pub fn fading_sweep(cfg: &ScenarioConfig, fractions: &[f64], repetitions: u32) -> Vec<SweepPoint> {
    fractions
        .iter()
        .map(|&f| {
            let mut cfg = cfg.clone();
            cfg.fading_full_fraction = Some(f);
            let specs: Vec<TrialSpec> = (0..repetitions)
                .map(|rep| {
                    TrialSpec::single(
                        74_000 + u64::from(rep) * 41 + (f * 1000.0) as u64,
                        2,
                        cfg.plan().cluster_count(),
                    )
                })
                .collect();
            let outcomes = parallel_map(&specs, |spec| run_trial(&cfg, spec));
            sweep_summary(outcomes, f)
        })
        .collect()
}

/// Two-way traffic (a step toward the paper's "urban topology" future
/// work): sweeps the fraction of opposing-direction vehicles.
pub fn two_way_sweep(cfg: &ScenarioConfig, fractions: &[f64], repetitions: u32) -> Vec<SweepPoint> {
    fractions
        .iter()
        .map(|&f| {
            let mut cfg = cfg.clone();
            cfg.backward_fraction = f;
            let specs: Vec<TrialSpec> = (0..repetitions)
                .map(|rep| {
                    TrialSpec::single(
                        72_000 + u64::from(rep) * 31 + (f * 1000.0) as u64,
                        2,
                        cfg.plan().cluster_count(),
                    )
                })
                .collect();
            let outcomes = parallel_map(&specs, |spec| run_trial(&cfg, spec));
            sweep_summary(outcomes, f)
        })
        .collect()
}

/// Result of one congestion/dedup configuration.
#[derive(Debug, Clone, Copy)]
pub struct CongestionResult {
    /// Whether verification-table dedup was enabled.
    pub dedup: bool,
    /// Mean detection episodes started per trial (1.0 = perfect dedup).
    pub mean_episodes: f64,
    /// Mean detection-plane radio/wired sends by RSUs per trial.
    pub mean_probe_sends: f64,
}

/// Ablation A5 in-sim: `reporters` vehicles all report the same attacker
/// within half a second (a congested segment). With dedup the CH runs one
/// examination; without it, redundant probe ladders multiply.
pub fn congestion_dedup(
    cfg: &ScenarioConfig,
    reporters: u32,
    repetitions: u32,
) -> Vec<CongestionResult> {
    use crate::rsu_node::RsuNode;
    use crate::vehicle::VehicleNode;
    use blackdp::ChEvent;
    use blackdp_sim::Time;

    [true, false]
        .into_iter()
        .map(|dedup| {
            let mut episodes = 0u32;
            let mut probe_sends = 0u64;
            for rep in 0..repetitions {
                let mut cfg = cfg.clone();
                cfg.blackdp.dedup_detection_requests = dedup;
                let spec =
                    TrialSpec::single(73_000 + u64::from(rep) * 37, 2, cfg.plan().cluster_count());
                let mut built = crate::build::build_scenario(&cfg, &spec);
                // Let membership settle, then have `reporters` same-cluster
                // vehicles all report the attacker.
                built.world.run_until(Time::from_secs(2));
                let suspect = built
                    .world
                    .get::<crate::malicious_node::MaliciousNode>(built.attackers[0])
                    .map(|a| a.addr())
                    .expect("attacker");
                let suspect_cluster = Some(blackdp_mobility::ClusterId(2));
                let candidates: Vec<_> = built
                    .vehicles
                    .iter()
                    .copied()
                    .filter(|&v| {
                        built
                            .world
                            .get::<VehicleNode>(v)
                            .and_then(|n| n.cluster())
                            .is_some()
                    })
                    .take(reporters as usize)
                    .collect();
                for v in candidates {
                    if let Some(node) = built.world.get_mut::<VehicleNode>(v) {
                        node.force_report(suspect, suspect_cluster);
                    }
                }
                built.world.run_until(Time::ZERO + cfg.sim_duration);
                for &r in &built.rsus {
                    if let Some(rsu) = built.world.get::<RsuNode>(r) {
                        episodes += rsu
                            .events()
                            .iter()
                            .filter(|e| matches!(e, ChEvent::DetectionStarted { .. }))
                            .count() as u32;
                    }
                }
                probe_sends += built.world.stats().get("tx.rreq");
            }
            CongestionResult {
                dedup,
                mean_episodes: f64::from(episodes) / f64::from(repetitions),
                mean_probe_sends: probe_sends as f64 / f64::from(repetitions),
            }
        })
        .collect()
}

/// One defense's aggregate result in the comparison ablation.
#[derive(Debug, Clone)]
pub struct DefenseResult {
    /// Which defense ran.
    pub defense: DefenseMode,
    /// Rates with an attacker present.
    pub under_attack: RateSummary,
    /// Mean PDR without any attacker (overhead check).
    pub clean_pdr: f64,
}

/// Ablation A3: packet delivery and detection across defenses, with and
/// without a single attacker near the source.
pub fn defense_comparison(cfg: &ScenarioConfig, repetitions: u32) -> Vec<DefenseResult> {
    let cluster_count = cfg.plan().cluster_count();
    [
        DefenseMode::None,
        DefenseMode::BaselineThreshold,
        DefenseMode::BaselinePeak,
        DefenseMode::BaselineFirstRrep,
        DefenseMode::BlackDp,
    ]
    .into_iter()
    .map(|defense| {
        let mut cfg = cfg.clone();
        cfg.defense = defense;
        let attacked_specs: Vec<TrialSpec> = (0..repetitions)
            .map(|rep| TrialSpec::single(7_000 + u64::from(rep) * 11, 2, cluster_count))
            .collect();
        let attacked = parallel_map(&attacked_specs, |spec| run_trial(&cfg, spec));
        let clean_specs: Vec<TrialSpec> = (0..repetitions)
            .map(|rep| TrialSpec {
                seed: 8_000 + u64::from(rep) * 11,
                attack: AttackSetup::None,
                evasion: EvasionPolicy::None,
                source_cluster: 1,
                dest_cluster: Some(4),
                attacker_moves: false,
                attacker_fake_hello: false,
            })
            .collect();
        let clean = parallel_map(&clean_specs, |spec| run_trial(&cfg, spec));
        DefenseResult {
            defense,
            under_attack: RateSummary::from_outcomes(&attacked),
            clean_pdr: clean.iter().map(|o| o.pdr()).sum::<f64>() / clean.len() as f64,
        }
    })
    .collect()
}

/// One fault-intensity point of [`fault_sweep`].
#[derive(Debug, Clone)]
pub struct FaultSweepPoint {
    /// The fault intensity in `[0, 1]` this point was run at.
    pub intensity: f64,
    /// Detection/delivery rates across repetitions.
    pub rates: RateSummary,
    /// Mean worst-case membership-recovery time across trials that had at
    /// least one RSU restart (virtual seconds).
    pub mean_time_to_recover_s: Option<f64>,
    /// Total RSU crashes across repetitions.
    pub crashes: u64,
    /// Total restarts that came back.
    pub restarts: u64,
    /// Restarts after which the segment never repopulated.
    pub unrecovered_restarts: u32,
    /// Total TA revocation retries (degraded-backhaul activity).
    pub revocation_retries: u64,
    /// Deliveries swallowed by injected faults.
    pub fault_drops: u64,
}

/// Robustness-under-failure sweep (experiment E9): randomized RSU
/// crashes, TA outages, backhaul partitions, and radio bursts of growing
/// intensity against a single staged black hole. Reports detection rates
/// and time-to-recover per intensity.
pub fn fault_sweep(
    cfg: &ScenarioConfig,
    intensities: &[f64],
    repetitions: u32,
) -> Vec<FaultSweepPoint> {
    let cluster_count = cfg.plan().cluster_count();
    intensities
        .iter()
        .map(|&intensity| {
            let specs: Vec<(TrialSpec, FaultSpec)> = (0..repetitions)
                .map(|rep| {
                    let seed = 90_000 + u64::from(rep) * 31 + (intensity * 1000.0) as u64;
                    let faults = FaultSpec::randomized(seed, intensity, cfg);
                    (TrialSpec::single(seed, 2, cluster_count), faults)
                })
                .collect();
            let outcomes: Vec<FaultTrialOutcome> =
                parallel_map(&specs, |(spec, faults)| run_fault_trial(cfg, spec, faults));
            let recover: Vec<f64> = outcomes
                .iter()
                .filter_map(|o| o.time_to_recover.map(|d| d.as_secs_f64()))
                .collect();
            let base: Vec<TrialOutcome> = outcomes.iter().map(|o| o.base.clone()).collect();
            FaultSweepPoint {
                intensity,
                rates: RateSummary::from_outcomes(&base),
                mean_time_to_recover_s: (!recover.is_empty())
                    .then(|| recover.iter().sum::<f64>() / recover.len() as f64),
                crashes: outcomes.iter().map(|o| o.crashes).sum(),
                restarts: outcomes.iter().map(|o| o.restarts).sum(),
                unrecovered_restarts: outcomes.iter().map(|o| o.unrecovered_restarts).sum(),
                revocation_retries: outcomes.iter().map(|o| o.revocation_retries).sum(),
                fault_drops: outcomes.iter().map(|o| o.fault_drops).sum(),
            }
        })
        .collect()
}
