//! Supervised multi-process sweep orchestration.
//!
//! [`run_campaign`] shards a list of batches across worker *processes* and
//! supervises them: heartbeat-based hang detection, per-batch timeouts,
//! exponential-backoff retries with a cap, work-stealing of stragglers,
//! and graceful degradation (the campaign completes with whatever workers
//! survive, reporting which batches failed or had to be rerun).
//!
//! ## Worker contract
//!
//! The orchestrator launches the configured command with four extra
//! trailing arguments:
//!
//! ```text
//! <program> <fixed args…> <campaign_dir> <batch_index> <batch_arg> <attempt>
//! ```
//!
//! A worker must:
//!
//! 1. periodically touch `<campaign_dir>/hb_<index>_<attempt>` while it
//!    works (any write updates the mtime the supervisor watches), and
//! 2. write its result **atomically** to `<campaign_dir>/batch_<index>.done`
//!    (see [`crate::atomic_write`]); the *presence* of that file is the
//!    sole completion criterion.
//!
//! Because results land atomically and workers are deterministic
//! functions of `(index, arg)`, every failure-handling policy is safe by
//! construction: a SIGKILLed worker leaves no torn file, a retry or a
//! stolen twin rewrites byte-identical content, and resuming a campaign
//! is just skipping batches whose `.done` file already exists. Merging
//! reads the files in batch-index order, so merged output is bit-identical
//! to a serial run regardless of crash/retry/steal interleaving.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// One unit of work: an opaque argument string handed to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSpec {
    /// Stable index; determines the result file name and merge order.
    pub index: u32,
    /// Worker-interpreted payload (e.g. a corpus line or seed list).
    pub arg: String,
}

/// The worker process to launch for each batch.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// Program path (e.g. `std::env::current_exe()` for self-exec).
    pub program: PathBuf,
    /// Fixed arguments placed before the per-batch ones.
    pub args: Vec<String>,
}

/// Supervision policy knobs.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Directory for heartbeats and batch results (created if missing).
    pub campaign_dir: PathBuf,
    /// Maximum concurrently running worker processes.
    pub max_workers: usize,
    /// Hard wall-clock cap per worker attempt; exceeding it gets the
    /// worker killed and the batch retried.
    pub batch_timeout: Duration,
    /// A worker whose heartbeat file goes stale for this long (or never
    /// appears within it) is presumed hung and killed.
    pub heartbeat_timeout: Duration,
    /// Total attempts allowed per batch before it is marked failed.
    pub max_attempts: u32,
    /// First retry delay; doubles per subsequent attempt.
    pub backoff_base: Duration,
    /// A batch still running after this long becomes eligible for
    /// work-stealing: a duplicate attempt races it, first result wins.
    pub steal_after: Duration,
    /// Supervisor poll cadence.
    pub poll_interval: Duration,
}

impl OrchestratorConfig {
    /// Conservative defaults for real sweeps.
    pub fn new(campaign_dir: PathBuf) -> Self {
        OrchestratorConfig {
            campaign_dir,
            max_workers: 4,
            batch_timeout: Duration::from_secs(300),
            heartbeat_timeout: Duration::from_secs(30),
            max_attempts: 3,
            backoff_base: Duration::from_millis(100),
            steal_after: Duration::from_secs(60),
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// Final disposition of one batch after a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchState {
    /// The batch's index.
    pub index: u32,
    /// Worker attempts launched for it *this campaign* (0 if resumed).
    pub attempts: u32,
    /// Whether its result file exists.
    pub completed: bool,
    /// Result already existed when the campaign started (resume skip).
    pub resumed: bool,
    /// A work-stealing twin was launched for it.
    pub stolen: bool,
}

/// What happened across a whole campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Per-batch final states, in batch order.
    pub batches: Vec<BatchState>,
    /// Total worker processes launched.
    pub launches: u32,
}

impl CampaignReport {
    /// True when every batch has a result on disk.
    pub fn all_completed(&self) -> bool {
        self.batches.iter().all(|b| b.completed)
    }

    /// Indices that exhausted their attempts without a result.
    pub fn failed(&self) -> Vec<u32> {
        self.batches
            .iter()
            .filter(|b| !b.completed)
            .map(|b| b.index)
            .collect()
    }

    /// Indices that needed more than one attempt (crash/hang reruns).
    pub fn retried(&self) -> Vec<u32> {
        self.batches
            .iter()
            .filter(|b| b.attempts > 1 && !b.stolen)
            .map(|b| b.index)
            .collect()
    }

    /// Indices that had a work-stealing twin launched.
    pub fn stolen(&self) -> Vec<u32> {
        self.batches
            .iter()
            .filter(|b| b.stolen)
            .map(|b| b.index)
            .collect()
    }

    /// How many batches were already done on disk at campaign start.
    pub fn resumed(&self) -> u32 {
        self.batches.iter().filter(|b| b.resumed).count() as u32
    }
}

/// The result-file path for a batch (presence = batch complete).
pub fn done_path(dir: &Path, index: u32) -> PathBuf {
    dir.join(format!("batch_{index}.done"))
}

/// The heartbeat-file path a worker attempt must keep touching.
pub fn heartbeat_path(dir: &Path, index: u32, attempt: u32) -> PathBuf {
    dir.join(format!("hb_{index}_{attempt}"))
}

struct Runner {
    child: Child,
    started: Instant,
    attempt: u32,
}

struct Supervised {
    spec: BatchSpec,
    runners: Vec<Runner>,
    attempts: u32,
    next_eligible: Instant,
    done: bool,
    failed: bool,
    resumed: bool,
    stolen: bool,
}

impl Supervised {
    fn settled(&self) -> bool {
        self.done || self.failed
    }
}

fn mtime_age(path: &Path, now: std::time::SystemTime) -> Option<Duration> {
    let modified = fs::metadata(path).and_then(|m| m.modified()).ok()?;
    now.duration_since(modified).ok()
}

fn kill_runner(r: &mut Runner) {
    let _ = r.child.kill();
    let _ = r.child.wait();
}

/// Runs `batches` through worker processes under full supervision.
///
/// Returns once every batch is either complete or has exhausted its
/// attempts — worker crashes, hangs, and even losing every worker for a
/// batch degrade to a [`CampaignReport`] entry, never an error. `Err` is
/// reserved for the orchestrator itself being unable to operate (campaign
/// directory not creatable, worker binary unspawnable).
pub fn run_campaign(
    cmd: &WorkerCommand,
    batches: &[BatchSpec],
    cfg: &OrchestratorConfig,
) -> io::Result<CampaignReport> {
    fs::create_dir_all(&cfg.campaign_dir)?;
    let start = Instant::now();
    let mut launches = 0u32;
    let mut slots: Vec<Supervised> = batches
        .iter()
        .map(|spec| {
            let done = done_path(&cfg.campaign_dir, spec.index).exists();
            Supervised {
                spec: spec.clone(),
                runners: Vec::new(),
                attempts: 0,
                next_eligible: start,
                done,
                failed: false,
                resumed: done,
                stolen: false,
            }
        })
        .collect();

    let spawn = |spec: &BatchSpec, attempt: u32| -> io::Result<Child> {
        Command::new(&cmd.program)
            .args(&cmd.args)
            .arg(&cfg.campaign_dir)
            .arg(spec.index.to_string())
            .arg(&spec.arg)
            .arg(attempt.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
    };

    while slots.iter().any(|s| !s.settled()) {
        let now = Instant::now();
        let wall = std::time::SystemTime::now();

        for slot in slots.iter_mut().filter(|s| !s.settled()) {
            // Result file appearing settles the batch immediately; any
            // still-running attempts (stolen twins, slow originals) are
            // redundant and reaped.
            if done_path(&cfg.campaign_dir, slot.spec.index).exists() {
                slot.done = true;
                for r in &mut slot.runners {
                    kill_runner(r);
                }
                slot.runners.clear();
                continue;
            }

            // Reap exits and kill hung attempts.
            let had_runners = !slot.runners.is_empty();
            let mut kept = Vec::new();
            for mut r in slot.runners.drain(..) {
                let exited = matches!(r.child.try_wait(), Ok(Some(_)));
                if exited {
                    continue; // no result file yet ⇒ this attempt failed
                }
                let age = now.duration_since(r.started);
                let hb = heartbeat_path(&cfg.campaign_dir, slot.spec.index, r.attempt);
                let hb_age = mtime_age(&hb, wall).unwrap_or(age);
                if age > cfg.batch_timeout || hb_age > cfg.heartbeat_timeout {
                    kill_runner(&mut r);
                    continue;
                }
                kept.push(r);
            }
            slot.runners = kept;

            // Last attempt just died: back off before retrying, or give
            // up. Scheduling happens only on the poll that observed the
            // death, so the backoff clock is armed exactly once.
            if slot.runners.is_empty() && had_runners {
                if slot.attempts >= cfg.max_attempts {
                    slot.failed = true;
                } else {
                    let backoff = cfg.backoff_base * 2u32.saturating_pow(slot.attempts - 1);
                    slot.next_eligible = now + backoff;
                }
            }
        }

        // Fill free worker slots: first fresh/retry launches in batch
        // order, then steal stragglers.
        let mut active: usize = slots.iter().map(|s| s.runners.len()).sum();
        for slot in slots.iter_mut() {
            if active >= cfg.max_workers {
                break;
            }
            if slot.settled() || !slot.runners.is_empty() || slot.next_eligible > now {
                continue;
            }
            slot.attempts += 1;
            let child = spawn(&slot.spec, slot.attempts)?;
            launches += 1;
            slot.runners.push(Runner {
                child,
                started: now,
                attempt: slot.attempts,
            });
            active += 1;
        }
        if active < cfg.max_workers {
            // Straggler with exactly one live attempt, running the
            // longest past the steal threshold, gets a racing twin.
            let candidate = slots
                .iter_mut()
                .filter(|s| !s.settled() && s.runners.len() == 1 && s.attempts < cfg.max_attempts)
                .filter(|s| now.duration_since(s.runners[0].started) > cfg.steal_after)
                .max_by_key(|s| now.duration_since(s.runners[0].started));
            if let Some(slot) = candidate {
                slot.attempts += 1;
                slot.stolen = true;
                let child = spawn(&slot.spec, slot.attempts)?;
                launches += 1;
                slot.runners.push(Runner {
                    child,
                    started: now,
                    attempt: slot.attempts,
                });
            }
        }

        std::thread::sleep(cfg.poll_interval);
    }

    for slot in &mut slots {
        for r in &mut slot.runners {
            kill_runner(r);
        }
        slot.runners.clear();
    }

    Ok(CampaignReport {
        batches: slots
            .iter()
            .map(|s| BatchState {
                index: s.spec.index,
                attempts: s.attempts,
                completed: s.done,
                resumed: s.resumed,
                stolen: s.stolen,
            })
            .collect(),
        launches,
    })
}

/// Concatenates every batch result in index order.
///
/// Deterministic by construction: result files are pure functions of
/// `(index, arg)` written atomically, and the read order is the batch
/// order — so the merge is byte-identical to a serial run no matter how
/// many crashes, retries, steals, or resumes produced the files. Fails
/// with `NotFound` if any batch result is missing (check
/// [`CampaignReport::all_completed`] first).
pub fn merge_results(dir: &Path, batch_count: u32) -> io::Result<Vec<u8>> {
    let mut out = Vec::new();
    for index in 0..batch_count {
        let path = done_path(dir, index);
        let bytes = fs::read(&path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("batch {index} result missing at {}: {e}", path.display()),
            )
        })?;
        out.extend_from_slice(&bytes);
    }
    Ok(out)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    /// A worker implemented as an inline shell script. The orchestrator
    /// appends `<dir> <index> <arg> <attempt>`, which the script sees as
    /// `$1 $2 $3 $4`.
    fn sh_worker(script: &str) -> WorkerCommand {
        WorkerCommand {
            program: PathBuf::from("/bin/sh"),
            args: vec!["-c".into(), script.into(), "worker".into()],
        }
    }

    /// Atomically writes "r<index>:<arg>\n" to the done file.
    const WRITE_DONE: &str = r#"printf 'r%s:%s\n' "$2" "$3" > "$1/.t$2.$4" && mv "$1/.t$2.$4" "$1/batch_$2.done""#;

    fn fast_cfg(tag: &str) -> OrchestratorConfig {
        let dir = std::env::temp_dir().join(format!("blackdp_orch_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        OrchestratorConfig {
            campaign_dir: dir,
            max_workers: 2,
            batch_timeout: Duration::from_secs(20),
            heartbeat_timeout: Duration::from_secs(20),
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            steal_after: Duration::from_secs(60),
            poll_interval: Duration::from_millis(10),
        }
    }

    fn specs(n: u32) -> Vec<BatchSpec> {
        (0..n)
            .map(|index| BatchSpec {
                index,
                arg: format!("a{index}"),
            })
            .collect()
    }

    #[test]
    fn happy_path_completes_and_merges_in_order() {
        let cfg = fast_cfg("happy");
        let report = run_campaign(&sh_worker(WRITE_DONE), &specs(4), &cfg).unwrap();
        assert!(report.all_completed());
        assert!(report.failed().is_empty());
        assert_eq!(report.resumed(), 0);
        let merged = merge_results(&cfg.campaign_dir, 4).unwrap();
        assert_eq!(
            String::from_utf8(merged).unwrap(),
            "r0:a0\nr1:a1\nr2:a2\nr3:a3\n"
        );
        let _ = fs::remove_dir_all(&cfg.campaign_dir);
    }

    #[test]
    fn crashed_worker_is_retried_with_backoff() {
        let cfg = fast_cfg("crash");
        // Attempt 1 dies by SIGKILL (kill -9 $$) before writing; attempt 2
        // succeeds.
        let script = format!(r#"if [ "$4" -lt 2 ]; then kill -9 $$; fi; {WRITE_DONE}"#);
        let report = run_campaign(&sh_worker(&script), &specs(2), &cfg).unwrap();
        assert!(report.all_completed());
        assert_eq!(report.retried(), vec![0, 1]);
        let merged = merge_results(&cfg.campaign_dir, 2).unwrap();
        assert_eq!(String::from_utf8(merged).unwrap(), "r0:a0\nr1:a1\n");
        let _ = fs::remove_dir_all(&cfg.campaign_dir);
    }

    #[test]
    fn hung_worker_is_killed_and_retried() {
        let mut cfg = fast_cfg("hang");
        cfg.heartbeat_timeout = Duration::from_millis(200);
        // Attempt 1 never heartbeats and sleeps forever; the supervisor
        // must kill it on heartbeat staleness and retry.
        let script = format!(r#"if [ "$4" -lt 2 ]; then sleep 60; fi; {WRITE_DONE}"#);
        let t0 = Instant::now();
        let report = run_campaign(&sh_worker(&script), &specs(1), &cfg).unwrap();
        assert!(report.all_completed());
        assert_eq!(report.retried(), vec![0]);
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "hang detection took {:?}",
            t0.elapsed()
        );
        let _ = fs::remove_dir_all(&cfg.campaign_dir);
    }

    #[test]
    fn existing_results_are_resumed_not_rerun() {
        let cfg = fast_cfg("resume");
        fs::create_dir_all(&cfg.campaign_dir).unwrap();
        fs::write(done_path(&cfg.campaign_dir, 0), "pre-existing\n").unwrap();
        let report = run_campaign(&sh_worker(WRITE_DONE), &specs(2), &cfg).unwrap();
        assert!(report.all_completed());
        assert_eq!(report.resumed(), 1);
        assert_eq!(report.batches[0].attempts, 0, "resumed batch relaunched");
        // The pre-existing result is preserved verbatim.
        let merged = merge_results(&cfg.campaign_dir, 2).unwrap();
        assert_eq!(String::from_utf8(merged).unwrap(), "pre-existing\nr1:a1\n");
        let _ = fs::remove_dir_all(&cfg.campaign_dir);
    }

    #[test]
    fn straggler_is_stolen_and_loser_is_reaped() {
        let mut cfg = fast_cfg("steal");
        cfg.steal_after = Duration::from_millis(100);
        // Attempt 1 heartbeats forever without finishing; the stolen twin
        // (attempt 2) completes instantly and the orchestrator kills the
        // straggler.
        let script = format!(
            r#"if [ "$4" -lt 2 ]; then while :; do : > "$1/hb_$2_$4"; sleep 0.02; done; fi; {WRITE_DONE}"#
        );
        let report = run_campaign(&sh_worker(&script), &specs(1), &cfg).unwrap();
        assert!(report.all_completed());
        assert_eq!(report.stolen(), vec![0]);
        let merged = merge_results(&cfg.campaign_dir, 1).unwrap();
        assert_eq!(String::from_utf8(merged).unwrap(), "r0:a0\n");
        let _ = fs::remove_dir_all(&cfg.campaign_dir);
    }

    #[test]
    fn campaign_degrades_gracefully_when_a_batch_cannot_complete() {
        let mut cfg = fast_cfg("degrade");
        cfg.max_attempts = 2;
        // Batch 0 always dies; batch 1 succeeds.
        let script = format!(r#"if [ "$2" = 0 ]; then exit 1; fi; {WRITE_DONE}"#);
        let report = run_campaign(&sh_worker(&script), &specs(2), &cfg).unwrap();
        assert!(!report.all_completed());
        assert_eq!(report.failed(), vec![0]);
        assert_eq!(report.batches[0].attempts, 2);
        assert!(report.batches[1].completed);
        assert!(merge_results(&cfg.campaign_dir, 2).is_err());
        let _ = fs::remove_dir_all(&cfg.campaign_dir);
    }
}
