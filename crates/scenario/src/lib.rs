//! # blackdp-scenario — full-system simulation scenarios for BlackDP
//!
//! Glues every layer of the reproduction together into runnable trials:
//! the deterministic simulator (`blackdp-sim`), the highway/cluster model
//! (`blackdp-mobility`), the PKI (`blackdp-crypto`), the AODV routing
//! substrate (`blackdp-aodv`), the BlackDP protocol (`blackdp`), the
//! attackers (`blackdp-attacks`) and the related-work baselines
//! (`blackdp-baselines`).
//!
//! The crate provides four node types implementing the simulator's
//! [`Node`](blackdp_sim::Node) trait — honest [`VehicleNode`], malicious
//! [`MaliciousNode`], roadside [`RsuNode`], and off-road [`TaNode`] — plus
//! a scenario builder, a trial runner with outcome harvesting, and the
//! experiment drivers that regenerate the paper's Figure 4 and Figure 5.
//!
//! # Examples
//!
//! Run one single-black-hole trial on the Table I network:
//!
//! ```no_run
//! use blackdp_scenario::{run_trial, ScenarioConfig, TrialSpec};
//!
//! let cfg = ScenarioConfig::paper_table1();
//! let spec = TrialSpec::single(42, /* attacker cluster */ 2, 10);
//! let outcome = run_trial(&cfg, &spec);
//! assert!(outcome.attacker_confirmed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boundary;
mod build;
mod config;
mod directory;
mod experiment;
mod faults;
mod frame;
mod fuzz;
mod invariants;
mod journal;
mod malicious_node;
mod metrics;
mod orchestrator;
mod parallel;
mod persist;
mod rsu_node;
mod snapshot;
pub mod stack;
mod ta_node;
mod trace;
mod vehicle;

pub use boundary::{
    attach_boundary_audit, attach_window_prefetch, drain as drain_boundary_audit, AuditorHandle,
};
pub use build::{build_scenario, harvest, run_trial, BuiltScenario, PHANTOM_DEST, TA_ADDR_BASE};
pub use config::{ch_addr, far_destination, AttackSetup, ScenarioConfig, TrialSpec, CH_ADDR_BASE};
pub use directory::WiredDirectory;
pub use experiment::{
    congestion_dedup, defense_comparison, density_sweep, fading_sweep, fault_sweep, fig4,
    fig4_cell, fig4_cell_serial, fig4_cell_spec, fig5, grayhole_sweep, loss_sweep, two_way_sweep,
    AttackKind, CongestionResult, DefenseResult, FaultSweepPoint, Fig4Point, Fig5Row,
    GrayHolePoint, SweepPoint, RENEWAL_ZONE_EVASION_PROB,
};
pub use faults::{
    run_fault_trial, BackhaulPartition, FaultSpec, FaultTrialOutcome, RadioBurstSpec, RsuCrash,
    TaOutage,
};
pub use frame::{broadcast_wire, send_wire, Frame, L2Cache, Tick};
pub use fuzz::{metamorphic_failures, run_case, CaseReport, FuzzCase, CORPUS_TAG};
pub use invariants::{
    attach_invariants, standard_invariants, CertAcceptance, IsolationPermanence, NoSelfDelivery,
    PacketConservation, RadioRangeCheck, RreqIdMonotonic,
};
pub use journal::{attach_journal, FrameJournal, JournalEntry, JournalHandle};
pub use malicious_node::{MaliciousNode, MaliciousNodeConfig, MaliciousProfile};
pub use metrics::{wilson_half_width, RateSummary, TrialClass, TrialOutcome};
pub use orchestrator::{
    done_path, heartbeat_path, merge_results, run_campaign, BatchSpec, BatchState, CampaignReport,
    OrchestratorConfig, WorkerCommand,
};
pub use parallel::{parallel_map, parallel_map_with, worker_count};
pub use persist::atomic_write;
pub use rsu_node::RsuNode;
pub use snapshot::{
    bisect_divergence, nearest_checkpoint, record_trial_with_checkpoints, resume_trial,
    trial_fingerprint, CheckpointStamp, ResumeError, Snapshot, SnapshotError,
};
pub use ta_node::TaNode;
pub use trace::{
    chain_events as chain_trace, decode as decode_trace, diff as diff_traces, diff_encoded,
    encode as encode_trace, record_trial, replay_divergence, Divergence, TraceError, TraceEvent,
};
pub use vehicle::{DefenseMode, TrafficIntent, VehicleConfig, VehicleNode};
