//! The link-layer frame carried by the simulator, and shared plumbing.

use std::collections::HashMap;

use blackdp::Wire;
use blackdp_aodv::Addr;
use blackdp_sim::{Context, NodeId};

/// The single payload type every simulated node exchanges: a [`Wire`]
/// packet with a link-layer header (source address, optional unicast
/// destination).
///
/// Radio frames with `dst: Some(a)` are filtered by receivers that do not
/// own address `a`; `dst: None` is a link broadcast.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The transmitting node's current protocol address (a pseudonym, an
    /// RSU address, or a disposable probe identity).
    pub src: Addr,
    /// Unicast destination, or `None` for broadcast.
    pub dst: Option<Addr>,
    /// The payload.
    pub wire: Wire,
}

/// The single timer token: every node runs one periodic tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tick;

/// A learned mapping from protocol addresses to simulator node ids (the
/// "ARP cache" of the link layer). Updated from every received frame.
#[derive(Debug, Clone, Default)]
pub struct L2Cache {
    map: HashMap<Addr, NodeId>,
}

impl L2Cache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        L2Cache::default()
    }

    /// Records that `addr` was last heard from simulator node `node`.
    pub fn learn(&mut self, addr: Addr, node: NodeId) {
        self.map.insert(addr, node);
    }

    /// Resolves a protocol address to a node id, if known.
    pub fn resolve(&self, addr: Addr) -> Option<NodeId> {
        self.map.get(&addr).copied()
    }

    /// Number of learned addresses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Transmits `wire` to protocol address `to`: resolved unicast when the
/// L2 cache knows the target, otherwise an addressed broadcast that only
/// the owner of `to` will process.
pub fn send_wire(
    ctx: &mut Context<'_, Frame, Tick>,
    l2: &L2Cache,
    src: Addr,
    to: Addr,
    wire: Wire,
) {
    ctx.count(wire.tx_key());
    let frame = Frame {
        src,
        dst: Some(to),
        wire,
    };
    match l2.resolve(to) {
        Some(node) => ctx.send(node, frame),
        None => ctx.broadcast(frame),
    }
}

/// Broadcasts `wire` to everyone in radio range.
pub fn broadcast_wire(ctx: &mut Context<'_, Frame, Tick>, src: Addr, wire: Wire) {
    ctx.count(wire.btx_key());
    ctx.broadcast(Frame {
        src,
        dst: None,
        wire,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_cache_learns_and_resolves() {
        let mut l2 = L2Cache::new();
        assert!(l2.is_empty());
        l2.learn(Addr(5), NodeId::new(2));
        assert_eq!(l2.resolve(Addr(5)), Some(NodeId::new(2)));
        assert_eq!(l2.resolve(Addr(6)), None);
        // Address moves to another radio (pseudonym reuse): latest wins.
        l2.learn(Addr(5), NodeId::new(9));
        assert_eq!(l2.resolve(Addr(5)), Some(NodeId::new(9)));
        assert_eq!(l2.len(), 1);
    }
}
