//! Table-driven accept/reject contract for every [`RouteDefense`]
//! implementation, exercised directly through the stack's layer API: a
//! forged high-SN RREP (built by the attackers' own forge helper) and a
//! legitimate low-SN RREP are offered to each defense mode, and the
//! verdicts must match the scheme's published behaviour. First-RREP's
//! collection window gets its own edge-case walk (open, buffer, conclude
//! exactly at the deadline).

use blackdp_aodv::{Addr, AodvConfig, Rrep, Rreq};
use blackdp_attacks::{forge_rrep, ForgeParams};
use blackdp_crypto::{Keypair, PseudonymId};
use blackdp_scenario::stack::{DefenseMode, RouteDefense, Routing, RrepVerdict, VehicleConfig};
use blackdp_sim::{Duration, Time};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SRC: Addr = Addr(40);
const ATTACKER: Addr = Addr(66);
const HONEST: Addr = Addr(41);
const DEST: Addr = Addr(7);

fn build(mode: DefenseMode) -> Box<dyn RouteDefense> {
    let cfg = VehicleConfig::default();
    let mut rng = StdRng::seed_from_u64(42);
    let ta_key = Keypair::generate(&mut rng).public();
    mode.build(&cfg, ta_key, PseudonymId(99))
}

/// A legitimate reply: low sequence number, plausible shape.
fn legitimate_rrep() -> Rrep {
    Rrep {
        dest: DEST,
        dest_seq: 10,
        orig: SRC,
        hop_count: 3,
        lifetime: Duration::from_secs(10),
        next_hop: None,
    }
}

/// The attack reply, built exactly the way the attackers build it.
fn forged_rrep() -> Rrep {
    let mut highest_seen = 500; // gossip put the network around SN 500
    let rreq = Rreq {
        rreq_id: 1,
        dest: DEST,
        dest_seq: Some(10),
        orig: SRC,
        orig_seq: 1,
        hop_count: 0,
        ttl: 5,
        next_hop_inquiry: false,
    };
    forge_rrep(&ForgeParams::default(), &mut highest_seen, &rreq, ATTACKER)
}

/// What a defense must do with an RREP offered at the intercept hook.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Expect {
    Deliver,
    RejectSender,
}

#[test]
fn intercept_verdicts_match_the_published_scheme_per_mode() {
    // (mode, verdict on forged high-SN RREP, verdict on legitimate RREP).
    // BlackDP never judges at intercept — it verifies installed routes
    // with probes instead — and the undefended mode accepts everything.
    // Peak (bound 100 at t=0) and Threshold (static 500) both reject the
    // forged SN 620 and pass the legitimate SN 10. First-RREP is a
    // windowed scheme and is covered by the dedicated tests below.
    let table: &[(DefenseMode, Expect, Expect)] = &[
        (DefenseMode::BlackDp, Expect::Deliver, Expect::Deliver),
        (DefenseMode::BaselinePeak, Expect::RejectSender, Expect::Deliver),
        (DefenseMode::BaselineThreshold, Expect::RejectSender, Expect::Deliver),
        (DefenseMode::None, Expect::Deliver, Expect::Deliver),
    ];

    for &(mode, on_forged, on_legit) in table {
        for (rrep, sender, expect) in [
            (forged_rrep(), ATTACKER, on_forged),
            (legitimate_rrep(), HONEST, on_legit),
        ] {
            let mut defense = build(mode);
            assert_eq!(defense.mode(), mode);
            let verdict =
                defense.intercept_rrep(sender, Some(sender), &rrep, None, Time::ZERO);
            let got = match verdict {
                RrepVerdict::Deliver => Expect::Deliver,
                RrepVerdict::Reject { judged } => {
                    assert_eq!(judged, sender, "{mode:?} must charge the signer");
                    Expect::RejectSender
                }
                RrepVerdict::Buffered => {
                    panic!("{mode:?} buffered outside a collection window")
                }
            };
            assert_eq!(
                got, expect,
                "{mode:?} on {} (SN {})",
                if sender == ATTACKER { "forged" } else { "legitimate" },
                rrep.dest_seq,
            );
        }
    }
}

#[test]
fn rejecting_modes_judge_the_relay_when_the_envelope_is_unsigned() {
    for mode in [DefenseMode::BaselinePeak, DefenseMode::BaselineThreshold] {
        let mut defense = build(mode);
        let verdict = defense.intercept_rrep(SRC, None, &forged_rrep(), None, Time::ZERO);
        assert_eq!(
            verdict,
            RrepVerdict::Reject { judged: SRC },
            "{mode:?}: without a signer the relaying neighbor is judged",
        );
    }
}

#[test]
fn peak_bound_consolidates_so_gradual_growth_stays_accepted() {
    // Window edge for the dynamic bound: SN 90 is fine now, and after the
    // 2 s interval rolls the base forward, SN 170 (≤ 90 + growth 100) is
    // fine too — only a jump past the rolling bound is rejected.
    let mut defense = build(DefenseMode::BaselinePeak);
    let mut rrep = legitimate_rrep();
    rrep.dest_seq = 90;
    assert_eq!(
        defense.intercept_rrep(HONEST, Some(HONEST), &rrep, None, Time::ZERO),
        RrepVerdict::Deliver
    );
    let later = Time::ZERO + Duration::from_secs(2);
    rrep.dest_seq = 170;
    assert_eq!(
        defense.intercept_rrep(HONEST, Some(HONEST), &rrep, None, later),
        RrepVerdict::Deliver
    );
    rrep.dest_seq = 620;
    assert_eq!(
        defense.intercept_rrep(ATTACKER, Some(ATTACKER), &rrep, None, later),
        RrepVerdict::Reject { judged: ATTACKER }
    );
}

/// First-RREP buffers during a window and names the forged first reply.
#[test]
fn first_rrep_window_buffers_judges_and_releases_survivors() {
    let mut defense = build(DefenseMode::BaselineFirstRrep);

    // Outside any window the scheme is transparent.
    assert_eq!(
        defense.intercept_rrep(HONEST, Some(HONEST), &legitimate_rrep(), None, Time::ZERO),
        RrepVerdict::Deliver
    );

    // `kick` opens the judged discovery window…
    let routing = Routing::new(SRC, AodvConfig::default());
    let actions = defense.kick(&routing, DEST, Time::ZERO);
    assert!(!actions.is_empty(), "the kick must start a discovery");

    // …and a second kick while it is collecting is a no-op.
    assert!(defense.kick(&routing, DEST, Time::ZERO).is_empty());

    // …inside it every reply is absorbed; the forged one arrives first
    // (that is the attack: outrunning the real destination).
    assert_eq!(
        defense.intercept_rrep(ATTACKER, Some(ATTACKER), &forged_rrep(), None, Time::ZERO),
        RrepVerdict::Buffered
    );
    let t1 = Time::ZERO + Duration::from_millis(100);
    assert_eq!(
        defense.intercept_rrep(HONEST, Some(HONEST), &legitimate_rrep(), None, t1),
        RrepVerdict::Buffered
    );

    // One microsecond before the deadline the window stays open.
    let window = VehicleConfig::default().first_rrep_window;
    let just_before = Time::ZERO + (window - Duration::from_micros(1));
    assert!(defense.conclude_window(just_before).is_none());

    // Exactly at the deadline it concludes: the forged first reply is
    // judged, and only the legitimate reply is released.
    let conclusion = defense
        .conclude_window(Time::ZERO + window)
        .expect("the elapsed window must conclude");
    assert_eq!(conclusion.suspect, Some(ATTACKER));
    assert_eq!(conclusion.deliver.len(), 1);
    assert_eq!(conclusion.deliver[0].0, HONEST);
    assert_eq!(conclusion.deliver[0].1.dest_seq, legitimate_rrep().dest_seq);

    // And the window is spent: a second conclude is a no-op.
    assert!(defense.conclude_window(Time::ZERO + window).is_none());
}

/// A window of honest replies concludes with no suspect and releases all.
#[test]
fn first_rrep_window_with_agreeing_replies_clears_everyone() {
    let mut defense = build(DefenseMode::BaselineFirstRrep);
    let routing = Routing::new(SRC, AodvConfig::default());
    defense.kick(&routing, DEST, Time::ZERO);
    let mut second = legitimate_rrep();
    second.dest_seq = 12;
    assert_eq!(
        defense.intercept_rrep(HONEST, Some(HONEST), &legitimate_rrep(), None, Time::ZERO),
        RrepVerdict::Buffered
    );
    assert_eq!(
        defense.intercept_rrep(SRC, Some(SRC), &second, None, Time::ZERO),
        RrepVerdict::Buffered
    );
    let window = VehicleConfig::default().first_rrep_window;
    let conclusion = defense.conclude_window(Time::ZERO + window).unwrap();
    assert_eq!(conclusion.suspect, None);
    assert_eq!(conclusion.deliver.len(), 2);
}
