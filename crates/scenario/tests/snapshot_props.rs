//! Property tests for the snapshot wire format: arbitrary stamp
//! sequences must round-trip encode→decode exactly, and any single-bit
//! corruption of the encoding must be rejected, never mis-decoded.

use blackdp_scenario::{CheckpointStamp, Snapshot, SnapshotError};
use proptest::prelude::*;

/// Expands one seed word into a fully populated stamp via a splitmix64
/// walk, so a `Vec<u64>` strategy covers the whole stamp space without a
/// custom `Arbitrary` impl.
fn stamp_from(index: u32, seed: u64) -> CheckpointStamp {
    let mut s = seed;
    let mut next = || {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    CheckpointStamp {
        index,
        at_micros: next(),
        events: next(),
        chained: next(),
        rng_state: [next(), next(), next(), next()],
        scheduled: next(),
        pending: next(),
        timers_armed: next(),
        stats_digest: next(),
        node_digest: next(),
        active_nodes: next() as u32,
    }
}

fn snapshot_from(fingerprint: u64, interval: u64, horizon: u64, seeds: &[u64]) -> Snapshot {
    Snapshot {
        fingerprint,
        interval_micros: interval,
        horizon_micros: horizon,
        stamps: seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| stamp_from(i as u32, seed))
            .collect(),
    }
}

proptest! {
    #[test]
    fn encode_decode_round_trips(
        fingerprint in any::<u64>(),
        interval in any::<u64>(),
        horizon in any::<u64>(),
        seeds in prop::collection::vec(any::<u64>(), 0..24),
    ) {
        let snap = snapshot_from(fingerprint, interval, horizon, &seeds);
        let bytes = snap.encode();
        let back = Snapshot::decode(&bytes);
        prop_assert_eq!(back.as_ref().ok(), Some(&snap));
    }

    #[test]
    fn corruption_is_always_rejected(
        seeds in prop::collection::vec(any::<u64>(), 1..8),
        flip_pos in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let snap = snapshot_from(1, 1_000_000, 8_000_000, &seeds);
        let mut bytes = snap.encode();
        let pos = flip_pos % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        // A flipped bit can never yield a *different* valid snapshot:
        // either the checksum (or magic/version guarded by it) trips, or —
        // impossible for FNV over a changed body — it would have to
        // collide. Equality with the original is likewise impossible since
        // the bytes differ and encoding is injective.
        prop_assert!(Snapshot::decode(&bytes).is_err());
    }

    #[test]
    fn truncation_is_always_rejected(
        seeds in prop::collection::vec(any::<u64>(), 0..8),
        cut in any::<usize>(),
    ) {
        let snap = snapshot_from(2, 500_000, 2_000_000, &seeds);
        let bytes = snap.encode();
        let cut = cut % bytes.len();
        let err = Snapshot::decode(&bytes[..cut]);
        prop_assert!(err.is_err());
        if cut < 48 {
            prop_assert_eq!(err.unwrap_err(), SnapshotError::TooShort { len: cut });
        }
    }
}
