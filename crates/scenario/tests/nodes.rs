//! Node-level integration tests in miniature worlds: membership, L2
//! resolution, RSU frame filtering, and builder invariants.

use blackdp::ChEvent;
use blackdp_attacks::EvasionPolicy;
use blackdp_scenario::{
    build_scenario, AttackSetup, MaliciousNode, RsuNode, ScenarioConfig, TrialSpec, VehicleNode,
};
use blackdp_sim::{Duration, Time};

fn clean_spec(seed: u64) -> TrialSpec {
    TrialSpec {
        seed,
        attack: AttackSetup::None,
        evasion: EvasionPolicy::None,
        source_cluster: 1,
        dest_cluster: Some(4),
        attacker_moves: false,
        attacker_fake_hello: false,
    }
}

#[test]
fn builder_produces_table1_inventory() {
    let cfg = ScenarioConfig::paper_table1();
    let built = build_scenario(&cfg, &TrialSpec::single(1, 2, 10));
    assert_eq!(built.rsus.len(), 10, "one RSU per cluster");
    assert_eq!(built.tas.len(), 2, "two TA regions");
    assert_eq!(built.attackers.len(), 1);
    assert_eq!(
        built.vehicles.len() + built.attackers.len(),
        100,
        "Table I: 100 vehicles total, attackers included"
    );
    // World: vehicles + attackers + RSUs + TAs.
    assert_eq!(built.world.node_count(), 100 + 10 + 2);
}

#[test]
fn cooperative_builder_places_partners_in_radio_range() {
    let cfg = ScenarioConfig::paper_table1();
    let built = build_scenario(&cfg, &TrialSpec::cooperative(3, 4, 10));
    assert_eq!(built.attackers.len(), 2);
    let a = built.world.position_of(built.attackers[0]).unwrap();
    let b = built.world.position_of(built.attackers[1]).unwrap();
    assert!(
        a.distance_to(b) <= cfg.range_m,
        "cooperative attackers must be within communication range (paper IV-A)"
    );
}

#[test]
fn vehicles_register_with_their_segment_cluster() {
    let cfg = ScenarioConfig::small_test();
    let mut built = build_scenario(&cfg, &clean_spec(5));
    built.world.run_until(Time::from_secs(3));
    let mut registered = 0;
    for &v in &built.vehicles {
        let Some(vehicle) = built.world.get::<VehicleNode>(v) else {
            continue;
        };
        if let Some(cluster) = vehicle.cluster() {
            registered += 1;
            // The registered cluster matches the vehicle's position (it may
            // lag by one segment right at a boundary crossing).
            // A fast vehicle spawned near the end may have exited the
            // instrumented strip (despawning) already; membership lapses
            // with it.
            let Some(pos) = built.world.position_of(v) else {
                continue;
            };
            let Some(actual) = built.plan.cluster_of(pos) else {
                continue;
            };
            assert!(
                cluster.0.abs_diff(actual.0) <= 1,
                "vehicle registered {cluster} but is in {actual}"
            );
        }
    }
    assert!(
        registered * 10 >= built.vehicles.len() * 9,
        "at least 90% registered within 3 s: {registered}/{}",
        built.vehicles.len()
    );
}

#[test]
fn membership_follows_motion_across_clusters() {
    let cfg = ScenarioConfig::small_test();
    let mut built = build_scenario(&cfg, &clean_spec(6));
    // After 60 s at ≥50 km/h every vehicle has crossed at least one
    // boundary; RSUs must have seen joins AND leaves.
    built.world.run_until(Time::from_secs(60));
    let mut joins = 0;
    let mut leaves = 0;
    for &r in &built.rsus {
        let rsu = built.world.get::<RsuNode>(r).unwrap();
        for e in rsu.events() {
            match e {
                ChEvent::MemberJoined(_) => joins += 1,
                ChEvent::MemberLeft(_) => leaves += 1,
                _ => {}
            }
        }
    }
    assert!(
        joins > leaves,
        "more joins than leaves (exits lack a leave)"
    );
    assert!(
        leaves >= built.vehicles.len() / 2,
        "boundary crossings must produce leaves: {leaves}"
    );
}

#[test]
fn attacker_stays_registered_like_an_honest_node() {
    let cfg = ScenarioConfig::small_test();
    let mut built = build_scenario(&cfg, &TrialSpec::single(7, 3, 10));
    built.world.run_until(Time::from_secs(3));
    let attacker_addr = built
        .world
        .get::<MaliciousNode>(built.attackers[0])
        .unwrap()
        .addr();
    let registered_somewhere = built.rsus.iter().any(|&r| {
        built
            .world
            .get::<RsuNode>(r)
            .unwrap()
            .cluster_head()
            .is_member(blackdp_crypto::PseudonymId(attacker_addr.0))
    });
    assert!(
        registered_somewhere,
        "the attacker must be in a CH routing table for detection to find it"
    );
}

#[test]
fn world_advances_without_events_after_everyone_exits() {
    // Degenerate mini-run: everything eventually drains or keeps ticking;
    // run_until never hangs.
    let mut cfg = ScenarioConfig::small_test();
    cfg.sim_duration = Duration::from_secs(2);
    let mut built = build_scenario(&cfg, &clean_spec(8));
    built.world.run_until(Time::from_secs(2));
    assert_eq!(built.world.now(), Time::from_secs(2));
}

#[test]
fn phantom_destination_address_is_unowned() {
    let cfg = ScenarioConfig::small_test();
    let spec = TrialSpec {
        dest_cluster: None,
        ..clean_spec(9)
    };
    let built = build_scenario(&cfg, &spec);
    assert!(built.dest.is_none());
    // No vehicle may own the phantom address.
    for &v in &built.vehicles {
        if let Some(vehicle) = built.world.get::<VehicleNode>(v) {
            assert_ne!(vehicle.addr(), built.dest_addr);
        }
    }
}

#[test]
fn backward_fraction_spawns_opposing_traffic() {
    let mut cfg = ScenarioConfig::small_test();
    cfg.backward_fraction = 0.5;
    let mut built = build_scenario(&cfg, &clean_spec(10));
    // Positions at t0 vs t+5s: some vehicles must have decreasing x.
    let p0: Vec<_> = built
        .vehicles
        .iter()
        .map(|&v| built.world.position_of(v).map(|p| p.x))
        .collect();
    built.world.run_until(Time::from_secs(5));
    let mut backward = 0;
    for (i, &v) in built.vehicles.iter().enumerate() {
        if let (Some(before), Some(after)) = (p0[i], built.world.position_of(v).map(|p| p.x)) {
            if after < before - 1.0 {
                backward += 1;
            }
        }
    }
    assert!(backward > 0, "some vehicles must travel backward");
}
