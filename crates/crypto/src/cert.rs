//! IEEE 1609.2-style certificates and revocation notices.
//!
//! A certificate binds a **temporary pseudonymous identification** (`id` in
//! the paper, [`PseudonymId`] here) to a public key, with a serial number and
//! an expiration time, signed by a Trusted Authority. Vehicles renew
//! pseudonyms periodically to avoid tracking; the TA keeps the (private)
//! mapping from pseudonyms to the vehicle's long-term identity.

use std::fmt;

use blackdp_sim::Time;

use crate::sig::{PublicKey, Signature};

/// A vehicle's durable identity, known only to Trusted Authorities
/// (e.g. the DMV record). Never transmitted over the air.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LongTermId(pub u64);

impl fmt::Display for LongTermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lt{}", self.0)
    }
}

/// A temporary pseudonymous identification carried in certificates and
/// packets (the paper's `id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PseudonymId(pub u64);

impl fmt::Display for PseudonymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "id{}", self.0)
    }
}

/// Identifies the Trusted Authority that issued a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaId(pub u32);

impl fmt::Display for TaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ta{}", self.0)
    }
}

/// Why a certificate failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertError {
    /// The TA signature over the certificate body does not verify.
    BadSignature,
    /// The certificate's expiration time is in the past.
    Expired,
    /// The certificate is not yet valid (`issued` is in the future).
    NotYetValid,
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::BadSignature => write!(f, "certificate signature does not verify"),
            CertError::Expired => write!(f, "certificate has expired"),
            CertError::NotYetValid => write!(f, "certificate is not yet valid"),
        }
    }
}

impl std::error::Error for CertError {}

/// A signed binding of a pseudonym to a public key.
///
/// # Examples
///
/// ```
/// use blackdp_crypto::{Certificate, Keypair, LongTermId, TrustedAuthority};
/// use blackdp_sim::{Duration, Time};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut ta = TrustedAuthority::new(blackdp_crypto::TaId(1), &mut rng);
/// let vehicle_keys = Keypair::generate(&mut rng);
/// let cert: Certificate = ta.enroll(
///     LongTermId(9),
///     vehicle_keys.public(),
///     Time::ZERO,
///     Duration::from_secs(3600),
///     &mut rng,
/// );
/// assert!(cert.verify(ta.public_key(), Time::from_secs(10)).is_ok());
/// assert!(cert.verify(ta.public_key(), Time::from_secs(7200)).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Certificate {
    /// The subject's temporary pseudonymous identification.
    pub pseudonym: PseudonymId,
    /// The subject's public key (`K⁺` in the paper).
    pub public_key: PublicKey,
    /// TA-assigned serial number, cited in revocation notices.
    pub serial: u64,
    /// Issuing Trusted Authority.
    pub issuer: TaId,
    /// Issue instant.
    pub issued: Time,
    /// Expiration instant (exclusive: the certificate is invalid at and
    /// after this time).
    pub expires: Time,
    /// TA signature over the canonical certificate body.
    pub signature: Signature,
}

impl Certificate {
    /// The canonical byte encoding covered by the TA signature.
    pub fn signing_bytes(
        pseudonym: PseudonymId,
        public_key: PublicKey,
        serial: u64,
        issuer: TaId,
        issued: Time,
        expires: Time,
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(44);
        out.extend_from_slice(b"CERT");
        out.extend_from_slice(&pseudonym.0.to_be_bytes());
        out.extend_from_slice(&public_key.raw().to_be_bytes());
        out.extend_from_slice(&serial.to_be_bytes());
        out.extend_from_slice(&issuer.0.to_be_bytes());
        out.extend_from_slice(&issued.as_micros().to_be_bytes());
        out.extend_from_slice(&expires.as_micros().to_be_bytes());
        out
    }

    /// This certificate's canonical signed body.
    pub fn body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(44);
        self.write_body(&mut out);
        out
    }

    /// Appends the canonical signed body to `out` without allocating —
    /// the batch-verification path reuses one scratch buffer across
    /// envelopes.
    pub fn write_body(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"CERT");
        out.extend_from_slice(&self.pseudonym.0.to_be_bytes());
        out.extend_from_slice(&self.public_key.raw().to_be_bytes());
        out.extend_from_slice(&self.serial.to_be_bytes());
        out.extend_from_slice(&self.issuer.0.to_be_bytes());
        out.extend_from_slice(&self.issued.as_micros().to_be_bytes());
        out.extend_from_slice(&self.expires.as_micros().to_be_bytes());
    }

    /// The digest keying this certificate's memoized TA-signature check
    /// in the per-thread cache (see [`crate::cache`]). Cache keys are
    /// process-transient, so they use the fast word-folding mixer, not
    /// canonical FNV.
    pub fn cache_digest(&self, ta_key: PublicKey) -> u128 {
        crate::cache::fast_hash_128(&[
            &self.body(),
            &self.signature.e.to_be_bytes(),
            &self.signature.s.to_be_bytes(),
            &ta_key.raw().to_be_bytes(),
        ])
    }

    /// The validity-window half of [`Certificate::verify`] alone: no
    /// signature work, just the time comparisons. Deferred verification
    /// evaluates this eagerly (it depends on `now`) while the signature
    /// check rides a batch flush.
    ///
    /// # Errors
    ///
    /// [`CertError::NotYetValid`] / [`CertError::Expired`] when `now` is
    /// outside `[issued, expires)`.
    pub fn check_window(&self, now: Time) -> Result<(), CertError> {
        if now < self.issued {
            return Err(CertError::NotYetValid);
        }
        if now >= self.expires {
            return Err(CertError::Expired);
        }
        Ok(())
    }

    /// Checks the TA signature and the validity window at time `now`.
    ///
    /// The signature check — a pure function of the certificate bytes and
    /// `ta_key` — is memoized in a per-thread LRU cache (see
    /// [`crate::cache`]); the time-window checks always run fresh, so
    /// results are identical with or without the cache.
    ///
    /// # Errors
    ///
    /// Returns [`CertError::BadSignature`] if the signature does not verify
    /// under `ta_key`, [`CertError::Expired`] / [`CertError::NotYetValid`]
    /// if `now` is outside the validity window.
    pub fn verify(&self, ta_key: PublicKey, now: Time) -> Result<(), CertError> {
        let digest = self.cache_digest(ta_key);
        let sig_ok =
            crate::cache::check_signature(digest, || ta_key.verify(&self.body(), &self.signature));
        if !sig_ok {
            return Err(CertError::BadSignature);
        }
        self.check_window(now)
    }
}

/// A revocation notice distributed to cluster heads after isolation.
///
/// Contains "the latest id (temporary pseudonyms identification), serial
/// number, and expiration time of the attackers certificate" — exactly the
/// fields Section III-B.2 lists. The notice is kept until the certificate
/// would have expired anyway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RevocationNotice {
    /// The revoked certificate's pseudonym.
    pub pseudonym: PseudonymId,
    /// The revoked certificate's serial number.
    pub serial: u64,
    /// When the revoked certificate would have expired on its own; the
    /// notice can be purged after this instant.
    pub expires: Time,
}

/// A store of active revocation notices with expiry-based purging.
///
/// Every cluster head maintains one; Section III-B.2 requires stored notices
/// to be removed "once they expired to avoid reporting expired information
/// and reduce storage overhead".
///
/// # Examples
///
/// ```
/// use blackdp_crypto::{PseudonymId, RevocationList, RevocationNotice};
/// use blackdp_sim::Time;
///
/// let mut list = RevocationList::new();
/// list.insert(RevocationNotice {
///     pseudonym: PseudonymId(5),
///     serial: 77,
///     expires: Time::from_secs(100),
/// });
/// assert!(list.is_revoked(PseudonymId(5)));
/// list.purge_expired(Time::from_secs(100));
/// assert!(!list.is_revoked(PseudonymId(5)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RevocationList {
    by_pseudonym: std::collections::BTreeMap<PseudonymId, RevocationNotice>,
}

impl RevocationList {
    /// Creates an empty list.
    pub fn new() -> Self {
        RevocationList::default()
    }

    /// Records a notice. Re-inserting the same pseudonym keeps the notice
    /// with the **later** expiry, so replayed or reordered notices cannot
    /// shorten a revocation.
    pub fn insert(&mut self, notice: RevocationNotice) {
        use std::collections::btree_map::Entry;
        match self.by_pseudonym.entry(notice.pseudonym) {
            Entry::Vacant(v) => {
                v.insert(notice);
            }
            Entry::Occupied(mut o) => {
                if notice.expires > o.get().expires {
                    o.insert(notice);
                }
            }
        }
    }

    /// Returns true if `pseudonym` has an unexpired revocation on file.
    pub fn is_revoked(&self, pseudonym: PseudonymId) -> bool {
        self.by_pseudonym.contains_key(&pseudonym)
    }

    /// Returns true if certificate serial `serial` has an unexpired
    /// revocation on file.
    pub fn is_serial_revoked(&self, serial: u64) -> bool {
        self.by_pseudonym.values().any(|n| n.serial == serial)
    }

    /// Drops every notice whose certificate has expired at `now`.
    pub fn purge_expired(&mut self, now: Time) {
        self.by_pseudonym.retain(|_, n| n.expires > now);
    }

    /// Number of notices currently stored.
    pub fn len(&self) -> usize {
        self.by_pseudonym.len()
    }

    /// Returns true if no notices are stored.
    pub fn is_empty(&self) -> bool {
        self.by_pseudonym.is_empty()
    }

    /// Iterates over stored notices in pseudonym order.
    pub fn iter(&self) -> impl Iterator<Item = &RevocationNotice> {
        self.by_pseudonym.values()
    }
}

impl Extend<RevocationNotice> for RevocationList {
    fn extend<I: IntoIterator<Item = RevocationNotice>>(&mut self, iter: I) {
        for n in iter {
            self.insert(n);
        }
    }
}

impl FromIterator<RevocationNotice> for RevocationList {
    fn from_iter<I: IntoIterator<Item = RevocationNotice>>(iter: I) -> Self {
        let mut list = RevocationList::new();
        list.extend(iter);
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::Keypair;
    use crate::ta::TrustedAuthority;
    use blackdp_sim::Duration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (StdRng, TrustedAuthority, Keypair) {
        let mut rng = StdRng::seed_from_u64(3);
        let ta = TrustedAuthority::new(TaId(0), &mut rng);
        let keys = Keypair::generate(&mut rng);
        (rng, ta, keys)
    }

    #[test]
    fn valid_certificate_verifies() {
        let (mut rng, mut ta, keys) = setup();
        let cert = ta.enroll(
            LongTermId(1),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(60),
            &mut rng,
        );
        assert_eq!(cert.verify(ta.public_key(), Time::from_secs(30)), Ok(()));
    }

    #[test]
    fn expiry_window_is_half_open() {
        let (mut rng, mut ta, keys) = setup();
        let cert = ta.enroll(
            LongTermId(1),
            keys.public(),
            Time::from_secs(10),
            Duration::from_secs(60),
            &mut rng,
        );
        assert_eq!(
            cert.verify(ta.public_key(), Time::from_secs(5)),
            Err(CertError::NotYetValid)
        );
        assert_eq!(cert.verify(ta.public_key(), Time::from_secs(10)), Ok(()));
        assert_eq!(
            cert.verify(ta.public_key(), Time::from_secs(70)),
            Err(CertError::Expired)
        );
    }

    #[test]
    fn tampered_certificate_fails() {
        let (mut rng, mut ta, keys) = setup();
        let mut cert = ta.enroll(
            LongTermId(1),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(60),
            &mut rng,
        );
        cert.pseudonym = PseudonymId(cert.pseudonym.0 ^ 1);
        assert_eq!(
            cert.verify(ta.public_key(), Time::from_secs(1)),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn certificate_from_wrong_ta_fails() {
        let (mut rng, mut ta, keys) = setup();
        let other_ta = TrustedAuthority::new(TaId(9), &mut rng);
        let cert = ta.enroll(
            LongTermId(1),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(60),
            &mut rng,
        );
        assert_eq!(
            cert.verify(other_ta.public_key(), Time::from_secs(1)),
            Err(CertError::BadSignature)
        );
    }

    #[test]
    fn revocation_list_purges_on_expiry() {
        let mut list = RevocationList::new();
        for i in 0..5u64 {
            list.insert(RevocationNotice {
                pseudonym: PseudonymId(i),
                serial: i,
                expires: Time::from_secs(10 + i),
            });
        }
        assert_eq!(list.len(), 5);
        list.purge_expired(Time::from_secs(12));
        assert_eq!(list.len(), 2);
        assert!(!list.is_revoked(PseudonymId(0)));
        assert!(list.is_revoked(PseudonymId(4)));
        assert!(list.is_serial_revoked(4));
        assert!(!list.is_serial_revoked(0));
    }

    #[test]
    fn reinsert_keeps_later_expiry() {
        let mut list = RevocationList::new();
        let early = RevocationNotice {
            pseudonym: PseudonymId(1),
            serial: 1,
            expires: Time::from_secs(5),
        };
        let late = RevocationNotice {
            pseudonym: PseudonymId(1),
            serial: 2,
            expires: Time::from_secs(50),
        };
        list.insert(late);
        list.insert(early); // replay of an older notice
        list.purge_expired(Time::from_secs(10));
        assert!(list.is_revoked(PseudonymId(1)));
    }

    #[test]
    fn from_iterator_collects() {
        let list: RevocationList = (0..3u64)
            .map(|i| RevocationNotice {
                pseudonym: PseudonymId(i),
                serial: i,
                expires: Time::from_secs(1),
            })
            .collect();
        assert_eq!(list.len(), 3);
        assert_eq!(list.iter().count(), 3);
        assert!(!list.is_empty());
    }
}
