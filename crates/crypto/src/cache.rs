//! Bounded cache of certificate signature checks.
//!
//! A vehicle re-verifies the same handful of certificates constantly: every
//! heartbeat, RREP, and probe carries the sender's certificate, and the
//! TA-signature check is by far the most expensive step (two modular
//! exponentiations). The *signature* validity of a certificate under a
//! given TA key is a pure function of its bytes, so it can be memoized;
//! the validity-*window* checks depend on the current virtual time and are
//! always re-evaluated by [`Certificate::verify`](crate::Certificate::verify).
//! That makes the cache observationally transparent: cached and uncached
//! verification return identical results at every instant.
//!
//! The cache is thread-local (parallel sweep workers each get their own;
//! no locks on the hot path) and bounded by LRU eviction.

use std::cell::RefCell;
use std::collections::HashMap;

/// Maximum number of distinct certificates remembered per thread. Sized
/// for several full highways' worth of pseudonyms (a Table-I trial enrolls
/// ~100 and renewals add a few more) while keeping eviction scans cheap.
const CAPACITY: usize = 1024;

struct CertCache {
    /// digest → (signature valid?, last-use stamp).
    entries: HashMap<u128, (bool, u64), DigestHasherBuilder>,
    /// Monotonic use counter backing the LRU stamps.
    clock: u64,
    hits: u64,
    misses: u64,
}

thread_local! {
    static CACHE: RefCell<CertCache> = RefCell::new(CertCache {
        entries: HashMap::default(),
        clock: 0,
        hits: 0,
        misses: 0,
    });
}

/// Hash-transparent `BuildHasher` for maps keyed by digests that are
/// already uniformly mixed 128-bit hashes ([`fast_hash_128`] /
/// [`fnv1a_128`] output): folding the two halves together is a full
/// 64-bit state, and re-running SipHash over an existing hash buys no
/// distribution — it only costs time on the verifier's memo-hit path.
/// Only for digest keys; anything attacker-shaped goes through a real
/// hasher.
#[derive(Debug, Default, Clone, Copy)]
pub struct DigestHasherBuilder;

/// See [`DigestHasherBuilder`].
#[derive(Debug, Default)]
pub struct DigestHasher(u64);

impl std::hash::Hasher for DigestHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback so the hasher is total; digest maps only hit
        // the `write_u128` path.
        for &byte in bytes {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u128(&mut self, v: u128) {
        self.0 = (v as u64) ^ ((v >> 64) as u64);
    }
}

impl std::hash::BuildHasher for DigestHasherBuilder {
    type Hasher = DigestHasher;
    fn build_hasher(&self) -> DigestHasher {
        DigestHasher(0)
    }
}

/// FNV-1a, widened to 128 bits to make accidental collisions across a
/// simulation's certificate population negligible. Public because the
/// deferred verifier keys its envelope memo with the same stream.
pub fn fnv1a_128(chunks: &[&[u8]]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    for chunk in chunks {
        for &byte in *chunk {
            hash ^= byte as u128;
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}

/// Word-at-a-time 128-bit mixer for **process-transient cache keys**
/// (the certificate cache, the envelope-verdict memo).
///
/// [`fnv1a_128`] folds one byte per 128-bit multiply; on the deferred
/// verifier's hot path — one envelope digest per `verify_one`, over
/// hundreds of envelope bytes — that multiply chain *was* the memo-hit
/// cost. This variant folds eight bytes per multiply (same FNV prime,
/// zero-padded tail disambiguated by a per-chunk length fold, final
/// avalanche so low bits spread for shard selection), cutting digest
/// time ~8x. It is not FNV and not cryptographic; never persist its
/// output or compare it across processes — keys live and die with the
/// process.
pub fn fast_hash_128(chunks: &[&[u8]]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    for chunk in chunks {
        let mut words = chunk.chunks_exact(8);
        for word in &mut words {
            hash ^= u64::from_le_bytes(word.try_into().expect("exact 8-byte chunk")) as u128;
            hash = hash.wrapping_mul(PRIME);
        }
        let tail = words.remainder();
        if !tail.is_empty() {
            let mut padded = [0u8; 8];
            padded[..tail.len()].copy_from_slice(tail);
            hash ^= u64::from_le_bytes(padded) as u128;
            hash = hash.wrapping_mul(PRIME);
        }
        // Folding the length keeps `[1, 0]` and `[1]` (zero-padded to the
        // same word) distinct, and chunk boundaries unambiguous.
        hash ^= chunk.len() as u128;
        hash = hash.wrapping_mul(PRIME);
    }
    hash ^= hash >> 64;
    hash.wrapping_mul(PRIME)
}

/// Looks up `digest`, or computes the signature check with `check` and
/// caches the result, evicting the least-recently-used entry when full.
pub(crate) fn check_signature(digest: u128, check: impl FnOnce() -> bool) -> bool {
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.clock += 1;
        let stamp = cache.clock;
        if let Some(entry) = cache.entries.get_mut(&digest) {
            entry.1 = stamp;
            let valid = entry.0;
            cache.hits += 1;
            return valid;
        }
        cache.misses += 1;
        let valid = check();
        if cache.entries.len() >= CAPACITY {
            if let Some(&oldest) = cache
                .entries
                .iter()
                .min_by_key(|(_, &(_, used))| used)
                .map(|(k, _)| k)
            {
                cache.entries.remove(&oldest);
            }
        }
        cache.entries.insert(digest, (valid, stamp));
        valid
    })
}

/// Looks up a previously memoized signature check without computing it on
/// a miss. A hit refreshes the entry's LRU stamp, exactly like
/// [`check_signature`]. Deferred (batched) verification uses this to
/// decide which certificate signatures still need real work.
pub fn lookup_signature(digest: u128) -> Option<bool> {
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.clock += 1;
        let stamp = cache.clock;
        if let Some(entry) = cache.entries.get_mut(&digest) {
            entry.1 = stamp;
            let valid = entry.0;
            cache.hits += 1;
            Some(valid)
        } else {
            cache.misses += 1;
            None
        }
    })
}

/// Memoizes an externally computed signature check (the batch verifier's
/// flush), with the same LRU eviction as [`check_signature`].
pub fn store_signature(digest: u128, valid: bool) {
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.clock += 1;
        let stamp = cache.clock;
        if cache.entries.len() >= CAPACITY && !cache.entries.contains_key(&digest) {
            if let Some(&oldest) = cache
                .entries
                .iter()
                .min_by_key(|(_, &(_, used))| used)
                .map(|(k, _)| k)
            {
                cache.entries.remove(&oldest);
            }
        }
        cache.entries.insert(digest, (valid, stamp));
    })
}

/// `(hits, misses)` recorded by this thread's certificate cache.
pub fn cert_cache_stats() -> (u64, u64) {
    CACHE.with(|cache| {
        let cache = cache.borrow();
        (cache.hits, cache.misses)
    })
}

/// Empties this thread's certificate cache and zeroes its counters.
/// Benchmarks use this to measure cold-path costs.
pub fn cert_cache_clear() {
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.entries.clear();
        cache.clock = 0;
        cache.hits = 0;
        cache.misses = 0;
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        cert_cache_clear();
        let mut computed = 0;
        for _ in 0..3 {
            assert!(check_signature(42, || {
                computed += 1;
                true
            }));
        }
        assert_eq!(computed, 1, "signature check ran once");
        assert_eq!(cert_cache_stats(), (2, 1));
        cert_cache_clear();
    }

    #[test]
    fn negative_results_are_cached_too() {
        cert_cache_clear();
        assert!(!check_signature(7, || false));
        assert!(!check_signature(7, || panic!("must hit the cache")));
        cert_cache_clear();
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        cert_cache_clear();
        for i in 0..CAPACITY as u128 {
            check_signature(i, || true);
        }
        // Touch entry 0 so it is no longer the oldest, then overflow.
        check_signature(0, || panic!("entry 0 must still be cached"));
        check_signature(u128::MAX, || true);
        // Entry 1 was the LRU and is gone; entry 0 survived.
        let (hits_before, _) = cert_cache_stats();
        check_signature(0, || panic!("entry 0 must have survived eviction"));
        let (hits_after, _) = cert_cache_stats();
        assert_eq!(hits_after, hits_before + 1);
        let mut recomputed = false;
        check_signature(1, || {
            recomputed = true;
            true
        });
        assert!(recomputed, "entry 1 must have been evicted");
        cert_cache_clear();
    }

    #[test]
    fn fnv_distinguishes_chunk_contents() {
        assert_ne!(fnv1a_128(&[b"ab"]), fnv1a_128(&[b"ba"]));
        assert_ne!(fnv1a_128(&[b""]), fnv1a_128(&[b"\0"]));
        // Chunking is an encoding detail: the hash covers concatenated bytes.
        assert_eq!(fnv1a_128(&[b"ab", b"cd"]), fnv1a_128(&[b"abcd"]));
    }
}
