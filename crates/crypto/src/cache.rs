//! Bounded cache of certificate signature checks.
//!
//! A vehicle re-verifies the same handful of certificates constantly: every
//! heartbeat, RREP, and probe carries the sender's certificate, and the
//! TA-signature check is by far the most expensive step (two modular
//! exponentiations). The *signature* validity of a certificate under a
//! given TA key is a pure function of its bytes, so it can be memoized;
//! the validity-*window* checks depend on the current virtual time and are
//! always re-evaluated by [`Certificate::verify`](crate::Certificate::verify).
//! That makes the cache observationally transparent: cached and uncached
//! verification return identical results at every instant.
//!
//! The cache is thread-local (parallel sweep workers each get their own;
//! no locks on the hot path) and bounded by LRU eviction.

use std::cell::RefCell;
use std::collections::HashMap;

/// Maximum number of distinct certificates remembered per thread. Sized
/// for several full highways' worth of pseudonyms (a Table-I trial enrolls
/// ~100 and renewals add a few more) while keeping eviction scans cheap.
const CAPACITY: usize = 1024;

struct CertCache {
    /// digest → (signature valid?, last-use stamp).
    entries: HashMap<u128, (bool, u64)>,
    /// Monotonic use counter backing the LRU stamps.
    clock: u64,
    hits: u64,
    misses: u64,
}

thread_local! {
    static CACHE: RefCell<CertCache> = RefCell::new(CertCache {
        entries: HashMap::new(),
        clock: 0,
        hits: 0,
        misses: 0,
    });
}

/// FNV-1a, widened to 128 bits to make accidental collisions across a
/// simulation's certificate population negligible.
pub(crate) fn fnv1a_128(chunks: &[&[u8]]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut hash = OFFSET;
    for chunk in chunks {
        for &byte in *chunk {
            hash ^= byte as u128;
            hash = hash.wrapping_mul(PRIME);
        }
    }
    hash
}

/// Looks up `digest`, or computes the signature check with `check` and
/// caches the result, evicting the least-recently-used entry when full.
pub(crate) fn check_signature(digest: u128, check: impl FnOnce() -> bool) -> bool {
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.clock += 1;
        let stamp = cache.clock;
        if let Some(entry) = cache.entries.get_mut(&digest) {
            entry.1 = stamp;
            let valid = entry.0;
            cache.hits += 1;
            return valid;
        }
        cache.misses += 1;
        let valid = check();
        if cache.entries.len() >= CAPACITY {
            if let Some(&oldest) = cache
                .entries
                .iter()
                .min_by_key(|(_, &(_, used))| used)
                .map(|(k, _)| k)
            {
                cache.entries.remove(&oldest);
            }
        }
        cache.entries.insert(digest, (valid, stamp));
        valid
    })
}

/// Looks up a previously memoized signature check without computing it on
/// a miss. A hit refreshes the entry's LRU stamp, exactly like
/// [`check_signature`]. Deferred (batched) verification uses this to
/// decide which certificate signatures still need real work.
pub fn lookup_signature(digest: u128) -> Option<bool> {
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.clock += 1;
        let stamp = cache.clock;
        if let Some(entry) = cache.entries.get_mut(&digest) {
            entry.1 = stamp;
            let valid = entry.0;
            cache.hits += 1;
            Some(valid)
        } else {
            cache.misses += 1;
            None
        }
    })
}

/// Memoizes an externally computed signature check (the batch verifier's
/// flush), with the same LRU eviction as [`check_signature`].
pub fn store_signature(digest: u128, valid: bool) {
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.clock += 1;
        let stamp = cache.clock;
        if cache.entries.len() >= CAPACITY && !cache.entries.contains_key(&digest) {
            if let Some(&oldest) = cache
                .entries
                .iter()
                .min_by_key(|(_, &(_, used))| used)
                .map(|(k, _)| k)
            {
                cache.entries.remove(&oldest);
            }
        }
        cache.entries.insert(digest, (valid, stamp));
    })
}

/// `(hits, misses)` recorded by this thread's certificate cache.
pub fn cert_cache_stats() -> (u64, u64) {
    CACHE.with(|cache| {
        let cache = cache.borrow();
        (cache.hits, cache.misses)
    })
}

/// Empties this thread's certificate cache and zeroes its counters.
/// Benchmarks use this to measure cold-path costs.
pub fn cert_cache_clear() {
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.entries.clear();
        cache.clock = 0;
        cache.hits = 0;
        cache.misses = 0;
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        cert_cache_clear();
        let mut computed = 0;
        for _ in 0..3 {
            assert!(check_signature(42, || {
                computed += 1;
                true
            }));
        }
        assert_eq!(computed, 1, "signature check ran once");
        assert_eq!(cert_cache_stats(), (2, 1));
        cert_cache_clear();
    }

    #[test]
    fn negative_results_are_cached_too() {
        cert_cache_clear();
        assert!(!check_signature(7, || false));
        assert!(!check_signature(7, || panic!("must hit the cache")));
        cert_cache_clear();
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        cert_cache_clear();
        for i in 0..CAPACITY as u128 {
            check_signature(i, || true);
        }
        // Touch entry 0 so it is no longer the oldest, then overflow.
        check_signature(0, || panic!("entry 0 must still be cached"));
        check_signature(u128::MAX, || true);
        // Entry 1 was the LRU and is gone; entry 0 survived.
        let (hits_before, _) = cert_cache_stats();
        check_signature(0, || panic!("entry 0 must have survived eviction"));
        let (hits_after, _) = cert_cache_stats();
        assert_eq!(hits_after, hits_before + 1);
        let mut recomputed = false;
        check_signature(1, || {
            recomputed = true;
            true
        });
        assert!(recomputed, "entry 1 must have been evicted");
        cert_cache_clear();
    }

    #[test]
    fn fnv_distinguishes_chunk_contents() {
        assert_ne!(fnv1a_128(&[b"ab"]), fnv1a_128(&[b"ba"]));
        assert_ne!(fnv1a_128(&[b""]), fnv1a_128(&[b"\0"]));
        // Chunking is an encoding detail: the hash covers concatenated bytes.
        assert_eq!(fnv1a_128(&[b"ab", b"cd"]), fnv1a_128(&[b"abcd"]));
    }
}
