//! The Trusted Authority: enrollment, pseudonym renewal, and revocation.
//!
//! The paper assumes "a Trusted Authority (TA) exists and acts as a root of
//! trust in the network (e.g., Department of Motor Vehicles)"; several TA
//! nodes exist, each responsible for a region of cluster heads, and on
//! revocation a TA "informs other trusted authority nodes to pause attacker
//! renewal certificates and sends a revocation notice to the surrounding
//! CHs" (Section III-B.2).

use std::collections::HashMap;
use std::fmt;

use blackdp_sim::{Duration, Time};
use rand::RngExt;

use crate::cert::{Certificate, LongTermId, PseudonymId, RevocationNotice, TaId};
use crate::sig::{Keypair, PublicKey};

/// Why a renewal request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenewError {
    /// The presented pseudonym was never issued by this TA.
    UnknownPseudonym,
    /// Renewals for the owning vehicle are paused (misbehaviour reported).
    RenewalPaused,
}

impl fmt::Display for RenewError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenewError::UnknownPseudonym => write!(f, "pseudonym was not issued by this authority"),
            RenewError::RenewalPaused => {
                write!(f, "certificate renewal is paused for this vehicle")
            }
        }
    }
}

impl std::error::Error for RenewError {}

/// Why a revocation request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevokeError {
    /// The pseudonym is unknown to this TA.
    UnknownPseudonym,
}

impl fmt::Display for RevokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RevokeError::UnknownPseudonym => {
                write!(f, "pseudonym was not issued by this authority")
            }
        }
    }
}

impl std::error::Error for RevokeError {}

/// The result of revoking a certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Revocation {
    /// The notice to distribute to cluster heads (pseudonym, serial, expiry).
    pub notice: RevocationNotice,
    /// The owning vehicle's long-term identity, shared **only** between
    /// trusted authorities so that peer TAs can pause renewals too.
    pub owner: LongTermId,
}

#[derive(Debug, Clone)]
struct CertRecord {
    owner: LongTermId,
    serial: u64,
    expires: Time,
}

/// A regional Trusted Authority.
///
/// Holds the root signing key, the private pseudonym → long-term identity
/// registry, and the renewal pause list.
///
/// # Examples
///
/// ```
/// use blackdp_crypto::{Keypair, LongTermId, TaId, TrustedAuthority};
/// use blackdp_sim::{Duration, Time};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
/// let keys = Keypair::generate(&mut rng);
/// let cert = ta.enroll(LongTermId(4), keys.public(), Time::ZERO, Duration::from_secs(60), &mut rng);
///
/// // The vehicle later renews under a fresh pseudonym.
/// let keys2 = Keypair::generate(&mut rng);
/// let cert2 = ta
///     .renew(cert.pseudonym, keys2.public(), Time::from_secs(30), Duration::from_secs(60), &mut rng)
///     .unwrap();
/// assert_ne!(cert.pseudonym, cert2.pseudonym);
///
/// // After revocation, renewal is paused.
/// let rev = ta.revoke(cert2.pseudonym).unwrap();
/// assert_eq!(rev.owner, LongTermId(4));
/// assert!(ta
///     .renew(cert2.pseudonym, keys2.public(), Time::from_secs(40), Duration::from_secs(60), &mut rng)
///     .is_err());
/// ```
#[derive(Debug)]
pub struct TrustedAuthority {
    id: TaId,
    keypair: Keypair,
    next_serial: u64,
    by_pseudonym: HashMap<PseudonymId, CertRecord>,
    paused: std::collections::HashSet<LongTermId>,
}

impl TrustedAuthority {
    /// Creates an authority with a fresh root key.
    pub fn new<R: rand::Rng + ?Sized>(id: TaId, rng: &mut R) -> Self {
        Self::with_keypair(id, Keypair::generate(rng))
    }

    /// Creates an authority using an existing root key.
    ///
    /// Regional TA nodes in one trust domain share the root signing key
    /// (hierarchically delegated from a single authority, as in IEEE
    /// 1609.2 deployments), so any receiver can validate any region's
    /// certificates with one public key — the paper's single `K⁺_TA`.
    pub fn with_keypair(id: TaId, keypair: Keypair) -> Self {
        TrustedAuthority {
            id,
            keypair,
            // Disjoint serial ranges per regional authority, so notices
            // from different regions never collide.
            next_serial: u64::from(id.0) * 1_000_000_000 + 1,
            by_pseudonym: HashMap::new(),
            paused: std::collections::HashSet::new(),
        }
    }

    /// This authority's identity.
    pub fn id(&self) -> TaId {
        self.id
    }

    /// The root public key (`K⁺_TA`) vehicles use to validate certificates.
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public()
    }

    /// Issues a first certificate for a vehicle, under a fresh pseudonym.
    pub fn enroll<R: rand::Rng + ?Sized>(
        &mut self,
        owner: LongTermId,
        subject_key: PublicKey,
        now: Time,
        validity: Duration,
        rng: &mut R,
    ) -> Certificate {
        self.issue(owner, subject_key, now, validity, rng)
    }

    /// Renews a certificate: the vehicle presents its current pseudonym and
    /// (possibly new) public key and receives a fresh pseudonymous
    /// certificate.
    ///
    /// # Errors
    ///
    /// * [`RenewError::UnknownPseudonym`] if `current` was never issued here.
    /// * [`RenewError::RenewalPaused`] if the owner was reported for
    ///   misbehaviour (this is how isolation starves an attacker of
    ///   identities).
    pub fn renew<R: rand::Rng + ?Sized>(
        &mut self,
        current: PseudonymId,
        subject_key: PublicKey,
        now: Time,
        validity: Duration,
        rng: &mut R,
    ) -> Result<Certificate, RenewError> {
        let owner = self
            .by_pseudonym
            .get(&current)
            .map(|r| r.owner)
            .ok_or(RenewError::UnknownPseudonym)?;
        if self.paused.contains(&owner) {
            return Err(RenewError::RenewalPaused);
        }
        Ok(self.issue(owner, subject_key, now, validity, rng))
    }

    /// Revokes the certificate behind `pseudonym`, pausing all future
    /// renewals for its owner and returning the notice for cluster heads.
    ///
    /// # Errors
    ///
    /// Returns [`RevokeError::UnknownPseudonym`] if this TA never issued
    /// `pseudonym`.
    pub fn revoke(&mut self, pseudonym: PseudonymId) -> Result<Revocation, RevokeError> {
        let record = self
            .by_pseudonym
            .get(&pseudonym)
            .ok_or(RevokeError::UnknownPseudonym)?;
        let owner = record.owner;
        let notice = RevocationNotice {
            pseudonym,
            serial: record.serial,
            expires: record.expires,
        };
        self.paused.insert(owner);
        Ok(Revocation { notice, owner })
    }

    /// Pauses renewals for `owner` — how a peer TA propagates a revocation
    /// into this region.
    pub fn pause_renewals(&mut self, owner: LongTermId) {
        self.paused.insert(owner);
    }

    /// Returns true if renewals are paused for `owner`.
    pub fn is_paused(&self, owner: LongTermId) -> bool {
        self.paused.contains(&owner)
    }

    /// Looks up the owner of a pseudonym (TA-private information).
    pub fn owner_of(&self, pseudonym: PseudonymId) -> Option<LongTermId> {
        self.by_pseudonym.get(&pseudonym).map(|r| r.owner)
    }

    /// Number of certificates ever issued by this authority.
    pub fn issued_count(&self) -> u64 {
        self.by_pseudonym.len() as u64
    }

    fn issue<R: rand::Rng + ?Sized>(
        &mut self,
        owner: LongTermId,
        subject_key: PublicKey,
        now: Time,
        validity: Duration,
        rng: &mut R,
    ) -> Certificate {
        // Draw pseudonyms randomly (they must be unlinkable), retrying on
        // the unlikely collision.
        let pseudonym = loop {
            let candidate = PseudonymId(rng.random::<u64>());
            if !self.by_pseudonym.contains_key(&candidate) {
                break candidate;
            }
        };
        let serial = self.next_serial;
        self.next_serial += 1;
        let expires = now + validity;
        let body =
            Certificate::signing_bytes(pseudonym, subject_key, serial, self.id, now, expires);
        let signature = self.keypair.sign(&body, rng);
        self.by_pseudonym.insert(
            pseudonym,
            CertRecord {
                owner,
                serial,
                expires,
            },
        );
        Certificate {
            pseudonym,
            public_key: subject_key,
            serial,
            issuer: self.id,
            issued: now,
            expires,
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (StdRng, TrustedAuthority) {
        let mut rng = StdRng::seed_from_u64(9);
        let ta = TrustedAuthority::new(TaId(1), &mut rng);
        (rng, ta)
    }

    #[test]
    fn enroll_issues_verifiable_certificate() {
        let (mut rng, mut ta) = setup();
        let keys = Keypair::generate(&mut rng);
        let cert = ta.enroll(
            LongTermId(1),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(100),
            &mut rng,
        );
        assert!(cert.verify(ta.public_key(), Time::from_secs(1)).is_ok());
        assert_eq!(ta.owner_of(cert.pseudonym), Some(LongTermId(1)));
        assert_eq!(ta.issued_count(), 1);
    }

    #[test]
    fn renewal_changes_pseudonym_and_serial() {
        let (mut rng, mut ta) = setup();
        let keys = Keypair::generate(&mut rng);
        let c1 = ta.enroll(
            LongTermId(2),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(100),
            &mut rng,
        );
        let c2 = ta
            .renew(
                c1.pseudonym,
                keys.public(),
                Time::from_secs(50),
                Duration::from_secs(100),
                &mut rng,
            )
            .expect("renewal should succeed");
        assert_ne!(c1.pseudonym, c2.pseudonym);
        assert_ne!(c1.serial, c2.serial);
        assert_eq!(ta.owner_of(c2.pseudonym), Some(LongTermId(2)));
    }

    #[test]
    fn renew_unknown_pseudonym_fails() {
        let (mut rng, mut ta) = setup();
        let keys = Keypair::generate(&mut rng);
        let err = ta
            .renew(
                PseudonymId(12345),
                keys.public(),
                Time::ZERO,
                Duration::from_secs(10),
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, RenewError::UnknownPseudonym);
    }

    #[test]
    fn revocation_pauses_renewal_for_all_pseudonyms_of_owner() {
        let (mut rng, mut ta) = setup();
        let keys = Keypair::generate(&mut rng);
        let c1 = ta.enroll(
            LongTermId(3),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(100),
            &mut rng,
        );
        let c2 = ta
            .renew(
                c1.pseudonym,
                keys.public(),
                Time::from_secs(10),
                Duration::from_secs(100),
                &mut rng,
            )
            .unwrap();
        let rev = ta.revoke(c2.pseudonym).unwrap();
        assert_eq!(rev.owner, LongTermId(3));
        assert_eq!(rev.notice.pseudonym, c2.pseudonym);
        // Renewing under the *old* pseudonym must also fail: the pause is
        // keyed by the owner, not the pseudonym.
        assert_eq!(
            ta.renew(
                c1.pseudonym,
                keys.public(),
                Time::from_secs(20),
                Duration::from_secs(100),
                &mut rng,
            )
            .unwrap_err(),
            RenewError::RenewalPaused
        );
        assert!(ta.is_paused(LongTermId(3)));
    }

    #[test]
    fn peer_pause_propagation() {
        let (mut rng, mut ta) = setup();
        let mut peer = TrustedAuthority::new(TaId(2), &mut rng);
        let keys = Keypair::generate(&mut rng);
        let cert = peer.enroll(
            LongTermId(4),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(100),
            &mut rng,
        );
        // `ta` revokes nothing, but receives the owner from the peer's
        // revocation and pauses locally.
        let c_here = ta.enroll(
            LongTermId(4),
            keys.public(),
            Time::ZERO,
            Duration::from_secs(100),
            &mut rng,
        );
        let rev = peer.revoke(cert.pseudonym).unwrap();
        ta.pause_renewals(rev.owner);
        assert_eq!(
            ta.renew(
                c_here.pseudonym,
                keys.public(),
                Time::from_secs(1),
                Duration::from_secs(10),
                &mut rng,
            )
            .unwrap_err(),
            RenewError::RenewalPaused
        );
    }

    #[test]
    fn revoke_unknown_pseudonym_fails() {
        let (_rng, mut ta) = setup();
        assert_eq!(
            ta.revoke(PseudonymId(999)).unwrap_err(),
            RevokeError::UnknownPseudonym
        );
    }

    #[test]
    fn pseudonyms_are_unique_across_issues() {
        let (mut rng, mut ta) = setup();
        let keys = Keypair::generate(&mut rng);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let cert = ta.enroll(
                LongTermId(i),
                keys.public(),
                Time::ZERO,
                Duration::from_secs(10),
                &mut rng,
            );
            assert!(seen.insert(cert.pseudonym), "duplicate pseudonym issued");
        }
    }
}
