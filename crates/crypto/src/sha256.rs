//! A from-scratch SHA-256 implementation (FIPS 180-4).
//!
//! The paper's "secure packets" are built from a one-way hash (it names
//! SHA-256 explicitly) plus a signature over the digest. No external crypto
//! crates are available offline, so the hash is implemented here and tested
//! against the published NIST vectors.

use std::fmt;

/// A 256-bit message digest.
///
/// # Examples
///
/// ```
/// use blackdp_crypto::sha256::{sha256, Digest};
///
/// let d: Digest = sha256(b"abc");
/// assert_eq!(
///     d.to_string(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Returns the digest bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Folds the digest into a `u64` (used to map hashes into the signature
    /// scheme's scalar field).
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has 32 bytes"))
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A streaming SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use blackdp_crypto::sha256::{sha256, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), sha256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self
            .total_len
            .checked_add(data.len() as u64)
            .expect("message too long for SHA-256");
        let mut input = data;
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let block: [u8; 64] = input[..64].try_into().expect("sliced 64 bytes");
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self
            .total_len
            .checked_mul(8)
            .expect("message too long for SHA-256");
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.raw_update_padding(&[0x80]);
        while self.buffer_len != 56 {
            self.raw_update_padding(&[0x00]);
        }
        self.raw_update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// `update` without advancing `total_len`, used only for padding bytes.
    fn raw_update_padding(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffer_len] = b;
            self.buffer_len += 1;
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Multi-lane SHA-256: several independent messages hashed in lockstep.
///
/// The compression function's round operations are all 32-bit adds,
/// rotates, and bitwise logic — run over struct-of-arrays lanes
/// (`[u32; LANES]` per working variable) they autovectorize, amortizing
/// the round schedule across messages. Lanes are fully independent: each
/// keeps its own message schedule and padding, so messages of unequal
/// length work — a lane that runs out of blocks freezes its state while
/// the longer lanes continue. The scalar [`Sha256`] path is the
/// differential oracle (`sha256_lanes_match_scalar` here plus the
/// proptests in `crypto/tests/`).
pub mod lanes {
    use super::{Digest, H0, K};

    /// Messages hashed per lockstep group. Eight 32-bit lanes fill two
    /// SSE2 registers (the x86-64 baseline) per working variable and
    /// still vectorize cleanly on narrower targets.
    pub const LANES: usize = 8;

    /// Padded SHA-256 block count for a message of `len` bytes.
    fn block_count(len: usize) -> usize {
        (len + 9).div_ceil(64)
    }

    /// Materializes block `b` of `msg`'s padded form (FIPS 180-4 §5.1.1):
    /// message bytes, then `0x80`, zeros, and the big-endian bit length in
    /// the final block.
    fn padded_block(msg: &[u8], b: usize) -> [u8; 64] {
        let mut out = [0u8; 64];
        let start = b * 64;
        let n = msg.len();
        if start + 64 <= n {
            out.copy_from_slice(&msg[start..start + 64]);
            return out;
        }
        if start < n {
            out[..n - start].copy_from_slice(&msg[start..]);
        }
        if (start..start + 64).contains(&n) {
            out[n - start] = 0x80;
        }
        if b + 1 == block_count(n) {
            out[56..].copy_from_slice(&((n as u64) * 8).to_be_bytes());
        }
        out
    }

    #[inline(always)]
    #[allow(clippy::manual_rotate)]
    fn rotr(x: [u32; LANES], r: u32) -> [u32; LANES] {
        // Written as shift-or rather than `rotate_right`: SSE2 has no
        // vector rotate, and LLVM leaves the rotate intrinsic as scalar
        // `rol`s, whereas shift and or lanes vectorize.
        let mut out = [0u32; LANES];
        for l in 0..LANES {
            out[l] = (x[l] >> r) | (x[l] << (32 - r));
        }
        out
    }

    #[inline(always)]
    fn xor3(a: [u32; LANES], b: [u32; LANES], c: [u32; LANES]) -> [u32; LANES] {
        let mut out = [0u32; LANES];
        for l in 0..LANES {
            out[l] = a[l] ^ b[l] ^ c[l];
        }
        out
    }

    #[inline(always)]
    fn add(a: [u32; LANES], b: [u32; LANES]) -> [u32; LANES] {
        let mut out = [0u32; LANES];
        for l in 0..LANES {
            out[l] = a[l].wrapping_add(b[l]);
        }
        out
    }

    /// One compression round group over all lanes; `active` masks lanes
    /// whose message already ended (their state must stay frozen).
    fn compress_lanes(
        state: &mut [[u32; LANES]; 8],
        blocks: &[[u8; 64]; LANES],
        active: &[bool; LANES],
    ) {
        // Message schedule, struct-of-arrays: w[t][l] is word t of lane l.
        let mut w = [[0u32; LANES]; 64];
        for l in 0..LANES {
            for t in 0..16 {
                w[t][l] = u32::from_be_bytes(blocks[l][t * 4..t * 4 + 4].try_into().expect("4B"));
            }
        }
        for t in 16..64 {
            let s0 = xor3(rotr(w[t - 15], 7), rotr(w[t - 15], 18), {
                let mut sh = [0u32; LANES];
                for l in 0..LANES {
                    sh[l] = w[t - 15][l] >> 3;
                }
                sh
            });
            let s1 = xor3(rotr(w[t - 2], 17), rotr(w[t - 2], 19), {
                let mut sh = [0u32; LANES];
                for l in 0..LANES {
                    sh[l] = w[t - 2][l] >> 10;
                }
                sh
            });
            w[t] = add(add(w[t - 16], s0), add(w[t - 7], s1));
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for t in 0..64 {
            let s1 = xor3(rotr(e, 6), rotr(e, 11), rotr(e, 25));
            let mut ch = [0u32; LANES];
            for l in 0..LANES {
                ch[l] = (e[l] & f[l]) ^ (!e[l] & g[l]);
            }
            let kt = [K[t]; LANES];
            let temp1 = add(add(h, s1), add(add(ch, kt), w[t]));
            let s0 = xor3(rotr(a, 2), rotr(a, 13), rotr(a, 22));
            let mut maj = [0u32; LANES];
            for l in 0..LANES {
                maj[l] = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            }
            let temp2 = add(s0, maj);
            h = g;
            g = f;
            f = e;
            e = add(d, temp1);
            d = c;
            c = b;
            b = a;
            a = add(temp1, temp2);
        }
        let work = [a, b, c, d, e, f, g, h];
        for (i, word) in work.iter().enumerate() {
            for l in 0..LANES {
                if active[l] {
                    state[i][l] = state[i][l].wrapping_add(word[l]);
                }
            }
        }
    }

    /// Hashes up to [`LANES`] messages in lockstep. Bit-identical to
    /// hashing each message with [`super::sha256`].
    pub fn sha256_x(msgs: &[&[u8]; LANES]) -> [Digest; LANES] {
        let mut state = [[0u32; LANES]; 8];
        for (i, &h) in H0.iter().enumerate() {
            state[i] = [h; LANES];
        }
        let mut nblocks = [0usize; LANES];
        for l in 0..LANES {
            nblocks[l] = block_count(msgs[l].len());
        }
        let max = nblocks.iter().copied().max().unwrap_or(0);
        for b in 0..max {
            let mut blocks = [[0u8; 64]; LANES];
            let mut active = [false; LANES];
            for l in 0..LANES {
                if b < nblocks[l] {
                    blocks[l] = padded_block(msgs[l], b);
                    active[l] = true;
                }
            }
            compress_lanes(&mut state, &blocks, &active);
        }
        let mut out = [Digest([0u8; 32]); LANES];
        for l in 0..LANES {
            let mut bytes = [0u8; 32];
            for i in 0..8 {
                bytes[i * 4..i * 4 + 4].copy_from_slice(&state[i][l].to_be_bytes());
            }
            out[l] = Digest(bytes);
        }
        out
    }

    /// Like [`sha256_many`], but the messages are `(start, end)` spans
    /// into one backing buffer — callers batching many small inputs can
    /// stage them in an arena and hash without building a slice list.
    /// Results land in `out` (cleared, capacity retained).
    pub fn sha256_spans(bytes: &[u8], spans: &[(u32, u32)], out: &mut Vec<Digest>) {
        out.clear();
        out.reserve(spans.len());
        let span = |&(a, b): &(u32, u32)| -> &[u8] { &bytes[a as usize..b as usize] };
        let mut chunks = spans.chunks_exact(LANES);
        for chunk in &mut chunks {
            let group: [&[u8]; LANES] = std::array::from_fn(|l| span(&chunk[l]));
            out.extend_from_slice(&sha256_x(&group));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut group: [&[u8]; LANES] = [&[]; LANES];
            for (l, sp) in rest.iter().enumerate() {
                group[l] = span(sp);
            }
            out.extend_from_slice(&sha256_x(&group)[..rest.len()]);
        }
    }

    /// Hashes an arbitrary number of messages, full [`LANES`]-wide groups
    /// in lockstep and the remainder padded with empty dummy lanes.
    /// Results land in `out` (cleared, capacity retained).
    pub fn sha256_many(msgs: &[&[u8]], out: &mut Vec<Digest>) {
        out.clear();
        out.reserve(msgs.len());
        let mut chunks = msgs.chunks_exact(LANES);
        for chunk in &mut chunks {
            let group: &[&[u8]; LANES] = chunk.try_into().expect("exact chunk");
            out.extend_from_slice(&sha256_x(group));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut group: [&[u8]; LANES] = [&[]; LANES];
            group[..rest.len()].copy_from_slice(rest);
            out.extend_from_slice(&sha256_x(&group)[..rest.len()]);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::sha256::sha256;

        #[test]
        fn sha256_lanes_match_scalar() {
            // Unequal lengths across every padding boundary, in one group.
            let msgs: Vec<Vec<u8>> = [0usize, 3, 55, 56, 63, 64, 65, 200]
                .iter()
                .map(|&n| (0..n).map(|i| (i * 37 % 251) as u8).collect())
                .collect();
            let refs: [&[u8]; LANES] = std::array::from_fn(|i| msgs[i].as_slice());
            let got = sha256_x(&refs);
            for (m, d) in msgs.iter().zip(&got) {
                assert_eq!(*d, sha256(m), "len {}", m.len());
            }
        }

        #[test]
        fn sha256_many_handles_remainders() {
            for count in [0usize, 1, 7, 8, 9, 17] {
                let msgs: Vec<Vec<u8>> = (0..count)
                    .map(|i| vec![i as u8; (i * 13) % 130])
                    .collect();
                let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
                let mut out = Vec::new();
                sha256_many(&refs, &mut out);
                assert_eq!(out.len(), count);
                for (m, d) in msgs.iter().zip(&out) {
                    assert_eq!(*d, sha256(m), "count {count} len {}", m.len());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: Digest) -> String {
        d.to_string()
    }

    #[test]
    fn nist_vector_empty() {
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_vector_abc() {
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_vector_two_blocks() {
        assert_eq!(
            hex(sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_vector_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_every_split() {
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let expect = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn padding_boundaries() {
        // Message lengths around the 55/56/64-byte padding edge cases.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let msg = vec![0xA5u8; len];
            let d1 = sha256(&msg);
            let mut h = Sha256::new();
            for b in &msg {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn digest_to_u64_takes_leading_bytes() {
        let d = Digest([
            0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        ]);
        assert_eq!(d.to_u64(), 0x0102030405060708);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"route-a"), sha256(b"route-b"));
    }
}
