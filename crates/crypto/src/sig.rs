//! Schnorr-style digital signatures over the simulation group.
//!
//! Stands in for the "traditional Elliptic Curve Digital Signature
//! Algorithm" of IEEE 1609.2 that the paper assumes (Section IV-A). The
//! scheme is textbook Schnorr in the order-`Q` subgroup of `Z_P*`:
//!
//! * keygen: secret `x ∈ [1, Q)`, public `y = g^x mod P`
//! * sign(m): nonce `k ∈ [1, Q)`, `r = g^k`, `e = H(r ‖ m) mod Q`,
//!   `s = (k + x·e) mod Q`; signature is `(e, s)`
//! * verify: `r' = g^s · y^(Q−e)`, accept iff `H(r' ‖ m) mod Q == e`
//!
//! See [`crate::field`] for the security caveat: parameters are
//! simulation-grade by design.

use rand::RngExt;

use crate::field::{mul_mod, mul_mod_p, mul_mod_q, multi_pow_mod, pow_g, pow_mod, FixedBaseTable, P, Q};
use crate::sha256::{lanes, Digest, Sha256};

/// A Schnorr secret key (a scalar modulo [`Q`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecretKey(u64);

/// A Schnorr public key (a group element modulo [`P`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(u64);

impl PublicKey {
    /// Raw group element, used in canonical byte encodings.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a public key from its raw encoding.
    ///
    /// Accepts any residue; verification simply fails for keys that were
    /// never generated honestly.
    pub const fn from_raw(raw: u64) -> Self {
        PublicKey(raw % P)
    }
}

/// A detached signature `(e, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The challenge scalar `e = H(r ‖ m) mod Q`.
    pub e: u64,
    /// The response scalar `s = (k + x·e) mod Q`.
    pub s: u64,
}

/// A secret/public key pair.
///
/// # Examples
///
/// ```
/// use blackdp_crypto::sig::Keypair;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let keys = Keypair::generate(&mut rng);
/// let sig = keys.sign(b"RREP seq=75", &mut rng);
/// assert!(keys.public().verify(b"RREP seq=75", &sig));
/// assert!(!keys.public().verify(b"RREP seq=200", &sig));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Keypair {
    secret: SecretKey,
    public: PublicKey,
}

impl Keypair {
    /// Generates a fresh key pair from `rng`.
    pub fn generate<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        let x = rng.random_range(1..Q);
        Keypair {
            secret: SecretKey(x),
            public: PublicKey(pow_g(x)),
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `message` with a random nonce from `rng`.
    pub fn sign<R: rand::Rng + ?Sized>(&self, message: &[u8], rng: &mut R) -> Signature {
        let k = rng.random_range(1..Q);
        let r = pow_g(k);
        let e = challenge(r, message);
        let s = (k + mul_mod(self.secret.0, e, Q)) % Q;
        Signature { e, s }
    }
}

impl PublicKey {
    /// Verifies `sig` over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        if sig.e >= Q || sig.s >= Q {
            return false;
        }
        // r' = g^s * y^(Q - e): cancels the secret key iff s = k + x*e.
        // The g^s half is fixed-base (precomputed table); y varies per
        // signer, so y^(Q-e) stays on the generic ladder.
        let gs = pow_g(sig.s);
        let y_neg_e = pow_mod(self.0, Q - (sig.e % Q), P);
        let r = mul_mod(gs, y_neg_e, P);
        challenge(r, message) == sig.e
    }
}

/// The Fiat–Shamir challenge `H(r ‖ m) mod Q`.
fn challenge(r: u64, message: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(&r.to_be_bytes());
    h.update(message);
    h.finalize().to_u64() % Q
}

/// The verdict of [`VerifyBatch::verify_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutcome {
    /// Every queued signature verified.
    AllValid,
    /// At least one signature failed; the offenders' queue indices, in
    /// ascending order, found by the bisecting fallback.
    Invalid(Vec<usize>),
}

impl BatchOutcome {
    /// True when no signature failed.
    pub fn all_valid(&self) -> bool {
        matches!(self, BatchOutcome::AllValid)
    }

    /// Whether the item pushed at `index` verified.
    pub fn is_valid(&self, index: usize) -> bool {
        match self {
            BatchOutcome::AllValid => true,
            BatchOutcome::Invalid(bad) => !bad.contains(&index),
        }
    }
}

/// Span of one queued item inside [`VerifyBatch`]'s arena.
#[derive(Debug, Clone, Copy)]
struct BatchItem {
    msg_start: u32,
    msg_len: u32,
    sig: Signature,
    key: PublicKey,
}

/// Small batches gain nothing from lane machinery (dummy hash lanes cost
/// as much as real ones), so they take the scalar path.
const LANE_THRESHOLD: usize = 4;

/// An accumulator that verifies queued `(message, signature, key)`
/// triples together.
///
/// This scheme's `(e, s)` signature form forecloses the classic
/// random-linear-combination trick that *replaces* the per-signature
/// exponentiations with one multi-exponentiation: every commitment
/// `rᵢ = g^sᵢ·yᵢ^(Q−eᵢ)` must be recomputed before it can be hashed, so
/// no exponentiation can be skipped. The batch instead gets its speedup
/// from *how* those per-item computations run — `g^sᵢ` on the fixed-base
/// table, the variable-base halves on [`multi_pow_mod`]'s interleaved
/// compile-time-modulus ladders, and all challenge hashes through the
/// multi-lane SHA-256 — and keeps a random-linear-combination *acceptance
/// fold*: the batch accepts iff `Σ zᵢ·(H(rᵢ‖mᵢ) − eᵢ) ≡ 0 (mod Q)`, one
/// cheap aggregate check whose failure triggers a bisecting fallback over
/// the cached per-item terms to isolate the offenders.
///
/// The coefficients `zᵢ` are drawn from an FNV-1a stream over the batch
/// contents (messages, signatures, keys, commitments) — a pure function
/// of the inputs, never the caller's RNG — so batching cannot perturb a
/// deterministic simulation. A forged batch survives the fold only if
/// its weighted defects cancel modulo the 31-bit `Q` (probability
/// `2⁻³¹` per batch, adversarially groundable only by predicting the
/// FNV stream; acceptable at this crate's simulation-grade parameters,
/// and documented in DESIGN §11).
///
/// Batches below [`LANE_THRESHOLD`] items run the scalar
/// [`PublicKey::verify`] per item, making small flushes exactly the
/// inline code they replace. All scratch buffers are retained across
/// [`VerifyBatch::verify_all`] calls, so steady-state reuse is
/// allocation-free once warm.
///
/// # Examples
///
/// ```
/// use blackdp_crypto::sig::{Keypair, VerifyBatch};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let keys = Keypair::generate(&mut rng);
/// let mut batch = VerifyBatch::new();
/// for i in 0..16u8 {
///     let msg = [b'm', i];
///     let sig = keys.sign(&msg, &mut rng);
///     batch.push(&msg, sig, keys.public());
/// }
/// assert!(batch.verify_all().all_valid());
/// ```
#[derive(Debug, Default)]
pub struct VerifyBatch {
    arena: Vec<u8>,
    items: Vec<BatchItem>,
    // Scratch, retained across flushes.
    bases: Vec<u64>,
    exps: Vec<u64>,
    powers: Vec<u64>,
    chal_arena: Vec<u8>,
    spans: Vec<(u32, u32)>,
    digests: Vec<Digest>,
    terms: Vec<u64>,
}

impl VerifyBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        VerifyBatch::default()
    }

    /// Queues one `(message, signature, key)` triple. The message bytes
    /// are copied into the batch's arena.
    pub fn push(&mut self, message: &[u8], sig: Signature, key: PublicKey) {
        let msg_start = u32::try_from(self.arena.len()).expect("batch arena < 4 GiB");
        let msg_len = u32::try_from(message.len()).expect("message < 4 GiB");
        self.arena.extend_from_slice(message);
        self.items.push(BatchItem {
            msg_start,
            msg_len,
            sig,
            key,
        });
    }

    /// Number of queued triples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drops any queued triples, retaining all capacity.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.items.clear();
    }

    fn message(&self, item: &BatchItem) -> &[u8] {
        &self.arena[item.msg_start as usize..(item.msg_start + item.msg_len) as usize]
    }

    /// Verifies every queued triple and resets the batch for reuse.
    ///
    /// Agrees with running [`PublicKey::verify`] on each triple
    /// individually (up to the documented `2⁻³¹` aggregate-fold
    /// collision, which the differential proptests pin down).
    pub fn verify_all(&mut self) -> BatchOutcome {
        let outcome = if self.items.len() < LANE_THRESHOLD {
            let mut bad = Vec::new();
            for (i, item) in self.items.iter().enumerate() {
                if !item.key.verify(self.message(item), &item.sig) {
                    bad.push(i);
                }
            }
            if bad.is_empty() {
                BatchOutcome::AllValid
            } else {
                BatchOutcome::Invalid(bad)
            }
        } else {
            self.verify_lanes()
        };
        self.clear();
        outcome
    }

    fn verify_lanes(&mut self) -> BatchOutcome {
        let n = self.items.len();
        // Scalars outside [0, Q) fail unconditionally; exclude them from
        // the shared exponentiation work.
        let mut bad: Vec<usize> = Vec::new();
        self.bases.clear();
        self.exps.clear();
        for item in &self.items {
            let in_range = item.sig.e < Q && item.sig.s < Q;
            // Out-of-range lanes exponentiate by 0 (cost: table lookups
            // only) purely to keep indices aligned.
            self.bases.push(item.key.0);
            self.exps
                .push(if in_range { Q - item.sig.e } else { 0 });
        }
        // Shared-signer fast path: an RREP storm or a Hello-probe burst
        // re-verifies one key many times, so a throwaway fixed-base
        // table for that key (built once, then at most 8 window products
        // per exponent, no squarings) beats the generic interleaved
        // ladders. Mixed-signer batches take the lane ladders.
        if self.bases.iter().all(|&b| b == self.bases[0]) {
            let table = FixedBaseTable::new(self.bases[0]);
            table.pow_many(&self.exps, &mut self.powers);
        } else {
            multi_pow_mod(&self.bases, &self.exps, &mut self.powers);
        }

        // Commitments r_i = g^{s_i} · y_i^{Q-e_i}, then all challenge
        // preimages (r ‖ m) through the lane hasher.
        self.chal_arena.clear();
        self.spans.clear();
        for (i, item) in self.items.iter().enumerate() {
            let r = if item.sig.e < Q && item.sig.s < Q {
                mul_mod_p(pow_g(item.sig.s), self.powers[i])
            } else {
                bad.push(i);
                0
            };
            let start = self.chal_arena.len() as u32;
            let msg = item.msg_start as usize..(item.msg_start + item.msg_len) as usize;
            self.chal_arena.extend_from_slice(&r.to_be_bytes());
            self.chal_arena.extend_from_slice(&self.arena[msg]);
            self.spans.push((start, self.chal_arena.len() as u32));
        }
        lanes::sha256_spans(&self.chal_arena, &self.spans, &mut self.digests);

        // Aggregate fold: Σ z_i · (challenge_i − e_i) mod Q, with the
        // coefficients z_i drawn deterministically from the batch itself.
        self.terms.clear();
        let mut fold = 0u64;
        for (i, item) in self.items.iter().enumerate() {
            if item.sig.e >= Q || item.sig.s >= Q {
                self.terms.push(0); // already marked invalid
                continue;
            }
            let c = self.digests[i].to_u64() % Q;
            let defect = (c + Q - item.sig.e) % Q;
            let z = self.coefficient(i);
            let term = mul_mod_q(z, defect);
            self.terms.push(term);
            fold = (fold + term) % Q;
        }
        if fold == 0 && bad.is_empty() {
            return BatchOutcome::AllValid;
        }
        // Bisecting fallback: walk down sub-ranges whose partial fold is
        // nonzero until single offenders are isolated.
        if fold != 0 {
            self.bisect(0, n, &mut bad);
            bad.sort_unstable();
            bad.dedup();
        }
        BatchOutcome::Invalid(bad)
    }

    /// The deterministic fold coefficient for item `i`: an FNV-style
    /// word stream (xor-multiply over 8-byte words — same mixing as
    /// FNV-1a but word-at-a-time, so the serial multiply chain is ~8x
    /// shorter) over the item's full content and position, mapped into
    /// `[1, Q)`.
    fn coefficient(&self, i: usize) -> u64 {
        let item = &self.items[i];
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut eat = |word: u64| {
            h ^= word;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        eat(i as u64);
        eat(item.sig.e);
        eat(item.sig.s);
        eat(item.key.0);
        let msg = self.message(item);
        let mut words = msg.chunks_exact(8);
        for wbytes in &mut words {
            eat(u64::from_le_bytes(wbytes.try_into().expect("8B word")));
        }
        let rest = words.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            eat(u64::from_le_bytes(tail));
        }
        eat(msg.len() as u64);
        h % (Q - 1) + 1
    }

    /// Recursively isolates offenders in `[lo, hi)` whose term-fold is
    /// nonzero. A sub-range folding to zero is pruned (same `2⁻³¹`
    /// cancellation caveat as the top-level accept).
    fn bisect(&self, lo: usize, hi: usize, bad: &mut Vec<usize>) {
        let fold = self.terms[lo..hi]
            .iter()
            .fold(0u64, |acc, &t| (acc + t) % Q);
        if fold == 0 {
            return;
        }
        if hi - lo == 1 {
            bad.push(lo);
            return;
        }
        let mid = lo + (hi - lo) / 2;
        self.bisect(lo, mid, bad);
        self.bisect(mid, hi, bad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut rng = rng();
        let keys = Keypair::generate(&mut rng);
        for msg in [&b"a"[..], b"", b"a longer message with route data"] {
            let sig = keys.sign(msg, &mut rng);
            assert!(keys.public().verify(msg, &sig));
        }
    }

    #[test]
    fn tampered_message_fails() {
        let mut rng = rng();
        let keys = Keypair::generate(&mut rng);
        let sig = keys.sign(b"seq=75 hops=3", &mut rng);
        assert!(!keys.public().verify(b"seq=200 hops=3", &sig));
        assert!(!keys.public().verify(b"seq=75 hops=4", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let mut rng = rng();
        let alice = Keypair::generate(&mut rng);
        let mallory = Keypair::generate(&mut rng);
        let sig = alice.sign(b"hello", &mut rng);
        assert!(!mallory.public().verify(b"hello", &sig));
    }

    #[test]
    fn tampered_signature_fails() {
        let mut rng = rng();
        let keys = Keypair::generate(&mut rng);
        let sig = keys.sign(b"payload", &mut rng);
        let bad_e = Signature {
            e: (sig.e + 1) % Q,
            s: sig.s,
        };
        let bad_s = Signature {
            e: sig.e,
            s: (sig.s + 1) % Q,
        };
        assert!(!keys.public().verify(b"payload", &bad_e));
        assert!(!keys.public().verify(b"payload", &bad_s));
    }

    #[test]
    fn out_of_range_scalars_rejected() {
        let mut rng = rng();
        let keys = Keypair::generate(&mut rng);
        let sig = keys.sign(b"m", &mut rng);
        assert!(!keys.public().verify(b"m", &Signature { e: Q, s: sig.s }));
        assert!(!keys.public().verify(b"m", &Signature { e: sig.e, s: Q }));
    }

    #[test]
    fn signatures_are_randomized() {
        let mut rng = rng();
        let keys = Keypair::generate(&mut rng);
        let s1 = keys.sign(b"m", &mut rng);
        let s2 = keys.sign(b"m", &mut rng);
        assert_ne!(s1, s2, "fresh nonces must differ");
        assert!(keys.public().verify(b"m", &s1));
        assert!(keys.public().verify(b"m", &s2));
    }

    #[test]
    fn batch_accepts_all_valid() {
        let mut rng = rng();
        for n in [0usize, 1, 2, 3, 4, 8, 16, 33] {
            let mut batch = VerifyBatch::new();
            for i in 0..n {
                let keys = Keypair::generate(&mut rng);
                let msg = format!("packet {i} of {n}");
                let sig = keys.sign(msg.as_bytes(), &mut rng);
                batch.push(msg.as_bytes(), sig, keys.public());
            }
            assert_eq!(batch.len(), n);
            assert!(batch.verify_all().all_valid(), "n = {n}");
            assert!(batch.is_empty(), "verify_all resets the batch");
        }
    }

    #[test]
    fn batch_isolates_single_offender() {
        let mut rng = rng();
        for n in [1usize, 4, 16, 31] {
            for corrupt in [0, n / 2, n - 1] {
                let mut batch = VerifyBatch::new();
                for i in 0..n {
                    let keys = Keypair::generate(&mut rng);
                    let msg = [b'p', i as u8];
                    let mut sig = keys.sign(&msg, &mut rng);
                    if i == corrupt {
                        sig.s = (sig.s + 1) % Q;
                    }
                    batch.push(&msg, sig, keys.public());
                }
                let outcome = batch.verify_all();
                assert_eq!(
                    outcome,
                    BatchOutcome::Invalid(vec![corrupt]),
                    "n = {n}, corrupt = {corrupt}"
                );
                assert!(!outcome.is_valid(corrupt));
                assert!(outcome.is_valid((corrupt + 1) % n) || n == 1);
            }
        }
    }

    #[test]
    fn batch_isolates_multiple_offenders() {
        let mut rng = rng();
        let n = 16;
        let corrupt = [2usize, 7, 13];
        let mut batch = VerifyBatch::new();
        for i in 0..n {
            let keys = Keypair::generate(&mut rng);
            let msg = [b'q', i as u8];
            let mut sig = keys.sign(&msg, &mut rng);
            if corrupt.contains(&i) {
                sig.e = (sig.e + 3) % Q;
            }
            batch.push(&msg, sig, keys.public());
        }
        assert_eq!(
            batch.verify_all(),
            BatchOutcome::Invalid(corrupt.to_vec())
        );
    }

    #[test]
    fn batch_rejects_out_of_range_scalars() {
        let mut rng = rng();
        let mut batch = VerifyBatch::new();
        for i in 0..8u8 {
            let keys = Keypair::generate(&mut rng);
            let msg = [b'r', i];
            let mut sig = keys.sign(&msg, &mut rng);
            if i == 3 {
                sig.e = Q; // out of range, must fail without arithmetic
            }
            if i == 6 {
                sig.s = Q + 17;
            }
            batch.push(&msg, sig, keys.public());
        }
        assert_eq!(batch.verify_all(), BatchOutcome::Invalid(vec![3, 6]));
    }

    #[test]
    fn batch_matches_individual_verifies() {
        let mut rng = rng();
        // A mixed bag: valid, tampered message, wrong key, tampered sig.
        let mut batch = VerifyBatch::new();
        let mut expect = Vec::new();
        for i in 0..24u8 {
            let keys = Keypair::generate(&mut rng);
            let other = Keypair::generate(&mut rng);
            let msg = [b's', i, i.wrapping_mul(7)];
            let mut sig = keys.sign(&msg, &mut rng);
            let key = match i % 4 {
                1 => other.public(),
                _ => keys.public(),
            };
            if i % 4 == 2 {
                sig.s = (sig.s + i as u64) % Q;
            }
            expect.push(key.verify(&msg, &sig));
            batch.push(&msg, sig, key);
        }
        let outcome = batch.verify_all();
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(outcome.is_valid(i), e, "item {i}");
        }
    }

    #[test]
    fn batch_reuse_is_clean() {
        let mut rng = rng();
        let keys = Keypair::generate(&mut rng);
        let mut batch = VerifyBatch::new();
        let sig = keys.sign(b"good", &mut rng);
        batch.push(b"good", sig, keys.public());
        let bad = Signature {
            e: (sig.e + 1) % Q,
            s: sig.s,
        };
        batch.push(b"good", bad, keys.public());
        assert_eq!(batch.verify_all(), BatchOutcome::Invalid(vec![1]));
        // Second round on the same accumulator: no state leaks through.
        for i in 0..16u8 {
            let msg = [b'z', i];
            let sig = keys.sign(&msg, &mut rng);
            batch.push(&msg, sig, keys.public());
        }
        assert!(batch.verify_all().all_valid());
    }

    #[test]
    fn public_key_raw_round_trip() {
        let mut rng = rng();
        let keys = Keypair::generate(&mut rng);
        let pk = PublicKey::from_raw(keys.public().raw());
        assert_eq!(pk, keys.public());
    }
}
