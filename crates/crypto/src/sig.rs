//! Schnorr-style digital signatures over the simulation group.
//!
//! Stands in for the "traditional Elliptic Curve Digital Signature
//! Algorithm" of IEEE 1609.2 that the paper assumes (Section IV-A). The
//! scheme is textbook Schnorr in the order-`Q` subgroup of `Z_P*`:
//!
//! * keygen: secret `x ∈ [1, Q)`, public `y = g^x mod P`
//! * sign(m): nonce `k ∈ [1, Q)`, `r = g^k`, `e = H(r ‖ m) mod Q`,
//!   `s = (k + x·e) mod Q`; signature is `(e, s)`
//! * verify: `r' = g^s · y^(Q−e)`, accept iff `H(r' ‖ m) mod Q == e`
//!
//! See [`crate::field`] for the security caveat: parameters are
//! simulation-grade by design.

use rand::RngExt;

use crate::field::{mul_mod, pow_g, pow_mod, P, Q};
use crate::sha256::Sha256;

/// A Schnorr secret key (a scalar modulo [`Q`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecretKey(u64);

/// A Schnorr public key (a group element modulo [`P`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PublicKey(u64);

impl PublicKey {
    /// Raw group element, used in canonical byte encodings.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a public key from its raw encoding.
    ///
    /// Accepts any residue; verification simply fails for keys that were
    /// never generated honestly.
    pub const fn from_raw(raw: u64) -> Self {
        PublicKey(raw % P)
    }
}

/// A detached signature `(e, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The challenge scalar `e = H(r ‖ m) mod Q`.
    pub e: u64,
    /// The response scalar `s = (k + x·e) mod Q`.
    pub s: u64,
}

/// A secret/public key pair.
///
/// # Examples
///
/// ```
/// use blackdp_crypto::sig::Keypair;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let keys = Keypair::generate(&mut rng);
/// let sig = keys.sign(b"RREP seq=75", &mut rng);
/// assert!(keys.public().verify(b"RREP seq=75", &sig));
/// assert!(!keys.public().verify(b"RREP seq=200", &sig));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Keypair {
    secret: SecretKey,
    public: PublicKey,
}

impl Keypair {
    /// Generates a fresh key pair from `rng`.
    pub fn generate<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        let x = rng.random_range(1..Q);
        Keypair {
            secret: SecretKey(x),
            public: PublicKey(pow_g(x)),
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// Signs `message` with a random nonce from `rng`.
    pub fn sign<R: rand::Rng + ?Sized>(&self, message: &[u8], rng: &mut R) -> Signature {
        let k = rng.random_range(1..Q);
        let r = pow_g(k);
        let e = challenge(r, message);
        let s = (k + mul_mod(self.secret.0, e, Q)) % Q;
        Signature { e, s }
    }
}

impl PublicKey {
    /// Verifies `sig` over `message`.
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        if sig.e >= Q || sig.s >= Q {
            return false;
        }
        // r' = g^s * y^(Q - e): cancels the secret key iff s = k + x*e.
        // The g^s half is fixed-base (precomputed table); y varies per
        // signer, so y^(Q-e) stays on the generic ladder.
        let gs = pow_g(sig.s);
        let y_neg_e = pow_mod(self.0, Q - (sig.e % Q), P);
        let r = mul_mod(gs, y_neg_e, P);
        challenge(r, message) == sig.e
    }
}

/// The Fiat–Shamir challenge `H(r ‖ m) mod Q`.
fn challenge(r: u64, message: &[u8]) -> u64 {
    let mut h = Sha256::new();
    h.update(&r.to_be_bytes());
    h.update(message);
    h.finalize().to_u64() % Q
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut rng = rng();
        let keys = Keypair::generate(&mut rng);
        for msg in [&b"a"[..], b"", b"a longer message with route data"] {
            let sig = keys.sign(msg, &mut rng);
            assert!(keys.public().verify(msg, &sig));
        }
    }

    #[test]
    fn tampered_message_fails() {
        let mut rng = rng();
        let keys = Keypair::generate(&mut rng);
        let sig = keys.sign(b"seq=75 hops=3", &mut rng);
        assert!(!keys.public().verify(b"seq=200 hops=3", &sig));
        assert!(!keys.public().verify(b"seq=75 hops=4", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let mut rng = rng();
        let alice = Keypair::generate(&mut rng);
        let mallory = Keypair::generate(&mut rng);
        let sig = alice.sign(b"hello", &mut rng);
        assert!(!mallory.public().verify(b"hello", &sig));
    }

    #[test]
    fn tampered_signature_fails() {
        let mut rng = rng();
        let keys = Keypair::generate(&mut rng);
        let sig = keys.sign(b"payload", &mut rng);
        let bad_e = Signature {
            e: (sig.e + 1) % Q,
            s: sig.s,
        };
        let bad_s = Signature {
            e: sig.e,
            s: (sig.s + 1) % Q,
        };
        assert!(!keys.public().verify(b"payload", &bad_e));
        assert!(!keys.public().verify(b"payload", &bad_s));
    }

    #[test]
    fn out_of_range_scalars_rejected() {
        let mut rng = rng();
        let keys = Keypair::generate(&mut rng);
        let sig = keys.sign(b"m", &mut rng);
        assert!(!keys.public().verify(b"m", &Signature { e: Q, s: sig.s }));
        assert!(!keys.public().verify(b"m", &Signature { e: sig.e, s: Q }));
    }

    #[test]
    fn signatures_are_randomized() {
        let mut rng = rng();
        let keys = Keypair::generate(&mut rng);
        let s1 = keys.sign(b"m", &mut rng);
        let s2 = keys.sign(b"m", &mut rng);
        assert_ne!(s1, s2, "fresh nonces must differ");
        assert!(keys.public().verify(b"m", &s1));
        assert!(keys.public().verify(b"m", &s2));
    }

    #[test]
    fn public_key_raw_round_trip() {
        let mut rng = rng();
        let keys = Keypair::generate(&mut rng);
        let pk = PublicKey::from_raw(keys.public().raw());
        assert_eq!(pk, keys.public());
    }
}
