//! # blackdp-crypto — simulation-grade PKI for the BlackDP reproduction
//!
//! The paper assumes the IEEE 1609.2 security stack: a Trusted Authority
//! root of trust, public/private key pairs, certificates binding temporary
//! pseudonymous identifications to public keys, digital signatures over
//! routing packets ("secure packets"), and certificate revocation. This
//! crate implements all of that **from scratch**:
//!
//! * [`sha256`](mod@sha256) — FIPS 180-4 SHA-256, tested against NIST vectors (the
//!   paper's chosen one-way hash).
//! * [`sig`] — Schnorr-style signatures over a 62-bit prime-field group,
//!   standing in for ECDSA. **Simulation-grade**: structurally faithful,
//!   deliberately small parameters; see the [`field`] module docs.
//! * [`cert`] — certificates (pseudonym, public key, serial, expiry, TA
//!   signature), revocation notices, and the expiring [`RevocationList`]
//!   cluster heads maintain.
//! * [`ta`] — the Trusted Authority: enrollment, pseudonym renewal with
//!   pause semantics, and revocation (Section III-B.2 of the paper).
//!
//! # Examples
//!
//! Signing and verifying a "secure packet" body end to end:
//!
//! ```
//! use blackdp_crypto::{Keypair, LongTermId, TaId, TrustedAuthority};
//! use blackdp_sim::{Duration, Time};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut ta = TrustedAuthority::new(TaId(0), &mut rng);
//!
//! // Vehicle enrolls.
//! let keys = Keypair::generate(&mut rng);
//! let cert = ta.enroll(LongTermId(7), keys.public(), Time::ZERO, Duration::from_secs(600), &mut rng);
//!
//! // Vehicle signs an RREP body; a receiver validates cert + signature.
//! let body = b"RREP dest=7 seq=75 hops=3";
//! let sig = keys.sign(body, &mut rng);
//! cert.verify(ta.public_key(), Time::from_secs(1))?;
//! assert!(cert.public_key.verify(body, &sig));
//! # Ok::<(), blackdp_crypto::CertError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cert;
pub mod field;
pub mod sha256;
pub mod sig;
pub mod ta;

pub use cache::{
    cert_cache_clear, cert_cache_stats, fast_hash_128, fnv1a_128, lookup_signature,
    store_signature, DigestHasherBuilder,
};
pub use cert::{
    CertError, Certificate, LongTermId, PseudonymId, RevocationList, RevocationNotice, TaId,
};
pub use sha256::{sha256, Digest, Sha256};
pub use sig::{Keypair, PublicKey, Signature};
pub use ta::{RenewError, Revocation, RevokeError, TrustedAuthority};
