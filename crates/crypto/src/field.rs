//! Modular arithmetic over the simulation's Schnorr group.
//!
//! The group parameters were generated once (see `DESIGN.md`): a 62-bit
//! prime modulus `P = K·Q + 1` with prime order `Q = 2³¹ − 1` and a
//! generator `G` of the order-`Q` subgroup. All arithmetic fits in `u128`
//! intermediates.
//!
//! **This is simulation-grade cryptography.** A 31-bit group order carries
//! no real-world security; it faithfully reproduces the *protocol shape*
//! (keys, signatures, certificates) of the ECDSA/IEEE 1609.2 machinery the
//! paper assumes, which is what the detection logic depends on.

/// The 62-bit prime modulus `P = K·Q + 1`.
pub const P: u64 = 2_305_843_201_413_480_359;
/// The prime order of the signing subgroup, `Q = 2³¹ − 1`.
pub const Q: u64 = 2_147_483_647;
/// Cofactor `K` with `P = K·Q + 1`.
pub const K: u64 = 1_073_741_914;
/// Generator of the order-`Q` subgroup of `Z_P*` (computed as `2^K mod P`).
pub const G: u64 = 157_608_736_213_706_629;

/// Modular multiplication `a·b mod m` using a 128-bit intermediate.
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation `base^exp mod m` by square-and-multiply.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    if m == 1 {
        return 0;
    }
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
///
/// Uses the known-sufficient witness set for 64-bit integers.
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_parameters_are_consistent() {
        assert!(is_prime_u64(P), "P must be prime");
        assert!(is_prime_u64(Q), "Q must be prime");
        assert_eq!(K as u128 * Q as u128 + 1, P as u128, "P = K*Q + 1");
        assert_eq!(pow_mod(G, Q, P), 1, "G must have order dividing Q");
        assert_ne!(G, 1, "G must not be the identity");
        // Q prime and G != 1 with G^Q = 1 implies ord(G) = Q exactly.
    }

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(pow_mod(2, 10, 1_000_000), 1024);
        assert_eq!(pow_mod(5, 0, 13), 1);
        assert_eq!(pow_mod(7, 1, 13), 7);
        assert_eq!(pow_mod(0, 5, 13), 0);
        assert_eq!(pow_mod(10, 100, 1), 0);
    }

    #[test]
    fn mul_mod_handles_large_operands() {
        let a = P - 1;
        let b = P - 2;
        // (P-1)(P-2) mod P = 2 mod P.
        assert_eq!(mul_mod(a, b, P), 2);
    }

    #[test]
    fn fermat_little_theorem_holds() {
        for a in [2u64, 3, 12345, 987654321] {
            assert_eq!(pow_mod(a, P - 1, P), 1);
        }
    }

    #[test]
    fn miller_rabin_agrees_with_trial_division() {
        fn naive(n: u64) -> bool {
            if n < 2 {
                return false;
            }
            let mut d = 2;
            while d * d <= n {
                if n.is_multiple_of(d) {
                    return false;
                }
                d += 1;
            }
            true
        }
        for n in 0..2000u64 {
            assert_eq!(is_prime_u64(n), naive(n), "n = {n}");
        }
        // Carmichael numbers must be rejected.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_prime_u64(c), "{c} is Carmichael, not prime");
        }
    }
}
