//! Modular arithmetic over the simulation's Schnorr group.
//!
//! The group parameters were generated once (see `DESIGN.md`): a 62-bit
//! prime modulus `P = K·Q + 1` with prime order `Q = 2³¹ − 1` and a
//! generator `G` of the order-`Q` subgroup. All arithmetic fits in `u128`
//! intermediates.
//!
//! **This is simulation-grade cryptography.** A 31-bit group order carries
//! no real-world security; it faithfully reproduces the *protocol shape*
//! (keys, signatures, certificates) of the ECDSA/IEEE 1609.2 machinery the
//! paper assumes, which is what the detection logic depends on.

/// The 62-bit prime modulus `P = K·Q + 1`.
pub const P: u64 = 2_305_843_201_413_480_359;
/// The prime order of the signing subgroup, `Q = 2³¹ − 1`.
pub const Q: u64 = 2_147_483_647;
/// Cofactor `K` with `P = K·Q + 1`.
pub const K: u64 = 1_073_741_914;
/// Generator of the order-`Q` subgroup of `Z_P*` (computed as `2^K mod P`).
pub const G: u64 = 157_608_736_213_706_629;

/// Modular multiplication `a·b mod m` using a 128-bit intermediate.
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

// --- Montgomery arithmetic modulo P -------------------------------------
//
// The generic `mul_mod` pays for a 128-bit division on every product; a
// constant modulus does not help, because LLVM lowers `u128 % const` to a
// `__umodti3` library call rather than strength-reducing it. Montgomery
// REDC replaces the division with three multiplications: with `R = 2⁶⁴`,
// `redc(t) = (t + (t·P' mod R)·P) / R` computes `t·R⁻¹ mod P` exactly,
// so products of Montgomery-form operands (`x·R mod P`) stay in form.
// Every routine below converts in and out at the edges and is
// bit-identical to its division-based counterpart.

/// `-P⁻¹ mod 2⁶⁴`, by Newton's iteration (each step doubles the valid
/// low bits; six steps cover 64 from the 5-bit seed `P mod 32`).
const MONT_NP: u64 = {
    let mut inv = 1u64;
    let mut i = 0;
    while i < 6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(P.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
};

/// `R² mod P`, the to-Montgomery conversion factor.
const MONT_R2: u64 = {
    let r = (1u128 << 64) % P as u128;
    ((r * r) % P as u128) as u64
};

/// `1` in Montgomery form (`R mod P`).
const MONT_ONE: u64 = ((1u128 << 64) % P as u128) as u64;

/// Montgomery product: for `a, b < P`, returns `a·b·R⁻¹ mod P`.
#[inline]
fn mont_mul(a: u64, b: u64) -> u64 {
    let t = a as u128 * b as u128;
    let m = (t as u64).wrapping_mul(MONT_NP);
    // t + m·P < P² + 2⁶⁴·P < 2¹²⁷: no overflow, and the sum's low 64
    // bits are zero by construction of m.
    let u = ((t + m as u128 * P as u128) >> 64) as u64;
    if u >= P {
        u - P
    } else {
        u
    }
}

/// Converts `x` into Montgomery form (`x·R mod P`).
#[inline]
fn to_mont(x: u64) -> u64 {
    mont_mul(x, MONT_R2)
}

/// Converts a Montgomery-form value back to a plain residue.
#[inline]
fn from_mont(x: u64) -> u64 {
    mont_mul(x, 1)
}

/// Modular multiplication `a·b mod P` via Montgomery REDC — bit-identical
/// to `mul_mod(a, b, P)` and several times faster (no 128-bit division).
#[inline]
pub fn mul_mod_p(a: u64, b: u64) -> u64 {
    mont_mul(to_mont(a % P), b % P)
}

/// Modular multiplication `a·b mod Q` exploiting the Mersenne shape of
/// `Q = 2³¹ − 1`: reduction is two shift-and-add folds (`2³¹ ≡ 1`), no
/// division at all. Bit-identical to `mul_mod(a % Q, b % Q, Q)`.
#[inline]
pub fn mul_mod_q(a: u64, b: u64) -> u64 {
    let t = (a % Q) * (b % Q); // < 2⁶², fits u64
    let folded = (t & Q) + (t >> 31); // < 2³²
    let folded = (folded & Q) + (folded >> 31); // ≤ Q + 1
    if folded >= Q {
        folded - Q
    } else {
        folded
    }
}

/// Modular exponentiation `base^exp mod m` by square-and-multiply.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    if m == 1 {
        return 0;
    }
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Number of 4-bit windows needed to cover every exponent below `2³²`
/// (signing scalars are all below `Q < 2³¹`).
const WINDOWS: usize = 8;

/// Fixed-base precomputation table: `table[w][d] = base^(d · 16^w) mod P`.
///
/// With the table, `base^e` for a 32-bit exponent costs at most 7 modular
/// multiplications (one per nonzero window) instead of the ~31 squarings
/// plus ~15 multiplications of generic square-and-multiply — the classic
/// fixed-base windowing trade. The process-wide [`G`] table serves every
/// keygen, signature, and the `g^s` half of every verification; batch
/// verification builds throwaway tables for repeated signer keys (an RREP
/// storm or Hello burst re-verifies one signer many times), amortized by
/// [`FixedBaseTable::pow_many`].
pub struct FixedBaseTable {
    table: [[u64; 16]; WINDOWS],
}

impl FixedBaseTable {
    /// Builds the window table for `base`. Entries are stored in
    /// Montgomery form so the window products run on [`mont_mul`]; only
    /// the final accumulator is converted back.
    pub fn new(base: u64) -> Self {
        let mut table = [[MONT_ONE; 16]; WINDOWS];
        // `b` walks base^(16^w) (in Montgomery form) as w advances.
        let mut b = to_mont(base % P);
        for row in table.iter_mut() {
            let mut acc = MONT_ONE;
            for entry in row.iter_mut() {
                *entry = acc;
                acc = mont_mul(acc, b);
            }
            for _ in 0..4 {
                b = mont_mul(b, b);
            }
        }
        FixedBaseTable { table }
    }

    /// `base^exp mod P` for `exp < 2³²`: at most one table multiply per
    /// nonzero 4-bit window.
    pub fn pow(&self, mut exp: u64) -> u64 {
        debug_assert!(exp < 1 << (4 * WINDOWS));
        let mut acc = MONT_ONE;
        let mut w = 0;
        while exp > 0 {
            let digit = (exp & 0xF) as usize;
            if digit != 0 {
                acc = mont_mul(acc, self.table[w][digit]);
            }
            exp >>= 4;
            w += 1;
        }
        from_mont(acc)
    }

    /// Shared-base batch exponentiation: `out[i] = base^exps[i] mod P`.
    ///
    /// Amortizes the table across the whole batch — each exponent costs
    /// at most [`WINDOWS`] table multiplies (no squarings at all), and
    /// four lookup chains run interleaved for instruction-level
    /// parallelism. Exponents must be below `2³²` (callers pre-screen);
    /// larger ones fall back to the generic ladder. `out` is cleared and
    /// refilled, retaining capacity.
    pub fn pow_many(&self, exps: &[u64], out: &mut Vec<u64>) {
        out.clear();
        out.resize(exps.len(), 0);
        let mut i = 0;
        while i + EXP_LANES <= exps.len() {
            let [e0, e1, e2, e3]: [u64; EXP_LANES] =
                exps[i..i + EXP_LANES].try_into().expect("lane slice");
            if e0 | e1 | e2 | e3 >= 1 << (4 * WINDOWS) {
                break;
            }
            let (mut a0, mut a1, mut a2, mut a3) = (MONT_ONE, MONT_ONE, MONT_ONE, MONT_ONE);
            for (w, row) in self.table.iter().enumerate() {
                // Branchless: a zero digit multiplies by row[0] = 1·R.
                a0 = mont_mul(a0, row[((e0 >> (4 * w)) & 0xF) as usize]);
                a1 = mont_mul(a1, row[((e1 >> (4 * w)) & 0xF) as usize]);
                a2 = mont_mul(a2, row[((e2 >> (4 * w)) & 0xF) as usize]);
                a3 = mont_mul(a3, row[((e3 >> (4 * w)) & 0xF) as usize]);
            }
            out[i] = from_mont(a0);
            out[i + 1] = from_mont(a1);
            out[i + 2] = from_mont(a2);
            out[i + 3] = from_mont(a3);
            i += EXP_LANES;
        }
        for j in i..exps.len() {
            out[j] = if exps[j] < 1 << (4 * WINDOWS) {
                self.pow(exps[j])
            } else {
                let base = from_mont(self.table[0][1]);
                pow_mod(base, exps[j], P)
            };
        }
    }
}

/// The lazily built process-wide table; `OnceLock` keeps initialization
/// race-free when scenario sweeps verify from several worker threads.
static G_TABLE: std::sync::OnceLock<FixedBaseTable> = std::sync::OnceLock::new();

/// Fixed-base exponentiation `G^exp mod P` via the precomputation table.
///
/// Bit-identical to `pow_mod(G, exp, P)` for every exponent; exponents at
/// or above `2³²` (never produced by the signing code, whose scalars are
/// reduced modulo [`Q`]) fall back to the generic routine.
pub fn pow_g(exp: u64) -> u64 {
    if exp >= 1 << (4 * WINDOWS) {
        return pow_mod(G, exp, P);
    }
    G_TABLE.get_or_init(|| FixedBaseTable::new(G)).pow(exp)
}

/// Lane width of [`multi_pow_mod`]'s interleaved ladders. Four ladders in
/// flight are enough to hide the `u128` multiply latency on one core; the
/// work itself has no SIMD form (128-bit products), so the win is
/// instruction-level parallelism on top of the division-free Montgomery
/// reduction.
pub const EXP_LANES: usize = 4;

/// Batch exponentiation `out[i] = bases[i]^exps[i] mod P`.
///
/// Runs [`EXP_LANES`] branchless 4-bit fixed-window ladders in lockstep:
/// each lane squares and multiplies at the same window position, so the
/// serially dependent reduction chains of the lanes overlap instead of
/// stalling one after another. The whole ladder runs in the Montgomery
/// domain — conversion happens once per base at the table build and once
/// per result at the end — so every step is a [`mont_mul`] instead of a
/// 128-bit division. Bit-identical to `pow_mod(base, exp, P)` for every
/// input; exponents at or above `2³²` (never produced by the signing
/// code) and the sub-lane remainder fall back to the generic ladder.
/// `out` is cleared and refilled, retaining its capacity so a
/// caller-held buffer makes steady-state batches allocation-free.
pub fn multi_pow_mod(bases: &[u64], exps: &[u64], out: &mut Vec<u64>) {
    assert_eq!(bases.len(), exps.len(), "one exponent per base");
    out.clear();
    out.resize(bases.len(), 0);
    let mut i = 0;
    while i + EXP_LANES <= bases.len() {
        let lane_exps: [u64; EXP_LANES] = exps[i..i + EXP_LANES].try_into().expect("lane slice");
        if lane_exps.iter().any(|&e| e >= 1 << (4 * WINDOWS)) {
            break; // oversized exponent: finish on the generic ladder
        }
        // Per-lane power table in Montgomery form:
        // table[d][l] = bases[i+l]^d · R mod P.
        //
        // Lane state lives in named scalars, not an array: the 128-bit
        // Montgomery products have no vector form, and keeping the
        // accumulators as distinct SSA values stops the SLP vectorizer
        // from packing them into XMM registers (cross-domain `vmovq`
        // shuffles that serialize the ladder on AVX targets). The win
        // here is instruction-level parallelism across four independent
        // multiply chains.
        let mut table = [[MONT_ONE; EXP_LANES]; 16];
        let b0 = to_mont(bases[i] % P);
        let b1 = to_mont(bases[i + 1] % P);
        let b2 = to_mont(bases[i + 2] % P);
        let b3 = to_mont(bases[i + 3] % P);
        table[1] = [b0, b1, b2, b3];
        for d in 2..16 {
            table[d] = [
                mont_mul(table[d - 1][0], b0),
                mont_mul(table[d - 1][1], b1),
                mont_mul(table[d - 1][2], b2),
                mont_mul(table[d - 1][3], b3),
            ];
        }
        let [e0, e1, e2, e3] = lane_exps;
        let (mut a0, mut a1, mut a2, mut a3) = (MONT_ONE, MONT_ONE, MONT_ONE, MONT_ONE);
        for w in (0..WINDOWS).rev() {
            if w != WINDOWS - 1 {
                for _ in 0..4 {
                    a0 = mont_mul(a0, a0);
                    a1 = mont_mul(a1, a1);
                    a2 = mont_mul(a2, a2);
                    a3 = mont_mul(a3, a3);
                }
            }
            // Branchless: a zero digit multiplies by table[0] = 1·R.
            a0 = mont_mul(a0, table[((e0 >> (4 * w)) & 0xF) as usize][0]);
            a1 = mont_mul(a1, table[((e1 >> (4 * w)) & 0xF) as usize][1]);
            a2 = mont_mul(a2, table[((e2 >> (4 * w)) & 0xF) as usize][2]);
            a3 = mont_mul(a3, table[((e3 >> (4 * w)) & 0xF) as usize][3]);
        }
        out[i] = from_mont(a0);
        out[i + 1] = from_mont(a1);
        out[i + 2] = from_mont(a2);
        out[i + 3] = from_mont(a3);
        i += EXP_LANES;
    }
    for j in i..bases.len() {
        out[j] = pow_mod(bases[j], exps[j], P);
    }
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
///
/// Uses the known-sufficient witness set for 64-bit integers.
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_parameters_are_consistent() {
        assert!(is_prime_u64(P), "P must be prime");
        assert!(is_prime_u64(Q), "Q must be prime");
        assert_eq!(K as u128 * Q as u128 + 1, P as u128, "P = K*Q + 1");
        assert_eq!(pow_mod(G, Q, P), 1, "G must have order dividing Q");
        assert_ne!(G, 1, "G must not be the identity");
        // Q prime and G != 1 with G^Q = 1 implies ord(G) = Q exactly.
    }

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(pow_mod(2, 10, 1_000_000), 1024);
        assert_eq!(pow_mod(5, 0, 13), 1);
        assert_eq!(pow_mod(7, 1, 13), 7);
        assert_eq!(pow_mod(0, 5, 13), 0);
        assert_eq!(pow_mod(10, 100, 1), 0);
    }

    #[test]
    fn mul_mod_handles_large_operands() {
        let a = P - 1;
        let b = P - 2;
        // (P-1)(P-2) mod P = 2 mod P.
        assert_eq!(mul_mod(a, b, P), 2);
    }

    #[test]
    fn pow_g_matches_pow_mod() {
        for exp in [0u64, 1, 2, 15, 16, 17, 255, 256, Q - 1, Q, Q + 1] {
            assert_eq!(pow_g(exp), pow_mod(G, exp, P), "exp = {exp}");
        }
        // A spread of scalars across the full signing range.
        let mut x = 0x1234_5678u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let exp = x % Q;
            assert_eq!(pow_g(exp), pow_mod(G, exp, P), "exp = {exp}");
        }
        // Above the table's 32-bit window coverage: the fallback path.
        for exp in [1u64 << 32, (1 << 32) + 12345, u64::MAX] {
            assert_eq!(pow_g(exp), pow_mod(G, exp, P), "exp = {exp}");
        }
    }

    #[test]
    fn mul_mod_p_matches_generic() {
        let mut x = 0x9E37_79B9u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let a = x % P;
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let b = x % P;
            assert_eq!(mul_mod_p(a, b), mul_mod(a, b, P));
        }
        assert_eq!(mul_mod_p(P - 1, P - 2), 2);
        assert_eq!(mul_mod_p(0, 123), 0);
    }

    #[test]
    fn multi_pow_mod_matches_pow_mod() {
        let mut bases = Vec::new();
        let mut exps = Vec::new();
        let mut x = 0xDEAD_BEEFu64;
        for _ in 0..23 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            bases.push(x % P);
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            exps.push(x % Q);
        }
        // Edge exponents and bases, including the generic-ladder fallback.
        bases.extend_from_slice(&[G, 0, 1, P - 1, G]);
        exps.extend_from_slice(&[0, 5, Q, 2, u64::MAX]);
        let mut out = Vec::new();
        multi_pow_mod(&bases, &exps, &mut out);
        assert_eq!(out.len(), bases.len());
        for ((&b, &e), &got) in bases.iter().zip(&exps).zip(&out) {
            assert_eq!(got, pow_mod(b, e, P), "base {b} exp {e}");
        }
        // Reused buffer: same answers, capacity retained.
        let cap = out.capacity();
        multi_pow_mod(&bases[..8], &exps[..8], &mut out);
        assert_eq!(out.len(), 8);
        assert_eq!(out.capacity(), cap);
        for ((&b, &e), &got) in bases[..8].iter().zip(&exps[..8]).zip(&out) {
            assert_eq!(got, pow_mod(b, e, P));
        }
    }

    #[test]
    fn fermat_little_theorem_holds() {
        for a in [2u64, 3, 12345, 987654321] {
            assert_eq!(pow_mod(a, P - 1, P), 1);
        }
    }

    #[test]
    fn miller_rabin_agrees_with_trial_division() {
        fn naive(n: u64) -> bool {
            if n < 2 {
                return false;
            }
            let mut d = 2;
            while d * d <= n {
                if n.is_multiple_of(d) {
                    return false;
                }
                d += 1;
            }
            true
        }
        for n in 0..2000u64 {
            assert_eq!(is_prime_u64(n), naive(n), "n = {n}");
        }
        // Carmichael numbers must be rejected.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_prime_u64(c), "{c} is Carmichael, not prime");
        }
    }
}
