//! Modular arithmetic over the simulation's Schnorr group.
//!
//! The group parameters were generated once (see `DESIGN.md`): a 62-bit
//! prime modulus `P = K·Q + 1` with prime order `Q = 2³¹ − 1` and a
//! generator `G` of the order-`Q` subgroup. All arithmetic fits in `u128`
//! intermediates.
//!
//! **This is simulation-grade cryptography.** A 31-bit group order carries
//! no real-world security; it faithfully reproduces the *protocol shape*
//! (keys, signatures, certificates) of the ECDSA/IEEE 1609.2 machinery the
//! paper assumes, which is what the detection logic depends on.

/// The 62-bit prime modulus `P = K·Q + 1`.
pub const P: u64 = 2_305_843_201_413_480_359;
/// The prime order of the signing subgroup, `Q = 2³¹ − 1`.
pub const Q: u64 = 2_147_483_647;
/// Cofactor `K` with `P = K·Q + 1`.
pub const K: u64 = 1_073_741_914;
/// Generator of the order-`Q` subgroup of `Z_P*` (computed as `2^K mod P`).
pub const G: u64 = 157_608_736_213_706_629;

/// Modular multiplication `a·b mod m` using a 128-bit intermediate.
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// Modular exponentiation `base^exp mod m` by square-and-multiply.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn pow_mod(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m != 0, "modulus must be nonzero");
    if m == 1 {
        return 0;
    }
    let mut acc: u64 = 1;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Number of 4-bit windows needed to cover every exponent below `2³²`
/// (signing scalars are all below `Q < 2³¹`).
const WINDOWS: usize = 8;

/// Fixed-base precomputation table for the generator [`G`]:
/// `table[w][d] = G^(d · 16^w) mod P`.
///
/// With the table, `G^e` for a 32-bit exponent costs at most 7 modular
/// multiplications (one per nonzero window) instead of the ~31 squarings
/// plus ~15 multiplications of generic square-and-multiply — the classic
/// fixed-base windowing trade, profitable because every keygen, signature,
/// and the `g^s` half of every verification uses the same base.
struct FixedBaseTable {
    table: [[u64; 16]; WINDOWS],
}

impl FixedBaseTable {
    fn build() -> Self {
        let mut table = [[1u64; 16]; WINDOWS];
        // `base` walks G^(16^w) as w advances.
        let mut base = G;
        for row in table.iter_mut() {
            let mut acc = 1u64;
            for entry in row.iter_mut() {
                *entry = acc;
                acc = mul_mod(acc, base, P);
            }
            for _ in 0..4 {
                base = mul_mod(base, base, P);
            }
        }
        FixedBaseTable { table }
    }

    fn pow(&self, mut exp: u64) -> u64 {
        debug_assert!(exp < 1 << (4 * WINDOWS));
        let mut acc = 1u64;
        let mut w = 0;
        while exp > 0 {
            let digit = (exp & 0xF) as usize;
            if digit != 0 {
                acc = mul_mod(acc, self.table[w][digit], P);
            }
            exp >>= 4;
            w += 1;
        }
        acc
    }
}

/// The lazily built process-wide table; `OnceLock` keeps initialization
/// race-free when scenario sweeps verify from several worker threads.
static G_TABLE: std::sync::OnceLock<FixedBaseTable> = std::sync::OnceLock::new();

/// Fixed-base exponentiation `G^exp mod P` via the precomputation table.
///
/// Bit-identical to `pow_mod(G, exp, P)` for every exponent; exponents at
/// or above `2³²` (never produced by the signing code, whose scalars are
/// reduced modulo [`Q`]) fall back to the generic routine.
pub fn pow_g(exp: u64) -> u64 {
    if exp >= 1 << (4 * WINDOWS) {
        return pow_mod(G, exp, P);
    }
    G_TABLE.get_or_init(FixedBaseTable::build).pow(exp)
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
///
/// Uses the known-sufficient witness set for 64-bit integers.
pub fn is_prime_u64(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_parameters_are_consistent() {
        assert!(is_prime_u64(P), "P must be prime");
        assert!(is_prime_u64(Q), "Q must be prime");
        assert_eq!(K as u128 * Q as u128 + 1, P as u128, "P = K*Q + 1");
        assert_eq!(pow_mod(G, Q, P), 1, "G must have order dividing Q");
        assert_ne!(G, 1, "G must not be the identity");
        // Q prime and G != 1 with G^Q = 1 implies ord(G) = Q exactly.
    }

    #[test]
    fn pow_mod_small_cases() {
        assert_eq!(pow_mod(2, 10, 1_000_000), 1024);
        assert_eq!(pow_mod(5, 0, 13), 1);
        assert_eq!(pow_mod(7, 1, 13), 7);
        assert_eq!(pow_mod(0, 5, 13), 0);
        assert_eq!(pow_mod(10, 100, 1), 0);
    }

    #[test]
    fn mul_mod_handles_large_operands() {
        let a = P - 1;
        let b = P - 2;
        // (P-1)(P-2) mod P = 2 mod P.
        assert_eq!(mul_mod(a, b, P), 2);
    }

    #[test]
    fn pow_g_matches_pow_mod() {
        for exp in [0u64, 1, 2, 15, 16, 17, 255, 256, Q - 1, Q, Q + 1] {
            assert_eq!(pow_g(exp), pow_mod(G, exp, P), "exp = {exp}");
        }
        // A spread of scalars across the full signing range.
        let mut x = 0x1234_5678u64;
        for _ in 0..200 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let exp = x % Q;
            assert_eq!(pow_g(exp), pow_mod(G, exp, P), "exp = {exp}");
        }
        // Above the table's 32-bit window coverage: the fallback path.
        for exp in [1u64 << 32, (1 << 32) + 12345, u64::MAX] {
            assert_eq!(pow_g(exp), pow_mod(G, exp, P), "exp = {exp}");
        }
    }

    #[test]
    fn fermat_little_theorem_holds() {
        for a in [2u64, 3, 12345, 987654321] {
            assert_eq!(pow_mod(a, P - 1, P), 1);
        }
    }

    #[test]
    fn miller_rabin_agrees_with_trial_division() {
        fn naive(n: u64) -> bool {
            if n < 2 {
                return false;
            }
            let mut d = 2;
            while d * d <= n {
                if n.is_multiple_of(d) {
                    return false;
                }
                d += 1;
            }
            true
        }
        for n in 0..2000u64 {
            assert_eq!(is_prime_u64(n), naive(n), "n = {n}");
        }
        // Carmichael numbers must be rejected.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_prime_u64(c), "{c} is Carmichael, not prime");
        }
    }
}
