//! Property tests on certificate lifecycle edges: exact-tick window
//! boundaries, pseudonym hygiene across revocation, and coherence of the
//! thread-local signature cache — the warm-cache fast path must be
//! observationally identical to a cold verification and must never let a
//! revoked certificate outlive its revocation.

use blackdp_crypto::{
    cert_cache_clear, cert_cache_stats, Keypair, LongTermId, PseudonymId, RevocationList, TaId,
    TrustedAuthority,
};
use blackdp_sim::{Duration, Time};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn authority(seed: u64) -> (StdRng, TrustedAuthority) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ta = TrustedAuthority::new(TaId(1), &mut rng);
    (rng, ta)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The validity window is `[issued, expires)`: valid on the very first
    /// tick, invalid exactly at the expiry tick and ever after, not yet
    /// valid one tick before issue.
    #[test]
    fn window_boundaries_are_exact(
        seed in any::<u64>(),
        issue_us in 1u64..1_000_000,
        validity_us in 1u64..1_000_000,
    ) {
        let (mut rng, mut ta) = authority(seed);
        let keys = Keypair::generate(&mut rng);
        let issued = Time::ZERO + Duration::from_micros(issue_us);
        let cert = ta.enroll(
            LongTermId(7),
            keys.public(),
            issued,
            Duration::from_micros(validity_us),
            &mut rng,
        );
        let expires = cert.expires;
        let key = ta.public_key();

        prop_assert!(cert.verify(key, issued).is_ok(), "invalid at issue tick");
        prop_assert!(
            cert.verify(key, Time::from_micros(expires.as_micros() - 1)).is_ok(),
            "invalid on the last tick of the window"
        );
        prop_assert!(
            cert.verify(key, expires).is_err(),
            "still valid exactly at expiry (window must be exclusive)"
        );
        prop_assert!(cert.verify(key, expires + Duration::from_micros(1)).is_err());
        prop_assert!(
            cert.verify(key, Time::from_micros(issued.as_micros() - 1)).is_err(),
            "valid before issue"
        );
    }

    /// Revoking a pseudonym pauses its owner everywhere: renewal under the
    /// revoked pseudonym fails, and the pseudonym itself is never reissued
    /// to a later enrollee — a revoked identity cannot come back.
    #[test]
    fn revoked_pseudonym_is_never_reused(
        seed in any::<u64>(),
        later_enrollments in 1usize..12,
    ) {
        let (mut rng, mut ta) = authority(seed);
        let keys = Keypair::generate(&mut rng);
        let validity = Duration::from_secs(600);
        let cert = ta.enroll(LongTermId(1), keys.public(), Time::ZERO, validity, &mut rng);
        let revoked = cert.pseudonym;
        ta.revoke(revoked).expect("issued pseudonym revokes");

        // The owner is starved of identities.
        let fresh = Keypair::generate(&mut rng);
        prop_assert!(
            ta.renew(revoked, fresh.public(), Time::ZERO, validity, &mut rng).is_err(),
            "renewal under a revoked pseudonym succeeded"
        );

        // No later certificate resurrects the revoked pseudonym.
        for i in 0..later_enrollments {
            let k = Keypair::generate(&mut rng);
            let c = ta.enroll(
                LongTermId(100 + i as u64),
                k.public(),
                Time::ZERO,
                validity,
                &mut rng,
            );
            prop_assert_ne!(c.pseudonym, revoked, "pseudonym reused after revocation");
            prop_assert!(!ta.is_paused(LongTermId(100 + i as u64)));
        }
    }

    /// The memoized signature cache is observationally transparent: for a
    /// random sequence of query times (hitting warm and cold paths in every
    /// order), the cached verdict equals what the validity window dictates.
    #[test]
    fn warm_cache_equals_cold_verification(
        seed in any::<u64>(),
        times_us in prop::collection::vec(0u64..4_000_000, 1..24),
    ) {
        cert_cache_clear();
        let (mut rng, mut ta) = authority(seed);
        let keys = Keypair::generate(&mut rng);
        let issued = Time::ZERO + Duration::from_micros(1_000_000);
        let cert = ta.enroll(
            LongTermId(3),
            keys.public(),
            issued,
            Duration::from_micros(2_000_000),
            &mut rng,
        );
        let key = ta.public_key();
        for &t_us in &times_us {
            let now = Time::ZERO + Duration::from_micros(t_us);
            let expect_valid = now >= cert.issued && now < cert.expires;
            prop_assert_eq!(
                cert.verify(key, now).is_ok(),
                expect_valid,
                "cached verdict disagrees with the window at t={}us",
                t_us
            );
        }
        let (hits, misses) = cert_cache_stats();
        prop_assert!(hits + misses > 0, "cache never consulted");
    }

    /// Revocation dominates the warm cache: even after the signature check
    /// is cached as good, the revocation list still rejects the cert, and
    /// purging honors the notice's own expiry.
    #[test]
    fn warm_cache_does_not_outlive_revocation(seed in any::<u64>()) {
        cert_cache_clear();
        let (mut rng, mut ta) = authority(seed);
        let keys = Keypair::generate(&mut rng);
        let validity = Duration::from_secs(60);
        let cert = ta.enroll(LongTermId(9), keys.public(), Time::ZERO, validity, &mut rng);
        let key = ta.public_key();

        // Warm the cache with a successful verification.
        prop_assert!(cert.verify(key, Time::ZERO).is_ok());
        let (_, misses_before) = cert_cache_stats();

        // Revoke and distribute the notice.
        let revocation = ta.revoke(cert.pseudonym).expect("revoke");
        let mut blacklist = RevocationList::default();
        blacklist.insert(revocation.notice);

        // The cached signature verdict is still (correctly) "good"…
        prop_assert!(cert.verify(key, Time::ZERO).is_ok());
        let (_, misses_after) = cert_cache_stats();
        prop_assert_eq!(misses_before, misses_after, "revocation should not need re-verification");

        // …but acceptance must consult the blacklist, which rejects it for
        // as long as the certificate could possibly be alive.
        prop_assert!(blacklist.is_revoked(cert.pseudonym));
        prop_assert!(blacklist.is_serial_revoked(cert.serial));

        // Once the revoked cert would have expired anyway, the notice can
        // be purged — and only then does the pseudonym leave the list.
        blacklist.purge_expired(Time::from_micros(cert.expires.as_micros() - 1));
        prop_assert!(blacklist.is_revoked(cert.pseudonym), "purged while cert alive");
        blacklist.purge_expired(cert.expires);
        prop_assert!(!blacklist.is_revoked(cert.pseudonym));
        prop_assert!(!blacklist.is_revoked(PseudonymId(0xDEAD)));
    }
}
