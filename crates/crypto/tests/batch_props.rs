//! Differential property tests for the batched fast paths.
//!
//! Both accelerated primitives ship with a scalar reference that stays in
//! the tree precisely so these tests can hold them together: the batch
//! Schnorr verifier must agree with [`PublicKey::verify`] on every item of
//! every batch (including which items a corrupted batch bisects down to),
//! and the multi-lane SHA-256 must be bit-identical to the streaming
//! scalar [`sha256`] for any mix of message lengths and lane occupancies.

use blackdp_crypto::sha256::{lanes, sha256, Digest};
use blackdp_crypto::sig::{Keypair, Signature, VerifyBatch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How a batch item gets sabotaged, if at all.
#[derive(Debug, Clone, Copy)]
enum Tamper {
    None,
    FlipE,
    FlipS,
    Message,
    WrongKey,
}

fn tamper_strategy() -> impl Strategy<Value = Tamper> {
    // Repeated arms stand in for weights (the oneof is uniform): valid
    // items dominate, as in real traffic.
    prop_oneof![
        Just(Tamper::None),
        Just(Tamper::None),
        Just(Tamper::None),
        Just(Tamper::None),
        Just(Tamper::FlipE),
        Just(Tamper::FlipS),
        Just(Tamper::Message),
        Just(Tamper::WrongKey),
    ]
}

/// Message lengths biased toward SHA-256 block boundaries (55/56/64 and
/// the two-block equivalents) where padding bugs live.
fn len_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![0usize..10, 50usize..71, 114usize..135, 0usize..300]
}

/// Deterministic pseudo-random message bytes for the given lengths
/// (an xorshift keeps content varied without a byte-level strategy).
fn fill_messages(seed: u64, lens: &[usize]) -> Vec<Vec<u8>> {
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x as u8
    };
    lens.iter()
        .map(|&n| (0..n).map(|_| next()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any batch — any size, any tamper pattern, shared or distinct
    /// signers — `VerifyBatch` must classify every item exactly as the
    /// scalar `PublicKey::verify` does. This exercises the random-linear-
    /// combination accept path (all valid), the bisecting reject path
    /// (any invalid), and the shared-signer fixed-base fast path.
    #[test]
    fn batch_classifies_items_like_scalar_verify(
        seed in any::<u64>(),
        tampers in proptest::collection::vec(tamper_strategy(), 0..40),
        shared_signer in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shared = Keypair::generate(&mut rng);
        let decoy = Keypair::generate(&mut rng);
        let mut batch = VerifyBatch::new();
        let mut items = Vec::new();
        for (i, &tamper) in tampers.iter().enumerate() {
            let keys = if shared_signer {
                shared
            } else {
                Keypair::generate(&mut rng)
            };
            let mut msg = format!("pkt {i} seq {}", i * 31).into_bytes();
            let mut sig = keys.sign(&msg, &mut rng);
            let mut key = keys.public();
            match tamper {
                Tamper::None => {}
                Tamper::FlipE => sig = Signature { e: sig.e ^ 1, s: sig.s },
                Tamper::FlipS => sig = Signature { e: sig.e, s: sig.s ^ 1 },
                Tamper::Message => msg[0] ^= 0x80,
                Tamper::WrongKey => key = decoy.public(),
            }
            batch.push(&msg, sig, key);
            items.push((msg, sig, key));
        }
        let outcome = batch.verify_all();
        for (i, (msg, sig, key)) in items.iter().enumerate() {
            let scalar = key.verify(msg, sig);
            prop_assert_eq!(
                outcome.is_valid(i),
                scalar,
                "item {} diverged (tamper {:?})",
                i,
                tampers[i]
            );
        }
        prop_assert_eq!(
            outcome.all_valid(),
            items.iter().all(|(m, s, k)| k.verify(m, s))
        );
        prop_assert!(batch.is_empty(), "verify_all must reset the batch");
    }

    /// A reused `VerifyBatch` (buffers retained across rounds, as the
    /// verify queue does) must behave like a fresh one.
    #[test]
    fn batch_reuse_is_stateless(seed in any::<u64>(), rounds in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut batch = VerifyBatch::new();
        for round in 0..rounds {
            let n = 1 + (seed as usize).wrapping_add(round) % 20;
            let corrupt = (seed as usize).wrapping_mul(31).wrapping_add(round) % n;
            for i in 0..n {
                let keys = Keypair::generate(&mut rng);
                let msg = [round as u8, i as u8, 0xAB];
                let mut sig = keys.sign(&msg, &mut rng);
                if i == corrupt {
                    sig.s ^= 1;
                }
                batch.push(&msg, sig, keys.public());
            }
            let outcome = batch.verify_all();
            for i in 0..n {
                prop_assert_eq!(outcome.is_valid(i), i != corrupt, "round {} item {}", round, i);
            }
        }
    }

    /// Multi-lane SHA-256 over any number of messages of any lengths is
    /// bit-identical to hashing each message with the scalar core —
    /// including ragged final groups and empty inputs.
    #[test]
    fn sha256_many_matches_scalar(
        seed in any::<u64>(),
        lens in proptest::collection::vec(len_strategy(), 0..27),
    ) {
        let msgs = fill_messages(seed, &lens);
        let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
        let mut out: Vec<Digest> = Vec::new();
        lanes::sha256_many(&refs, &mut out);
        let expected: Vec<Digest> = msgs.iter().map(|m| sha256(m)).collect();
        prop_assert_eq!(out, expected);
    }

    /// The span-based entry point (messages staged back-to-back in one
    /// arena, as the verify queue stages them) agrees with the scalar
    /// core for any packing.
    #[test]
    fn sha256_spans_matches_scalar(
        seed in any::<u64>(),
        lens in proptest::collection::vec(len_strategy(), 0..27),
    ) {
        let msgs = fill_messages(seed, &lens);
        let mut arena = Vec::new();
        let mut spans = Vec::new();
        for msg in &msgs {
            let start = arena.len() as u32;
            arena.extend_from_slice(msg);
            spans.push((start, arena.len() as u32));
        }
        let mut out: Vec<Digest> = Vec::new();
        lanes::sha256_spans(&arena, &spans, &mut out);
        let expected: Vec<Digest> = msgs.iter().map(|m| sha256(m)).collect();
        prop_assert_eq!(out, expected);
    }

    /// A full lane group hashed in lockstep matches per-message hashing
    /// even when lane lengths force different block counts per lane.
    #[test]
    fn sha256_x_matches_scalar_per_lane(
        seed in any::<u64>(),
        lens in proptest::collection::vec(len_strategy(), lanes::LANES..lanes::LANES + 1),
    ) {
        let msgs = fill_messages(seed, &lens);
        let group: [&[u8]; lanes::LANES] =
            std::array::from_fn(|l| msgs[l].as_slice());
        let out = lanes::sha256_x(&group);
        for l in 0..lanes::LANES {
            prop_assert_eq!(out[l], sha256(&msgs[l]), "lane {}", l);
        }
    }
}
