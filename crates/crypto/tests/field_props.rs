//! Property tests on the modular-arithmetic substrate.

use blackdp_crypto::field::{is_prime_u64, mul_mod, pow_mod, G, P, Q};
use proptest::prelude::*;

/// Naive modular exponentiation for cross-checking (small exponents).
fn naive_pow_mod(base: u64, exp: u64, m: u64) -> u64 {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc = acc * (base as u128) % (m as u128);
    }
    acc as u64
}

proptest! {
    #[test]
    fn pow_mod_matches_naive(base in 0u64..10_000, exp in 0u64..200, m in 2u64..10_000) {
        prop_assert_eq!(pow_mod(base, exp, m), naive_pow_mod(base % m, exp, m));
    }

    #[test]
    fn mul_mod_is_commutative_and_bounded(a in any::<u64>(), b in any::<u64>()) {
        let ab = mul_mod(a % P, b % P, P);
        let ba = mul_mod(b % P, a % P, P);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab < P);
    }

    #[test]
    fn exponent_laws_hold_in_the_subgroup(x in 1u64..Q, y in 1u64..Q) {
        // g^x * g^y == g^(x+y mod Q) — the identity Schnorr verification
        // relies on.
        let gx = pow_mod(G, x, P);
        let gy = pow_mod(G, y, P);
        let lhs = mul_mod(gx, gy, P);
        let rhs = pow_mod(G, (x + y) % Q, P);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn subgroup_elements_have_order_dividing_q(x in 1u64..Q) {
        let e = pow_mod(G, x, P);
        prop_assert_eq!(pow_mod(e, Q, P), 1);
    }

    #[test]
    fn primality_closed_under_known_composites(a in 2u64..1_000, b in 2u64..1_000) {
        prop_assert!(!is_prime_u64(a * b));
    }
}
