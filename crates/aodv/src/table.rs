//! The AODV routing table (RFC 3561 §2, §6.2).

use std::collections::{BTreeMap, BTreeSet};

use blackdp_sim::Time;

use crate::msg::{Addr, SeqNo};

/// Validity state of a routing table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteState {
    /// Usable for forwarding.
    Valid,
    /// Expired or broken; retained for its sequence number.
    Invalid,
}

/// One routing table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteEntry {
    /// The destination this entry routes toward.
    pub dest: Addr,
    /// Last known destination sequence number (`None` = unknown).
    pub dest_seq: Option<SeqNo>,
    /// Neighbor to forward through.
    pub next_hop: Addr,
    /// Hops to the destination.
    pub hop_count: u8,
    /// Instant after which the entry is stale.
    pub expires: Time,
    /// Validity state.
    pub state: RouteState,
    /// Neighbors that route *through us* to this destination; they must be
    /// notified with a RERR when the route breaks.
    pub precursors: BTreeSet<Addr>,
}

impl RouteEntry {
    /// True if the entry is valid and unexpired at `now`.
    pub fn is_usable(&self, now: Time) -> bool {
        self.state == RouteState::Valid && self.expires > now
    }
}

/// RFC 3561 §6.1: sequence numbers are compared with signed 32-bit
/// rollover arithmetic — `a` is newer than `b` iff `(a - b) as i32 > 0`.
/// A node running long enough wraps its counter past `u32::MAX`; plain
/// `>` would then treat the freshest route as ancient.
pub fn seq_newer(a: SeqNo, b: SeqNo) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}

/// Whether a candidate route should replace the current entry
/// (RFC 3561 §6.2: newer sequence number, or same sequence number with a
/// smaller hop count, or the current entry is unusable).
fn candidate_wins(current: &RouteEntry, cand_seq: Option<SeqNo>, cand_hops: u8, now: Time) -> bool {
    if !current.is_usable(now) {
        return true;
    }
    match (current.dest_seq, cand_seq) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(cur), Some(cand)) => {
            seq_newer(cand, cur) || (cand == cur && cand_hops < current.hop_count)
        }
    }
}

/// The routing table: destination-keyed entries with RFC update rules.
///
/// # Examples
///
/// ```
/// use blackdp_aodv::{Addr, RouteState, RoutingTable};
/// use blackdp_sim::Time;
///
/// let mut table = RoutingTable::new();
/// table.update(Addr(7), Some(10), Addr(3), 2, Time::from_secs(5), Time::ZERO);
/// assert!(table.lookup_usable(Addr(7), Time::ZERO).is_some());
///
/// // A fresher reply (higher sequence number) replaces the route.
/// table.update(Addr(7), Some(12), Addr(4), 5, Time::from_secs(5), Time::ZERO);
/// assert_eq!(table.lookup_usable(Addr(7), Time::ZERO).unwrap().next_hop, Addr(4));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    entries: BTreeMap<Addr, RouteEntry>,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        RoutingTable::default()
    }

    /// Looks up any entry (valid or not) for `dest`.
    pub fn lookup(&self, dest: Addr) -> Option<&RouteEntry> {
        self.entries.get(&dest)
    }

    /// Looks up a usable (valid, unexpired) entry for `dest`.
    pub fn lookup_usable(&self, dest: Addr, now: Time) -> Option<&RouteEntry> {
        self.entries.get(&dest).filter(|e| e.is_usable(now))
    }

    /// Applies the RFC 3561 update rule for a candidate route to `dest` via
    /// `next_hop`. Returns true if the table changed.
    pub fn update(
        &mut self,
        dest: Addr,
        dest_seq: Option<SeqNo>,
        next_hop: Addr,
        hop_count: u8,
        expires: Time,
        now: Time,
    ) -> bool {
        match self.entries.get_mut(&dest) {
            None => {
                self.entries.insert(
                    dest,
                    RouteEntry {
                        dest,
                        dest_seq,
                        next_hop,
                        hop_count,
                        expires,
                        state: RouteState::Valid,
                        precursors: BTreeSet::new(),
                    },
                );
                true
            }
            Some(entry) => {
                if candidate_wins(entry, dest_seq, hop_count, now) {
                    // Keep the best-known sequence number even when the
                    // candidate doesn't know one (rollover-aware).
                    entry.dest_seq = match (entry.dest_seq, dest_seq) {
                        (Some(cur), Some(new)) => Some(if seq_newer(new, cur) { new } else { cur }),
                        (cur, new) => new.or(cur),
                    };
                    entry.next_hop = next_hop;
                    entry.hop_count = hop_count;
                    entry.expires = expires;
                    entry.state = RouteState::Valid;
                    true
                } else {
                    // Refresh the lifetime of an equally good route through
                    // the same neighbor.
                    if entry.next_hop == next_hop && entry.is_usable(now) && expires > entry.expires
                    {
                        entry.expires = expires;
                    }
                    false
                }
            }
        }
    }

    /// Extends the lifetime of a usable entry (data-plane refresh,
    /// RFC 3561 §6.2 last paragraph).
    pub fn refresh(&mut self, dest: Addr, expires: Time, now: Time) {
        if let Some(e) = self.entries.get_mut(&dest) {
            if e.is_usable(now) && expires > e.expires {
                e.expires = expires;
            }
        }
    }

    /// Records that `precursor` routes through us toward `dest`.
    pub fn add_precursor(&mut self, dest: Addr, precursor: Addr) {
        if let Some(e) = self.entries.get_mut(&dest) {
            e.precursors.insert(precursor);
        }
    }

    /// Invalidates the route to `dest`: bumps its sequence number (so stale
    /// information cannot resurrect it) and returns the entry's precursors
    /// and incremented sequence number for RERR generation.
    pub fn invalidate(&mut self, dest: Addr) -> Option<(SeqNo, BTreeSet<Addr>)> {
        let e = self.entries.get_mut(&dest)?;
        if e.state == RouteState::Invalid {
            return None;
        }
        e.state = RouteState::Invalid;
        let seq = e.dest_seq.map(|s| s.wrapping_add(1)).unwrap_or(0);
        e.dest_seq = Some(seq);
        Some((seq, std::mem::take(&mut e.precursors)))
    }

    /// Invalidates every valid route whose next hop is `neighbor` (link
    /// break). Returns `(dest, new_seq, precursors)` triples for RERRs.
    pub fn invalidate_via(&mut self, neighbor: Addr) -> Vec<(Addr, SeqNo, BTreeSet<Addr>)> {
        let broken: Vec<Addr> = self
            .entries
            .values()
            .filter(|e| e.state == RouteState::Valid && e.next_hop == neighbor)
            .map(|e| e.dest)
            .collect();
        broken
            .into_iter()
            .filter_map(|dest| self.invalidate(dest).map(|(seq, pre)| (dest, seq, pre)))
            .collect()
    }

    /// Removes entries (valid or invalid) routing through `neighbor`
    /// entirely — used when a node is blacklisted and its information must
    /// not linger even as sequence-number history.
    pub fn purge_via(&mut self, neighbor: Addr) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|_, e| e.next_hop != neighbor && e.dest != neighbor);
        before - self.entries.len()
    }

    /// Marks expired valid entries invalid; returns how many were expired.
    pub fn expire_stale(&mut self, now: Time) -> usize {
        let mut n = 0;
        for e in self.entries.values_mut() {
            if e.state == RouteState::Valid && e.expires <= now {
                e.state = RouteState::Invalid;
                n += 1;
            }
        }
        n
    }

    /// Iterates all entries in address order.
    pub fn iter(&self) -> impl Iterator<Item = &RouteEntry> {
        self.entries.values()
    }

    /// Number of entries (valid and invalid).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOW: Time = Time::ZERO;

    fn exp(secs: u64) -> Time {
        Time::from_secs(secs)
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = RoutingTable::new();
        assert!(t.is_empty());
        assert!(t.update(Addr(5), Some(10), Addr(2), 3, exp(10), NOW));
        let e = t.lookup_usable(Addr(5), NOW).unwrap();
        assert_eq!(e.next_hop, Addr(2));
        assert_eq!(e.hop_count, 3);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fresher_sequence_number_wins() {
        let mut t = RoutingTable::new();
        t.update(Addr(5), Some(10), Addr(2), 3, exp(10), NOW);
        assert!(t.update(Addr(5), Some(11), Addr(9), 7, exp(10), NOW));
        assert_eq!(t.lookup(Addr(5)).unwrap().next_hop, Addr(9));
    }

    #[test]
    fn stale_sequence_number_loses() {
        let mut t = RoutingTable::new();
        t.update(Addr(5), Some(10), Addr(2), 3, exp(10), NOW);
        assert!(!t.update(Addr(5), Some(9), Addr(9), 1, exp(10), NOW));
        assert_eq!(t.lookup(Addr(5)).unwrap().next_hop, Addr(2));
    }

    #[test]
    fn equal_seq_smaller_hop_count_wins() {
        let mut t = RoutingTable::new();
        t.update(Addr(5), Some(10), Addr(2), 3, exp(10), NOW);
        assert!(t.update(Addr(5), Some(10), Addr(9), 2, exp(10), NOW));
        assert_eq!(t.lookup(Addr(5)).unwrap().next_hop, Addr(9));
        assert!(!t.update(Addr(5), Some(10), Addr(4), 2, exp(10), NOW));
    }

    #[test]
    fn unknown_seq_never_replaces_known() {
        let mut t = RoutingTable::new();
        t.update(Addr(5), Some(1), Addr(2), 3, exp(10), NOW);
        assert!(!t.update(Addr(5), None, Addr(9), 1, exp(10), NOW));
        // ... but replaces an unusable route.
        t.invalidate(Addr(5));
        assert!(t.update(Addr(5), None, Addr(9), 1, exp(10), NOW));
        // Sequence knowledge is retained across the overwrite.
        assert!(t.lookup(Addr(5)).unwrap().dest_seq.is_some());
    }

    #[test]
    fn expired_route_is_unusable_and_replaceable() {
        let mut t = RoutingTable::new();
        t.update(Addr(5), Some(10), Addr(2), 3, exp(1), NOW);
        assert!(t.lookup_usable(Addr(5), exp(1)).is_none(), "expired at t=1");
        assert!(t.update(Addr(5), Some(5), Addr(9), 1, exp(10), exp(2)));
    }

    #[test]
    fn refresh_extends_lifetime_only_forward() {
        let mut t = RoutingTable::new();
        t.update(Addr(5), Some(10), Addr(2), 3, exp(10), NOW);
        t.refresh(Addr(5), exp(20), NOW);
        assert_eq!(t.lookup(Addr(5)).unwrap().expires, exp(20));
        t.refresh(Addr(5), exp(15), NOW); // earlier: ignored
        assert_eq!(t.lookup(Addr(5)).unwrap().expires, exp(20));
    }

    #[test]
    fn invalidate_bumps_sequence_and_returns_precursors() {
        let mut t = RoutingTable::new();
        t.update(Addr(5), Some(10), Addr(2), 3, exp(10), NOW);
        t.add_precursor(Addr(5), Addr(100));
        t.add_precursor(Addr(5), Addr(101));
        let (seq, pre) = t.invalidate(Addr(5)).unwrap();
        assert_eq!(seq, 11);
        assert_eq!(pre.len(), 2);
        assert!(t.lookup_usable(Addr(5), NOW).is_none());
        // Double invalidation is a no-op.
        assert!(t.invalidate(Addr(5)).is_none());
    }

    #[test]
    fn invalidate_via_breaks_all_routes_through_neighbor() {
        let mut t = RoutingTable::new();
        t.update(Addr(5), Some(1), Addr(2), 3, exp(10), NOW);
        t.update(Addr(6), Some(1), Addr(2), 2, exp(10), NOW);
        t.update(Addr(7), Some(1), Addr(3), 2, exp(10), NOW);
        let broken = t.invalidate_via(Addr(2));
        assert_eq!(broken.len(), 2);
        assert!(t.lookup_usable(Addr(7), NOW).is_some());
    }

    #[test]
    fn purge_via_removes_entries_entirely() {
        let mut t = RoutingTable::new();
        t.update(Addr(5), Some(1), Addr(2), 3, exp(10), NOW);
        t.update(Addr(2), Some(1), Addr(2), 1, exp(10), NOW); // the neighbor itself
        t.update(Addr(7), Some(1), Addr(3), 2, exp(10), NOW);
        assert_eq!(t.purge_via(Addr(2)), 2);
        assert_eq!(t.len(), 1);
        assert!(t.lookup(Addr(5)).is_none());
    }

    #[test]
    fn rollover_comparison_is_signed() {
        assert!(seq_newer(1, 0));
        assert!(!seq_newer(0, 1));
        assert!(!seq_newer(5, 5));
        // Across the wrap: 2 is newer than u32::MAX - 2.
        assert!(seq_newer(2, u32::MAX - 2));
        assert!(!seq_newer(u32::MAX - 2, 2));
        // Half the space apart: ordering follows the signed difference.
        assert!(seq_newer(0x8000_0000, 1));
    }

    #[test]
    fn update_accepts_wrapped_fresher_sequence() {
        let mut t = RoutingTable::new();
        t.update(Addr(5), Some(u32::MAX - 1), Addr(2), 3, exp(10), NOW);
        // The destination's counter wrapped: 3 is *newer* than MAX-1.
        assert!(t.update(Addr(5), Some(3), Addr(9), 2, exp(10), NOW));
        assert_eq!(t.lookup(Addr(5)).unwrap().next_hop, Addr(9));
        assert_eq!(t.lookup(Addr(5)).unwrap().dest_seq, Some(3));
    }

    #[test]
    fn invalidate_wraps_at_the_top() {
        let mut t = RoutingTable::new();
        t.update(Addr(5), Some(u32::MAX), Addr(2), 3, exp(10), NOW);
        let (seq, _) = t.invalidate(Addr(5)).unwrap();
        assert_eq!(seq, 0, "u32::MAX + 1 wraps to 0");
    }

    #[test]
    fn expire_stale_marks_but_keeps_entries() {
        let mut t = RoutingTable::new();
        t.update(Addr(5), Some(1), Addr(2), 3, exp(1), NOW);
        t.update(Addr(6), Some(1), Addr(2), 3, exp(100), NOW);
        assert_eq!(t.expire_stale(exp(2)), 1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(Addr(5)).unwrap().state, RouteState::Invalid);
        assert_eq!(t.expire_stale(exp(2)), 0, "idempotent");
    }
}
