//! AODV protocol constants (RFC 3561 §10, scaled to the simulation).

use blackdp_sim::Duration;

/// Tunable AODV parameters.
///
/// Defaults follow RFC 3561 §10 with a network diameter suited to the
/// paper's 10 km highway (at most ~10 radio hops end to end).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AodvConfig {
    /// Lifetime granted to routes used by the data plane
    /// (`ACTIVE_ROUTE_TIMEOUT`).
    pub active_route_timeout: Duration,
    /// Lifetime a destination grants in its own RREPs
    /// (`MY_ROUTE_TIMEOUT`).
    pub my_route_timeout: Duration,
    /// Maximum hops a flood may travel (`NET_DIAMETER`).
    pub net_diameter: u8,
    /// Conservative estimate of one-hop traversal
    /// (`NODE_TRAVERSAL_TIME`).
    pub node_traversal_time: Duration,
    /// How many times a failed discovery is retried (`RREQ_RETRIES`).
    pub rreq_retries: u32,
    /// Hello beacon period (`HELLO_INTERVAL`).
    pub hello_interval: Duration,
    /// Beacons missed before a neighbor is declared gone
    /// (`ALLOWED_HELLO_LOSS`).
    pub allowed_hello_loss: u32,
    /// Whether intermediate nodes with a fresh-enough cached route may
    /// answer RREQs. This is standard AODV behaviour and exactly what a
    /// black hole attacker abuses.
    pub intermediate_reply: bool,
    /// Maximum data packets buffered per destination while discovery runs.
    pub max_buffered: usize,
    /// Enable expanding-ring search (RFC 3561 §6.4): discoveries start
    /// with a small TTL and widen on timeout, so nearby destinations are
    /// found without flooding the whole network.
    pub expanding_ring: bool,
    /// First ring's TTL (`TTL_START`).
    pub ttl_start: u8,
    /// TTL growth per unanswered ring (`TTL_INCREMENT`).
    pub ttl_increment: u8,
    /// Above this TTL the search jumps straight to `NET_DIAMETER`
    /// (`TTL_THRESHOLD`).
    pub ttl_threshold: u8,
}

impl Default for AodvConfig {
    fn default() -> Self {
        AodvConfig {
            active_route_timeout: Duration::from_secs(3),
            my_route_timeout: Duration::from_secs(6),
            net_diameter: 15,
            node_traversal_time: Duration::from_millis(40),
            rreq_retries: 2,
            hello_interval: Duration::from_secs(1),
            allowed_hello_loss: 2,
            intermediate_reply: true,
            max_buffered: 32,
            expanding_ring: false,
            ttl_start: 2,
            ttl_increment: 2,
            ttl_threshold: 7,
        }
    }
}

impl AodvConfig {
    /// `NET_TRAVERSAL_TIME = 2 · NODE_TRAVERSAL_TIME · NET_DIAMETER`.
    pub fn net_traversal_time(&self) -> Duration {
        self.node_traversal_time
            .saturating_mul(2 * self.net_diameter as u64)
    }

    /// `PATH_DISCOVERY_TIME = 2 · NET_TRAVERSAL_TIME` — how long RREQ ids
    /// stay in the dedup cache.
    pub fn path_discovery_time(&self) -> Duration {
        self.net_traversal_time().saturating_mul(2)
    }

    /// `RING_TRAVERSAL_TIME` for a ring of radius `ttl`:
    /// `2 · NODE_TRAVERSAL_TIME · (TTL + TIMEOUT_BUFFER)` with the RFC's
    /// buffer of 2.
    pub fn ring_traversal_time(&self, ttl: u8) -> Duration {
        self.node_traversal_time
            .saturating_mul(2 * (ttl as u64 + 2))
    }

    /// How long a silent neighbor is still considered connected.
    pub fn neighbor_lifetime(&self) -> Duration {
        self.hello_interval
            .saturating_mul(self.allowed_hello_loss as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_times_follow_rfc_formulas() {
        let cfg = AodvConfig::default();
        assert_eq!(cfg.net_traversal_time(), Duration::from_millis(40 * 2 * 15));
        assert_eq!(
            cfg.path_discovery_time(),
            Duration::from_millis(40 * 2 * 15 * 2)
        );
        assert_eq!(cfg.neighbor_lifetime(), Duration::from_secs(2));
        assert_eq!(
            cfg.ring_traversal_time(2),
            Duration::from_millis(40 * 2 * 4)
        );
    }

    #[test]
    fn expanding_ring_defaults_follow_rfc() {
        let cfg = AodvConfig::default();
        assert!(!cfg.expanding_ring, "off by default, like the paper's sim");
        assert_eq!(cfg.ttl_start, 2);
        assert_eq!(cfg.ttl_increment, 2);
        assert_eq!(cfg.ttl_threshold, 7);
    }
}
