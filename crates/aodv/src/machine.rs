//! The sans-io AODV state machine.
//!
//! [`Aodv`] owns all protocol state (routing table, sequence numbers,
//! discovery bookkeeping) but performs no I/O: every entry point returns a
//! list of [`Action`]s for the host to execute. The host is responsible for
//! delivering radio messages back into [`Aodv::handle_message`] and calling
//! [`Aodv::tick`] periodically (every few hundred milliseconds).

use std::collections::{BTreeMap, HashMap, VecDeque};

use blackdp_sim::Time;

use crate::config::AodvConfig;
use crate::msg::{Addr, DataPacket, Hello, Message, Rerr, Rrep, Rreq, SeqNo};
use crate::table::RoutingTable;

/// An output of the state machine for the host to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Unicast `msg` to the neighbor `next_hop`.
    SendTo {
        /// The neighbor to transmit to.
        next_hop: Addr,
        /// The message to transmit.
        msg: Message,
    },
    /// Broadcast `msg` to all neighbors.
    Broadcast {
        /// The message to transmit.
        msg: Message,
    },
    /// A protocol event the host (or an upper layer like BlackDP) may care
    /// about. No transmission is implied.
    Event(Event),
}

/// Protocol-level notifications surfaced alongside transmissions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A data packet addressed to this node arrived.
    DataDelivered(DataPacket),
    /// A data packet was dropped.
    DataDropped {
        /// The dropped packet.
        packet: DataPacket,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A usable route to `dest` is now installed.
    RouteEstablished {
        /// The destination.
        dest: Addr,
        /// The neighbor packets will be forwarded through.
        next_hop: Addr,
        /// The route's destination sequence number.
        dest_seq: SeqNo,
        /// Hops to the destination.
        hop_count: u8,
    },
    /// Route discovery for `dest` exhausted its retries.
    DiscoveryFailed {
        /// The destination that could not be reached.
        dest: Addr,
    },
    /// An RREP terminating at this node was received (emitted for *every*
    /// such RREP, accepted or not — BlackDP and the sequence-number
    /// baselines inspect these).
    RrepReceived {
        /// The neighbor that delivered the RREP.
        from: Addr,
        /// The reply itself.
        rrep: Rrep,
    },
    /// A neighbor stopped beaconing and its routes were invalidated.
    LinkBroken {
        /// The vanished neighbor.
        neighbor: Addr,
    },
}

/// Why a data packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// No usable route and discovery failed.
    NoRoute,
    /// The packet's TTL reached zero in flight.
    TtlExpired,
    /// The per-destination discovery buffer was full.
    BufferFull,
    /// This node already forwarded this exact packet (loop or broadcast
    /// echo — a unicast forwarding chain never duplicates).
    Duplicate,
}

#[derive(Debug)]
struct PendingDiscovery {
    attempts: u32,
    deadline: Time,
    buffered: VecDeque<DataPacket>,
    /// Current search radius (equals `net_diameter` unless expanding-ring
    /// search is still widening).
    ttl: u8,
}

/// The AODV protocol instance for one node.
///
/// # Examples
///
/// Destination answers a discovery directly:
///
/// ```
/// use blackdp_aodv::{Action, Addr, Aodv, AodvConfig, Message};
/// use blackdp_sim::Time;
///
/// let now = Time::ZERO;
/// let mut src = Aodv::new(Addr(1), AodvConfig::default());
/// let mut dst = Aodv::new(Addr(2), AodvConfig::default());
///
/// // Source floods an RREQ...
/// let actions = src.send_data(Addr(2), now);
/// let rreq = actions.iter().find_map(|a| match a {
///     Action::Broadcast { msg: m @ Message::Rreq(_) } => Some(m.clone()),
///     _ => None,
/// }).expect("discovery starts with an RREQ broadcast");
///
/// // ...the destination replies with an RREP...
/// let replies = dst.handle_message(Addr(1), rreq, now);
/// assert!(matches!(&replies[..], [Action::SendTo { next_hop: Addr(1), .. }]));
/// ```
#[derive(Debug)]
pub struct Aodv {
    addr: Addr,
    cfg: AodvConfig,
    seq: SeqNo,
    next_rreq_id: u64,
    next_data_seq: u64,
    routes: RoutingTable,
    rreq_seen: HashMap<(Addr, u64), Time>,
    data_seen: HashMap<(Addr, u64), Time>,
    pending: BTreeMap<Addr, PendingDiscovery>,
    neighbors: BTreeMap<Addr, Time>,
    last_hello: Option<Time>,
}

impl Aodv {
    /// Creates an instance for the node addressed `addr`.
    pub fn new(addr: Addr, cfg: AodvConfig) -> Self {
        Aodv {
            addr,
            cfg,
            seq: 0,
            next_rreq_id: 0,
            next_data_seq: 0,
            routes: RoutingTable::new(),
            rreq_seen: HashMap::new(),
            data_seen: HashMap::new(),
            pending: BTreeMap::new(),
            neighbors: BTreeMap::new(),
            last_hello: None,
        }
    }

    /// This node's protocol address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Rebinds the protocol address (pseudonym renewal). Routing state is
    /// kept: real implementations would gradually re-learn, but the paper's
    /// renewal concerns identity, not topology.
    pub fn set_addr(&mut self, addr: Addr) {
        self.addr = addr;
    }

    /// This node's own sequence number.
    pub fn seq(&self) -> SeqNo {
        self.seq
    }

    /// Read access to the routing table.
    pub fn routes(&self) -> &RoutingTable {
        &self.routes
    }

    /// Currently connected neighbors (heard within the hello lifetime).
    pub fn neighbors(&self) -> impl Iterator<Item = Addr> + '_ {
        self.neighbors.keys().copied()
    }

    /// Invalidates any current route to `dest` — used by BlackDP's
    /// verification ladder before redoing a route discovery, so the fresh
    /// RREQ cannot be answered from this node's own stale cache.
    pub fn invalidate_route(&mut self, dest: Addr) {
        let _ = self.routes.invalidate(dest);
    }

    /// True if a usable route to `dest` exists at `now`.
    pub fn has_route(&self, dest: Addr, now: Time) -> bool {
        self.routes.lookup_usable(dest, now).is_some()
    }

    /// Removes all routing state involving `addr` — the isolation hook:
    /// after a blacklist notification, routes through the attacker must not
    /// survive even as history.
    pub fn purge_node(&mut self, addr: Addr) -> usize {
        self.neighbors.remove(&addr);
        self.pending.remove(&addr);
        self.routes.purge_via(addr)
    }

    /// Queues an application packet for `dest`, starting route discovery if
    /// necessary.
    pub fn send_data(&mut self, dest: Addr, now: Time) -> Vec<Action> {
        let packet = DataPacket {
            orig: self.addr,
            dest,
            seq_no: self.next_data_seq,
            ttl: self.cfg.net_diameter,
        };
        self.next_data_seq += 1;
        let mut actions = Vec::new();
        if dest == self.addr {
            actions.push(Action::Event(Event::DataDelivered(packet)));
            return actions;
        }
        if let Some(route) = self.routes.lookup_usable(dest, now) {
            let next_hop = route.next_hop;
            self.refresh_data_path(&packet, next_hop, now);
            actions.push(Action::SendTo {
                next_hop,
                msg: Message::Data(packet),
            });
            return actions;
        }
        // Buffer and (maybe) start discovery.
        match self.pending.get_mut(&dest) {
            Some(p) => {
                if p.buffered.len() >= self.cfg.max_buffered {
                    actions.push(Action::Event(Event::DataDropped {
                        packet,
                        reason: DropReason::BufferFull,
                    }));
                } else {
                    p.buffered.push_back(packet);
                }
            }
            None => {
                let mut buffered = VecDeque::new();
                buffered.push_back(packet);
                actions.extend(self.begin_discovery(dest, buffered, now));
            }
        }
        actions
    }

    /// Starts (or restarts) a route discovery toward `dest` regardless of
    /// buffered data. Used by upper layers such as BlackDP's second
    /// discovery round.
    pub fn start_discovery(&mut self, dest: Addr, now: Time) -> Vec<Action> {
        let buffered = self
            .pending
            .remove(&dest)
            .map(|p| p.buffered)
            .unwrap_or_default();
        self.begin_discovery(dest, buffered, now)
    }

    fn begin_discovery(
        &mut self,
        dest: Addr,
        buffered: VecDeque<DataPacket>,
        now: Time,
    ) -> Vec<Action> {
        // RFC 3561 §6.3: increment own sequence number before an RREQ.
        self.seq += 1;
        let rreq_id = self.next_rreq_id;
        self.next_rreq_id += 1;
        self.rreq_seen.insert((self.addr, rreq_id), now);
        // Expanding-ring search (§6.4) starts small; otherwise flood the
        // whole diameter at once.
        let ttl = if self.cfg.expanding_ring {
            self.cfg.ttl_start.min(self.cfg.net_diameter)
        } else {
            self.cfg.net_diameter
        };
        let deadline = if ttl < self.cfg.net_diameter {
            now + self.cfg.ring_traversal_time(ttl)
        } else {
            now + self.cfg.net_traversal_time()
        };
        let rreq = Rreq {
            rreq_id,
            dest,
            dest_seq: self.routes.lookup(dest).and_then(|e| e.dest_seq),
            orig: self.addr,
            orig_seq: self.seq,
            hop_count: 0,
            ttl,
            next_hop_inquiry: false,
        };
        self.pending.insert(
            dest,
            PendingDiscovery {
                attempts: 1,
                deadline,
                buffered,
                ttl,
            },
        );
        vec![Action::Broadcast {
            msg: Message::Rreq(rreq),
        }]
    }

    /// Processes a received AODV message from neighbor `from`.
    pub fn handle_message(&mut self, from: Addr, msg: Message, now: Time) -> Vec<Action> {
        // Any reception proves `from` is a live neighbor.
        self.note_neighbor(from, now);
        match msg {
            Message::Rreq(rreq) => self.handle_rreq(from, rreq, now),
            Message::Rrep(rrep) => self.handle_rrep(from, rrep, now),
            Message::Rerr(rerr) => self.handle_rerr(from, rerr, now),
            Message::Hello(hello) => self.handle_hello(from, hello, now),
            Message::Data(data) => self.handle_data(from, data, now),
        }
    }

    /// Periodic maintenance: hello beacons, neighbor timeouts, route and
    /// cache expiry, discovery retries. Call every few hundred ms.
    pub fn tick(&mut self, now: Time) -> Vec<Action> {
        let mut actions = Vec::new();

        // Hello beaconing.
        let due = match self.last_hello {
            None => true,
            Some(t) => now.saturating_since(t) >= self.cfg.hello_interval,
        };
        if due {
            self.last_hello = Some(now);
            actions.push(Action::Broadcast {
                msg: Message::Hello(Hello {
                    orig: self.addr,
                    seq: self.seq,
                }),
            });
        }

        // Neighbor timeouts → link breaks → RERRs.
        let lifetime = self.cfg.neighbor_lifetime();
        let gone: Vec<Addr> = self
            .neighbors
            .iter()
            .filter(|(_, &last)| now.saturating_since(last) > lifetime)
            .map(|(&a, _)| a)
            .collect();
        for neighbor in gone {
            self.neighbors.remove(&neighbor);
            actions.push(Action::Event(Event::LinkBroken { neighbor }));
            let broken = self.routes.invalidate_via(neighbor);
            let unreachable: Vec<(Addr, SeqNo)> = broken
                .iter()
                .filter(|(_, _, pre)| !pre.is_empty())
                .map(|(d, s, _)| (*d, *s))
                .collect();
            if !unreachable.is_empty() {
                actions.push(Action::Broadcast {
                    msg: Message::Rerr(Rerr { unreachable }),
                });
            }
        }

        // Route expiry and RREQ-id cache cleanup. The emptiness guards
        // matter: `HashMap::retain` walks the whole bucket array even when
        // `len` is zero, and these run on every maintenance tick.
        self.routes.expire_stale(now);
        if !self.rreq_seen.is_empty() {
            let horizon = self.cfg.path_discovery_time();
            self.rreq_seen
                .retain(|_, &mut t| now.saturating_since(t) <= horizon);
        }
        if !self.data_seen.is_empty() {
            let data_horizon = self.cfg.active_route_timeout;
            self.data_seen
                .retain(|_, &mut t| now.saturating_since(t) <= data_horizon);
        }

        // Discovery retries / failures.
        let expired: Vec<Addr> = self
            .pending
            .iter()
            .filter(|(_, p)| now >= p.deadline)
            .map(|(&d, _)| d)
            .collect();
        for dest in expired {
            let p = self.pending.get_mut(&dest).expect("just listed");
            let widening = p.ttl < self.cfg.net_diameter;
            if !widening && p.attempts > self.cfg.rreq_retries {
                let p = self.pending.remove(&dest).expect("just listed");
                actions.push(Action::Event(Event::DiscoveryFailed { dest }));
                for packet in p.buffered {
                    actions.push(Action::Event(Event::DataDropped {
                        packet,
                        reason: DropReason::NoRoute,
                    }));
                }
                continue;
            }
            if widening {
                // Expanding-ring widening (§6.4): grow the radius; past the
                // threshold, jump straight to the full diameter. Widening
                // rings do not consume full-diameter retries.
                let next = p.ttl.saturating_add(self.cfg.ttl_increment);
                p.ttl = if next > self.cfg.ttl_threshold {
                    self.cfg.net_diameter
                } else {
                    next.min(self.cfg.net_diameter)
                };
                p.deadline = if p.ttl < self.cfg.net_diameter {
                    now + self.cfg.ring_traversal_time(p.ttl)
                } else {
                    now + self.cfg.net_traversal_time()
                };
            } else {
                // Full-diameter retry (binary exponential backoff).
                p.attempts += 1;
                let backoff = self
                    .cfg
                    .net_traversal_time()
                    .saturating_mul(1 << (p.attempts - 1).min(8));
                p.deadline = now + backoff;
            }
            let ttl = p.ttl;
            self.seq += 1;
            let rreq_id = self.next_rreq_id;
            self.next_rreq_id += 1;
            self.rreq_seen.insert((self.addr, rreq_id), now);
            let rreq = Rreq {
                rreq_id,
                dest,
                dest_seq: self.routes.lookup(dest).and_then(|e| e.dest_seq),
                orig: self.addr,
                orig_seq: self.seq,
                hop_count: 0,
                ttl,
                next_hop_inquiry: false,
            };
            actions.push(Action::Broadcast {
                msg: Message::Rreq(rreq),
            });
        }

        actions
    }

    fn note_neighbor(&mut self, from: Addr, now: Time) {
        self.neighbors.insert(from, now);
        // A direct transmission is also a 1-hop route with unknown seq.
        self.routes.update(
            from,
            None,
            from,
            1,
            now + self.cfg.active_route_timeout,
            now,
        );
    }

    fn handle_rreq(&mut self, from: Addr, rreq: Rreq, now: Time) -> Vec<Action> {
        if rreq.orig == self.addr {
            return Vec::new(); // our own flood echoed back
        }
        if self.rreq_seen.contains_key(&(rreq.orig, rreq.rreq_id)) {
            return Vec::new();
        }
        self.rreq_seen.insert((rreq.orig, rreq.rreq_id), now);

        // Install/refresh the reverse route to the originator.
        self.routes.update(
            rreq.orig,
            Some(rreq.orig_seq),
            from,
            rreq.hop_count + 1,
            now + self.cfg.active_route_timeout,
            now,
        );

        if rreq.dest == self.addr {
            // RFC 3561 §6.6.1: ensure our seq is at least the one the
            // originator asked for.
            if let Some(ds) = rreq.dest_seq {
                self.seq = self.seq.max(ds);
            }
            let rrep = Rrep {
                dest: self.addr,
                dest_seq: self.seq,
                orig: rreq.orig,
                hop_count: 0,
                lifetime: self.cfg.my_route_timeout,
                next_hop: None,
            };
            return vec![Action::SendTo {
                next_hop: from,
                msg: Message::Rrep(rrep),
            }];
        }

        // Intermediate reply from cache (RFC 3561 §6.6.2) — the behaviour a
        // black hole impersonates.
        if self.cfg.intermediate_reply {
            if let Some(route) = self.routes.lookup_usable(rreq.dest, now) {
                if let Some(route_seq) = route.dest_seq {
                    let fresh_enough = rreq.dest_seq.map(|ds| route_seq >= ds).unwrap_or(true);
                    if fresh_enough {
                        let rrep = Rrep {
                            dest: rreq.dest,
                            dest_seq: route_seq,
                            orig: rreq.orig,
                            hop_count: route.hop_count,
                            lifetime: route.expires.saturating_since(now),
                            next_hop: rreq.next_hop_inquiry.then_some(route.next_hop),
                        };
                        self.routes.add_precursor(rreq.dest, from);
                        return vec![Action::SendTo {
                            next_hop: from,
                            msg: Message::Rrep(rrep),
                        }];
                    }
                }
            }
        }

        // Otherwise keep flooding.
        if rreq.ttl > 0 {
            let forwarded = Rreq {
                hop_count: rreq.hop_count.saturating_add(1),
                ttl: rreq.ttl - 1,
                ..rreq
            };
            return vec![Action::Broadcast {
                msg: Message::Rreq(forwarded),
            }];
        }
        Vec::new()
    }

    fn handle_rrep(&mut self, from: Addr, rrep: Rrep, now: Time) -> Vec<Action> {
        let mut actions = Vec::new();
        // Install/refresh the forward route to the reply's destination.
        let hops_from_here = rrep.hop_count.saturating_add(1);
        self.routes.update(
            rrep.dest,
            Some(rrep.dest_seq),
            from,
            hops_from_here,
            now + rrep.lifetime,
            now,
        );

        if rrep.orig == self.addr {
            // Terminates here: surface it, then complete any pending
            // discovery if the installed route is usable.
            actions.push(Action::Event(Event::RrepReceived { from, rrep }));
            if self.pending.contains_key(&rrep.dest) {
                if let Some(route) = self.routes.lookup_usable(rrep.dest, now) {
                    let next_hop = route.next_hop;
                    let dest_seq = route.dest_seq.unwrap_or(rrep.dest_seq);
                    let hop_count = route.hop_count;
                    let pending = self.pending.remove(&rrep.dest).expect("checked above");
                    actions.push(Action::Event(Event::RouteEstablished {
                        dest: rrep.dest,
                        next_hop,
                        dest_seq,
                        hop_count,
                    }));
                    for packet in pending.buffered {
                        self.refresh_data_path(&packet, next_hop, now);
                        actions.push(Action::SendTo {
                            next_hop,
                            msg: Message::Data(packet),
                        });
                    }
                }
            }
            return actions;
        }

        // Forward toward the originator along the reverse route.
        if let Some(rev) = self.routes.lookup_usable(rrep.orig, now) {
            let rev_next = rev.next_hop;
            let forwarded = Rrep {
                hop_count: hops_from_here,
                ..rrep
            };
            // RFC 3561 §6.7: precursor bookkeeping on both routes.
            self.routes.add_precursor(rrep.dest, rev_next);
            self.routes.add_precursor(rrep.orig, from);
            actions.push(Action::SendTo {
                next_hop: rev_next,
                msg: Message::Rrep(forwarded),
            });
        }
        actions
    }

    fn handle_rerr(&mut self, from: Addr, rerr: Rerr, now: Time) -> Vec<Action> {
        let _ = now;
        let mut propagate = Vec::new();
        for (dest, seq) in rerr.unreachable {
            let Some(entry) = self.routes.lookup(dest) else {
                continue;
            };
            if entry.next_hop != from {
                continue; // we don't route through the reporter
            }
            if let Some((_, precursors)) = self.routes.invalidate(dest) {
                // Adopt the reporter's (already incremented) seq so stale
                // info cannot resurrect the route.
                if !precursors.is_empty() {
                    propagate.push((dest, seq));
                }
            }
        }
        if propagate.is_empty() {
            Vec::new()
        } else {
            vec![Action::Broadcast {
                msg: Message::Rerr(Rerr {
                    unreachable: propagate,
                }),
            }]
        }
    }

    fn handle_hello(&mut self, from: Addr, hello: Hello, now: Time) -> Vec<Action> {
        // `note_neighbor` already refreshed the 1-hop route; a hello also
        // carries the neighbor's sequence number.
        if hello.orig == from {
            self.routes.update(
                from,
                Some(hello.seq),
                from,
                1,
                now + self.cfg.neighbor_lifetime() + self.cfg.hello_interval,
                now,
            );
        }
        Vec::new()
    }

    fn handle_data(&mut self, from: Addr, data: DataPacket, now: Time) -> Vec<Action> {
        if data.dest == self.addr {
            // Keep the reverse path fresh for replies.
            self.routes
                .refresh(data.orig, now + self.cfg.active_route_timeout, now);
            return vec![Action::Event(Event::DataDelivered(data))];
        }
        // Forward each distinct packet at most once. `seq_no` is a
        // monotone per-origin counter, so a repeat here is a routing loop
        // or a broadcast echo (a misbehaving node rebroadcasting data);
        // re-forwarding would let N neighbors amplify every copy into an
        // exponential storm only capped by TTL.
        if self.data_seen.contains_key(&(data.orig, data.seq_no)) {
            return vec![Action::Event(Event::DataDropped {
                packet: data,
                reason: DropReason::Duplicate,
            })];
        }
        if data.ttl == 0 {
            return vec![Action::Event(Event::DataDropped {
                packet: data,
                reason: DropReason::TtlExpired,
            })];
        }
        if let Some(route) = self.routes.lookup_usable(data.dest, now) {
            // Only a *forwarded* packet is marked seen: a copy we merely
            // overheard without a route must not poison a later, genuine
            // unicast hand-off through this node.
            self.data_seen.insert((data.orig, data.seq_no), now);
            let next_hop = route.next_hop;
            let forwarded = DataPacket {
                ttl: data.ttl - 1,
                ..data
            };
            self.refresh_data_path(&forwarded, next_hop, now);
            self.routes
                .refresh(data.orig, now + self.cfg.active_route_timeout, now);
            let _ = from;
            return vec![Action::SendTo {
                next_hop,
                msg: Message::Data(forwarded),
            }];
        }
        // No route: RERR toward whoever routes through us (RFC 3561 §6.11).
        let mut actions = vec![Action::Event(Event::DataDropped {
            packet: data,
            reason: DropReason::NoRoute,
        })];
        if let Some((seq, precursors)) = self.routes.invalidate(data.dest) {
            if !precursors.is_empty() {
                actions.push(Action::Broadcast {
                    msg: Message::Rerr(Rerr {
                        unreachable: vec![(data.dest, seq)],
                    }),
                });
            }
        }
        actions
    }

    /// Data-plane lifetime refresh for source, destination, and next hop
    /// (RFC 3561 §6.2).
    fn refresh_data_path(&mut self, packet: &DataPacket, next_hop: Addr, now: Time) {
        let until = now + self.cfg.active_route_timeout;
        self.routes.refresh(packet.dest, until, now);
        self.routes.refresh(next_hop, until, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blackdp_sim::Duration;

    const NOW: Time = Time::ZERO;

    fn cfg() -> AodvConfig {
        AodvConfig::default()
    }

    fn rreq_from(actions: &[Action]) -> Rreq {
        actions
            .iter()
            .find_map(|a| match a {
                Action::Broadcast {
                    msg: Message::Rreq(r),
                } => Some(*r),
                _ => None,
            })
            .expect("expected an RREQ broadcast")
    }

    fn rrep_to(actions: &[Action]) -> (Addr, Rrep) {
        actions
            .iter()
            .find_map(|a| match a {
                Action::SendTo {
                    next_hop,
                    msg: Message::Rrep(r),
                } => Some((*next_hop, *r)),
                _ => None,
            })
            .expect("expected an RREP unicast")
    }

    #[test]
    fn send_data_without_route_starts_discovery() {
        let mut a = Aodv::new(Addr(1), cfg());
        let actions = a.send_data(Addr(9), NOW);
        let rreq = rreq_from(&actions);
        assert_eq!(rreq.orig, Addr(1));
        assert_eq!(rreq.dest, Addr(9));
        assert_eq!(rreq.hop_count, 0);
        assert_eq!(rreq.dest_seq, None, "destination never seen");
        assert_eq!(a.seq(), 1, "own seq incremented before RREQ");
    }

    #[test]
    fn send_data_to_self_delivers_immediately() {
        let mut a = Aodv::new(Addr(1), cfg());
        let actions = a.send_data(Addr(1), NOW);
        assert!(matches!(
            &actions[..],
            [Action::Event(Event::DataDelivered(_))]
        ));
    }

    #[test]
    fn destination_replies_with_rrep() {
        let mut src = Aodv::new(Addr(1), cfg());
        let mut dst = Aodv::new(Addr(2), cfg());
        let rreq = rreq_from(&src.send_data(Addr(2), NOW));
        let actions = dst.handle_message(Addr(1), Message::Rreq(rreq), NOW);
        let (to, rrep) = rrep_to(&actions);
        assert_eq!(to, Addr(1));
        assert_eq!(rrep.dest, Addr(2));
        assert_eq!(rrep.orig, Addr(1));
        assert_eq!(rrep.hop_count, 0);
    }

    #[test]
    fn rrep_completes_discovery_and_flushes_data() {
        let mut src = Aodv::new(Addr(1), cfg());
        let mut dst = Aodv::new(Addr(2), cfg());
        let rreq = rreq_from(&src.send_data(Addr(2), NOW));
        let replies = dst.handle_message(Addr(1), Message::Rreq(rreq), NOW);
        let (_, rrep) = rrep_to(&replies);
        let actions = src.handle_message(Addr(2), Message::Rrep(rrep), NOW);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Event(Event::RrepReceived { .. }))));
        assert!(actions.iter().any(
            |a| matches!(a, Action::Event(Event::RouteEstablished { dest, .. }) if *dest == Addr(2))
        ));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::SendTo {
                next_hop: Addr(2),
                msg: Message::Data(_)
            }
        )));
        assert!(src.routes().lookup_usable(Addr(2), NOW).is_some());
    }

    #[test]
    fn three_hop_chain_end_to_end() {
        // 1 —— 2 —— 3: relay through an intermediate node.
        let mut n1 = Aodv::new(Addr(1), cfg());
        let mut n2 = Aodv::new(Addr(2), cfg());
        let mut n3 = Aodv::new(Addr(3), cfg());

        let rreq = rreq_from(&n1.send_data(Addr(3), NOW));
        // n2 has no route: it refloods.
        let fwd = n2.handle_message(Addr(1), Message::Rreq(rreq), NOW);
        let rreq2 = rreq_from(&fwd);
        assert_eq!(rreq2.hop_count, 1);
        // n3 is the destination: replies to n2.
        let rep = n3.handle_message(Addr(2), Message::Rreq(rreq2), NOW);
        let (to, rrep) = rrep_to(&rep);
        assert_eq!(to, Addr(2));
        // n2 forwards the RREP back toward n1 with an incremented hop count.
        let back = n2.handle_message(Addr(3), Message::Rrep(rrep), NOW);
        let (to, rrep_fwd) = rrep_to(&back);
        assert_eq!(to, Addr(1));
        assert_eq!(rrep_fwd.hop_count, 1);
        // n1 completes, and data flows 1 → 2.
        let done = n1.handle_message(Addr(2), Message::Rrep(rrep_fwd), NOW);
        let data = done
            .iter()
            .find_map(|a| match a {
                Action::SendTo {
                    next_hop,
                    msg: Message::Data(d),
                } => Some((*next_hop, *d)),
                _ => None,
            })
            .expect("buffered data flushed");
        assert_eq!(data.0, Addr(2));
        // n2 forwards the data to n3, which delivers it.
        let fwd_data = n2.handle_message(Addr(1), Message::Data(data.1), NOW);
        let (hop, pkt) = fwd_data
            .iter()
            .find_map(|a| match a {
                Action::SendTo {
                    next_hop,
                    msg: Message::Data(d),
                } => Some((*next_hop, *d)),
                _ => None,
            })
            .expect("n2 forwards data");
        assert_eq!(hop, Addr(3));
        let delivered = n3.handle_message(Addr(2), Message::Data(pkt), NOW);
        assert!(delivered
            .iter()
            .any(|a| matches!(a, Action::Event(Event::DataDelivered(d)) if d.orig == Addr(1))));
    }

    #[test]
    fn duplicate_rreq_is_dropped() {
        let mut n2 = Aodv::new(Addr(2), cfg());
        let rreq = Rreq {
            rreq_id: 7,
            dest: Addr(9),
            dest_seq: None,
            orig: Addr(1),
            orig_seq: 1,
            hop_count: 0,
            ttl: 5,
            next_hop_inquiry: false,
        };
        let first = n2.handle_message(Addr(1), Message::Rreq(rreq), NOW);
        assert!(!first.is_empty(), "first copy refloods");
        let second = n2.handle_message(Addr(1), Message::Rreq(rreq), NOW);
        assert!(second.is_empty(), "duplicate is silently dropped");
    }

    #[test]
    fn rreq_ttl_zero_stops_flood() {
        let mut n2 = Aodv::new(Addr(2), cfg());
        let rreq = Rreq {
            rreq_id: 7,
            dest: Addr(9),
            dest_seq: None,
            orig: Addr(1),
            orig_seq: 1,
            hop_count: 3,
            ttl: 0,
            next_hop_inquiry: false,
        };
        let actions = n2.handle_message(Addr(1), Message::Rreq(rreq), NOW);
        assert!(
            !actions.iter().any(|a| matches!(
                a,
                Action::Broadcast {
                    msg: Message::Rreq(_)
                }
            )),
            "ttl-0 RREQ must not be rebroadcast"
        );
    }

    #[test]
    fn intermediate_reply_from_cache_discloses_next_hop_on_inquiry() {
        let mut n2 = Aodv::new(Addr(2), cfg());
        // Teach n2 a cached route to 9 via 5.
        n2.handle_message(
            Addr(5),
            Message::Rrep(Rrep {
                dest: Addr(9),
                dest_seq: 40,
                orig: Addr(2),
                hop_count: 1,
                lifetime: Duration::from_secs(10),
                next_hop: None,
            }),
            NOW,
        );
        let rreq = Rreq {
            rreq_id: 1,
            dest: Addr(9),
            dest_seq: Some(30),
            orig: Addr(1),
            orig_seq: 1,
            hop_count: 0,
            ttl: 5,
            next_hop_inquiry: true,
        };
        let actions = n2.handle_message(Addr(1), Message::Rreq(rreq), NOW);
        let (to, rrep) = rrep_to(&actions);
        assert_eq!(to, Addr(1));
        assert_eq!(rrep.dest_seq, 40);
        assert_eq!(rrep.hop_count, 2);
        assert_eq!(rrep.next_hop, Some(Addr(5)), "inquiry must be answered");
    }

    #[test]
    fn intermediate_with_stale_cache_refloods_instead_of_replying() {
        let mut n2 = Aodv::new(Addr(2), cfg());
        n2.handle_message(
            Addr(5),
            Message::Rrep(Rrep {
                dest: Addr(9),
                dest_seq: 10,
                orig: Addr(2),
                hop_count: 1,
                lifetime: Duration::from_secs(10),
                next_hop: None,
            }),
            NOW,
        );
        // Originator demands seq >= 50; the cache only has 10.
        let rreq = Rreq {
            rreq_id: 1,
            dest: Addr(9),
            dest_seq: Some(50),
            orig: Addr(1),
            orig_seq: 1,
            hop_count: 0,
            ttl: 5,
            next_hop_inquiry: false,
        };
        let actions = n2.handle_message(Addr(1), Message::Rreq(rreq), NOW);
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::Broadcast {
                    msg: Message::Rreq(_)
                }
            )),
            "AODV-compliant node must NOT reply with a stale cached route \
             (the rule the black hole violates)"
        );
    }

    #[test]
    fn discovery_retries_then_fails() {
        let mut a = Aodv::new(Addr(1), cfg());
        let _ = a.send_data(Addr(9), NOW);
        let mut t = NOW;
        let mut rreqs = 1;
        let mut failed = false;
        let mut dropped = 0;
        for _ in 0..4000 {
            t += Duration::from_millis(100);
            for action in a.tick(t) {
                match action {
                    Action::Broadcast {
                        msg: Message::Rreq(_),
                    } => rreqs += 1,
                    Action::Event(Event::DiscoveryFailed { dest }) => {
                        assert_eq!(dest, Addr(9));
                        failed = true;
                    }
                    Action::Event(Event::DataDropped { reason, .. }) => {
                        assert_eq!(reason, DropReason::NoRoute);
                        dropped += 1;
                    }
                    _ => {}
                }
            }
            if failed {
                break;
            }
        }
        assert!(failed, "discovery must eventually fail");
        assert_eq!(rreqs, 3, "initial + RREQ_RETRIES attempts");
        assert_eq!(dropped, 1, "the buffered packet is dropped");
    }

    #[test]
    fn hello_beacons_emitted_periodically() {
        let mut a = Aodv::new(Addr(1), cfg());
        let mut hellos = 0;
        let mut t = NOW;
        for _ in 0..35 {
            t += Duration::from_millis(100);
            for action in a.tick(t) {
                if matches!(
                    action,
                    Action::Broadcast {
                        msg: Message::Hello(_)
                    }
                ) {
                    hellos += 1;
                }
            }
        }
        // ~3.5 s with a 1 s interval: 4 beacons (t=0.1 included).
        assert!((3..=4).contains(&hellos), "got {hellos} hellos");
    }

    #[test]
    fn silent_neighbor_is_declared_gone_and_rerr_sent_to_precursors() {
        let mut a = Aodv::new(Addr(1), cfg());
        // Hear neighbor 2; learn a route to 9 via 2 with a precursor 3.
        a.handle_message(
            Addr(2),
            Message::Hello(Hello {
                orig: Addr(2),
                seq: 1,
            }),
            NOW,
        );
        a.handle_message(
            Addr(2),
            Message::Rrep(Rrep {
                dest: Addr(9),
                dest_seq: 5,
                orig: Addr(1),
                hop_count: 1,
                lifetime: Duration::from_secs(60),
                next_hop: None,
            }),
            NOW,
        );
        // Forward a data packet from 3 so 3 becomes a precursor... simpler:
        // directly mark the precursor through the routing-table API is not
        // exposed; instead forward an RREP for orig=3 to create precursors.
        a.handle_message(
            Addr(3),
            Message::Hello(Hello {
                orig: Addr(3),
                seq: 1,
            }),
            NOW,
        );
        a.handle_message(
            Addr(2),
            Message::Rrep(Rrep {
                dest: Addr(9),
                dest_seq: 6,
                orig: Addr(3),
                hop_count: 1,
                lifetime: Duration::from_secs(60),
                next_hop: None,
            }),
            NOW,
        );
        // Now both 2 and 3 are neighbors. Let 2 and 3 go silent long
        // enough to expire (> 2 s), while the route to 9 (60 s) is alive.
        let later = Time::from_secs(10);
        let actions = a.tick(later);
        assert!(actions.iter().any(
            |x| matches!(x, Action::Event(Event::LinkBroken { neighbor }) if *neighbor == Addr(2))
        ));
        assert!(
            actions.iter().any(|x| matches!(
                x,
                Action::Broadcast {
                    msg: Message::Rerr(r)
                } if r.unreachable.iter().any(|(d, _)| *d == Addr(9))
            )),
            "RERR must announce the lost route to 9 (it had a precursor)"
        );
        assert!(a.routes().lookup_usable(Addr(9), later).is_none());
    }

    #[test]
    fn rerr_from_next_hop_invalidates_route() {
        let mut a = Aodv::new(Addr(1), cfg());
        a.handle_message(
            Addr(2),
            Message::Rrep(Rrep {
                dest: Addr(9),
                dest_seq: 5,
                orig: Addr(1),
                hop_count: 1,
                lifetime: Duration::from_secs(60),
                next_hop: None,
            }),
            NOW,
        );
        assert!(a.routes().lookup_usable(Addr(9), NOW).is_some());
        a.handle_message(
            Addr(2),
            Message::Rerr(Rerr {
                unreachable: vec![(Addr(9), 6)],
            }),
            NOW,
        );
        assert!(a.routes().lookup_usable(Addr(9), NOW).is_none());
    }

    #[test]
    fn rerr_from_unrelated_neighbor_is_ignored() {
        let mut a = Aodv::new(Addr(1), cfg());
        a.handle_message(
            Addr(2),
            Message::Rrep(Rrep {
                dest: Addr(9),
                dest_seq: 5,
                orig: Addr(1),
                hop_count: 1,
                lifetime: Duration::from_secs(60),
                next_hop: None,
            }),
            NOW,
        );
        a.handle_message(
            Addr(7),
            Message::Rerr(Rerr {
                unreachable: vec![(Addr(9), 6)],
            }),
            NOW,
        );
        assert!(
            a.routes().lookup_usable(Addr(9), NOW).is_some(),
            "only the route's next hop may kill it"
        );
    }

    #[test]
    fn data_with_no_route_is_dropped_with_rerr_for_precursors() {
        let mut a = Aodv::new(Addr(2), cfg());
        let data = DataPacket {
            orig: Addr(1),
            dest: Addr(9),
            seq_no: 0,
            ttl: 5,
        };
        let actions = a.handle_message(Addr(1), Message::Data(data), NOW);
        assert!(actions.iter().any(|x| matches!(
            x,
            Action::Event(Event::DataDropped {
                reason: DropReason::NoRoute,
                ..
            })
        )));
    }

    #[test]
    fn data_ttl_expiry() {
        let mut a = Aodv::new(Addr(2), cfg());
        let data = DataPacket {
            orig: Addr(1),
            dest: Addr(9),
            seq_no: 0,
            ttl: 0,
        };
        let actions = a.handle_message(Addr(1), Message::Data(data), NOW);
        assert!(actions.iter().any(|x| matches!(
            x,
            Action::Event(Event::DataDropped {
                reason: DropReason::TtlExpired,
                ..
            })
        )));
    }

    #[test]
    fn buffer_overflow_drops_excess_packets() {
        let mut a = Aodv::new(
            Addr(1),
            AodvConfig {
                max_buffered: 2,
                ..cfg()
            },
        );
        let _ = a.send_data(Addr(9), NOW);
        let _ = a.send_data(Addr(9), NOW);
        let actions = a.send_data(Addr(9), NOW);
        assert!(actions.iter().any(|x| matches!(
            x,
            Action::Event(Event::DataDropped {
                reason: DropReason::BufferFull,
                ..
            })
        )));
    }

    #[test]
    fn purge_node_removes_all_traces() {
        let mut a = Aodv::new(Addr(1), cfg());
        a.handle_message(
            Addr(2),
            Message::Rrep(Rrep {
                dest: Addr(9),
                dest_seq: 5,
                orig: Addr(1),
                hop_count: 1,
                lifetime: Duration::from_secs(60),
                next_hop: None,
            }),
            NOW,
        );
        assert!(a.neighbors().any(|n| n == Addr(2)));
        let purged = a.purge_node(Addr(2));
        assert!(purged >= 2, "route to 9 via 2 and route to 2 itself");
        assert!(a.routes().lookup(Addr(9)).is_none());
        assert!(!a.neighbors().any(|n| n == Addr(2)));
    }

    #[test]
    fn expanding_ring_starts_small_and_widens() {
        let mut a = Aodv::new(
            Addr(1),
            AodvConfig {
                expanding_ring: true,
                ..cfg()
            },
        );
        let first = rreq_from(&a.send_data(Addr(9), NOW));
        assert_eq!(first.ttl, 2, "TTL_START");
        // Walk time forward through the widening rings and record TTLs.
        let mut ttls = vec![first.ttl];
        let mut t = NOW;
        for _ in 0..600 {
            t += Duration::from_millis(50);
            for action in a.tick(t) {
                if let Action::Broadcast {
                    msg: Message::Rreq(r),
                } = action
                {
                    ttls.push(r.ttl);
                }
            }
            if ttls.last() == Some(&15) {
                break;
            }
        }
        assert!(
            ttls.windows(2).all(|w| w[0] < w[1]),
            "rings must strictly widen: {ttls:?}"
        );
        assert_eq!(*ttls.last().unwrap(), 15, "ends at NET_DIAMETER: {ttls:?}");
        // 2 → 4 → 6 → (past threshold 7) → 15.
        assert_eq!(ttls, vec![2, 4, 6, 15]);
    }

    #[test]
    fn expanding_ring_stops_when_destination_answers_early() {
        let mut src = Aodv::new(
            Addr(1),
            AodvConfig {
                expanding_ring: true,
                ..cfg()
            },
        );
        let mut dst = Aodv::new(Addr(2), cfg());
        let first = rreq_from(&src.send_data(Addr(2), NOW));
        let replies = dst.handle_message(Addr(1), Message::Rreq(first), NOW);
        let (_, rrep) = rrep_to(&replies);
        let done = src.handle_message(Addr(2), Message::Rrep(rrep), NOW);
        assert!(done.iter().any(
            |a| matches!(a, Action::Event(Event::RouteEstablished { dest, .. }) if *dest == Addr(2))
        ));
        // No further rings after success.
        let mut t = NOW;
        for _ in 0..100 {
            t += Duration::from_millis(50);
            for action in src.tick(t) {
                assert!(
                    !matches!(
                        action,
                        Action::Broadcast {
                            msg: Message::Rreq(_)
                        }
                    ),
                    "search must stop after the route is found"
                );
            }
        }
    }

    #[test]
    fn expanding_ring_still_fails_eventually() {
        let mut a = Aodv::new(
            Addr(1),
            AodvConfig {
                expanding_ring: true,
                ..cfg()
            },
        );
        let _ = a.send_data(Addr(9), NOW);
        let mut t = NOW;
        let mut failed = false;
        for _ in 0..4000 {
            t += Duration::from_millis(100);
            for action in a.tick(t) {
                if matches!(action, Action::Event(Event::DiscoveryFailed { .. })) {
                    failed = true;
                }
            }
            if failed {
                break;
            }
        }
        assert!(failed, "widening must not search forever");
    }

    #[test]
    fn set_addr_rebinds_identity() {
        let mut a = Aodv::new(Addr(1), cfg());
        a.set_addr(Addr(77));
        assert_eq!(a.addr(), Addr(77));
        let actions = a.send_data(Addr(9), NOW);
        assert_eq!(rreq_from(&actions).orig, Addr(77));
    }
}
