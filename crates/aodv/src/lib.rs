//! # blackdp-aodv — a sans-io AODV routing implementation
//!
//! The Ad hoc On-Demand Distance Vector protocol (RFC 3561 subset) is the
//! routing substrate the paper's black hole attack targets. This crate
//! implements it as a pure state machine: [`Aodv`] consumes messages, timer
//! ticks, and application send requests, and emits [`Action`]s (packets to
//! transmit, events to observe) for the host to execute. No I/O, no clocks,
//! no randomness — which makes every protocol rule unit-testable in
//! isolation and lets the simulator, the attackers, and BlackDP's RSU
//! probes all reuse the same message types.
//!
//! Implemented behaviour:
//!
//! * route discovery: RREQ flooding with per-originator id dedup, TTL,
//!   reverse-route installation, destination and intermediate (cached)
//!   RREPs, retries with binary exponential backoff;
//! * route maintenance: hello beaconing, neighbor-loss detection, lifetime
//!   expiry, RERR generation and propagation via precursor lists;
//! * data plane: hop-by-hop forwarding with TTL, buffering during
//!   discovery, lifetime refresh;
//! * the two BlackDP probe extensions from the paper: the
//!   [`next_hop_inquiry`](Rreq::next_hop_inquiry) RREQ flag and the
//!   [`next_hop`](Rrep::next_hop) RREP disclosure.
//!
//! # Examples
//!
//! ```
//! use blackdp_aodv::{Action, Addr, Aodv, AodvConfig, Event, Message};
//! use blackdp_sim::Time;
//!
//! let now = Time::ZERO;
//! let mut src = Aodv::new(Addr(1), AodvConfig::default());
//! let mut dst = Aodv::new(Addr(2), AodvConfig::default());
//!
//! // src floods an RREQ; dst replies; src establishes the route.
//! let rreq = src.send_data(Addr(2), now).into_iter().find_map(|a| match a {
//!     Action::Broadcast { msg } => Some(msg),
//!     _ => None,
//! }).expect("RREQ broadcast");
//! let rrep = dst.handle_message(Addr(1), rreq, now).into_iter().find_map(|a| match a {
//!     Action::SendTo { msg, .. } => Some(msg),
//!     _ => None,
//! }).expect("RREP unicast");
//! let done = src.handle_message(Addr(2), rrep, now);
//! assert!(done.iter().any(|a| matches!(
//!     a,
//!     Action::Event(Event::RouteEstablished { dest: Addr(2), .. })
//! )));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod machine;
mod msg;
mod table;

pub use config::AodvConfig;
pub use machine::{Action, Aodv, DropReason, Event};
pub use msg::{Addr, DataPacket, Hello, Message, Rerr, Rrep, Rreq, SeqNo};
pub use table::{seq_newer, RouteEntry, RouteState, RoutingTable};
