//! AODV wire messages (RFC 3561 subset, plus the BlackDP probe extensions).

use std::fmt;

use blackdp_sim::Duration;

/// A protocol-level address.
///
/// AODV routes between *identities*, not radios: in the BlackDP setting an
/// address is a vehicle's current pseudonymous identification, so it can
/// change on certificate renewal and can be fabricated (the RSU's
/// "disposable identity" probe does exactly that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A destination sequence number (route freshness, Section II-B).
pub type SeqNo = u32;

/// Route request, flooded during route discovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rreq {
    /// Per-originator discovery id; `(orig, rreq_id)` deduplicates floods.
    pub rreq_id: u64,
    /// The sought destination.
    pub dest: Addr,
    /// Last known destination sequence number, `None` when unknown
    /// (RFC 3561 "unknown sequence number" flag).
    pub dest_seq: Option<SeqNo>,
    /// The requesting node.
    pub orig: Addr,
    /// The originator's own sequence number.
    pub orig_seq: SeqNo,
    /// Hops travelled so far.
    pub hop_count: u8,
    /// Remaining time-to-live; the flood stops at zero.
    pub ttl: u8,
    /// BlackDP extension: ask the replier to disclose its next hop toward
    /// the destination (used by the RSU's second probe, `RREQ₂`).
    pub next_hop_inquiry: bool,
}

/// Route reply, unicast back along the reverse path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rrep {
    /// The destination the route leads to.
    pub dest: Addr,
    /// The destination sequence number backing the route's freshness.
    pub dest_seq: SeqNo,
    /// The node the reply is travelling back to.
    pub orig: Addr,
    /// Hops from the replier to the destination.
    pub hop_count: u8,
    /// How long the route may be considered valid.
    pub lifetime: Duration,
    /// BlackDP extension: the replier's next hop toward the destination,
    /// disclosed when the triggering RREQ set
    /// [`next_hop_inquiry`](Rreq::next_hop_inquiry). A cooperative attacker
    /// names its teammate here (Section III-B.3).
    pub next_hop: Option<Addr>,
}

/// Route error: a list of now-unreachable destinations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rerr {
    /// `(destination, incremented destination sequence number)` pairs.
    pub unreachable: Vec<(Addr, SeqNo)>,
}

/// Periodic local connectivity beacon (RFC 3561 Hello).
///
/// Distinct from BlackDP's end-to-end *secure Hello* probe, which lives in
/// the `blackdp` crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The beaconing node.
    pub orig: Addr,
    /// The beaconing node's current sequence number.
    pub seq: SeqNo,
}

/// An application data packet routed hop-by-hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataPacket {
    /// Source address.
    pub orig: Addr,
    /// Final destination address.
    pub dest: Addr,
    /// Source-assigned packet number, for delivery accounting.
    pub seq_no: u64,
    /// Remaining time-to-live.
    pub ttl: u8,
}

/// Any AODV message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Route request.
    Rreq(Rreq),
    /// Route reply.
    Rrep(Rrep),
    /// Route error.
    Rerr(Rerr),
    /// Connectivity beacon.
    Hello(Hello),
    /// Routed application data.
    Data(DataPacket),
}

impl Message {
    /// A short human-readable kind tag, for statistics keys.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Rreq(_) => "rreq",
            Message::Rrep(_) => "rrep",
            Message::Rerr(_) => "rerr",
            Message::Hello(_) => "hello",
            Message::Data(_) => "data",
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Message::Rreq(r) => write!(
                f,
                "RREQ#{} {}→{} seq={:?} hops={} ttl={}",
                r.rreq_id, r.orig, r.dest, r.dest_seq, r.hop_count, r.ttl
            ),
            Message::Rrep(r) => write!(
                f,
                "RREP {}→{} seq={} hops={}",
                r.dest, r.orig, r.dest_seq, r.hop_count
            ),
            Message::Rerr(r) => write!(f, "RERR {} destinations", r.unreachable.len()),
            Message::Hello(h) => write!(f, "HELLO from {}", h.orig),
            Message::Data(d) => write!(f, "DATA {}→{} #{}", d.orig, d.dest, d.seq_no),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_are_stable() {
        let rreq = Message::Rreq(Rreq {
            rreq_id: 1,
            dest: Addr(2),
            dest_seq: None,
            orig: Addr(1),
            orig_seq: 0,
            hop_count: 0,
            ttl: 10,
            next_hop_inquiry: false,
        });
        assert_eq!(rreq.kind(), "rreq");
        assert_eq!(
            Message::Hello(Hello {
                orig: Addr(1),
                seq: 0
            })
            .kind(),
            "hello"
        );
    }

    #[test]
    fn display_is_informative() {
        let msg = Message::Rrep(Rrep {
            dest: Addr(7),
            dest_seq: 75,
            orig: Addr(1),
            hop_count: 3,
            lifetime: Duration::from_secs(3),
            next_hop: None,
        });
        let s = msg.to_string();
        assert!(s.contains("RREP"));
        assert!(s.contains("75"));
    }
}
