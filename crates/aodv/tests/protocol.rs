//! Multi-instance AODV protocol tests: a tiny in-memory "harness" delivers
//! actions between instances so multi-hop behaviours (RERR cascades,
//! gratuitous cache replies, route refresh) can be exercised without the
//! full simulator.

use std::collections::VecDeque;

use blackdp_aodv::{Action, Addr, Aodv, AodvConfig, DropReason, Event, Message};
use blackdp_sim::{Duration, Time};

/// A line topology harness: node i can hear nodes i±1.
struct Line {
    nodes: Vec<Aodv>,
    /// Queue of (from_index, to_index, message).
    queue: VecDeque<(usize, usize, Message)>,
    events: Vec<(usize, Event)>,
    now: Time,
}

impl Line {
    fn new(n: usize) -> Self {
        let cfg = AodvConfig::default();
        Line {
            nodes: (0..n)
                .map(|i| Aodv::new(Addr(i as u64 + 1), cfg.clone()))
                .collect(),
            queue: VecDeque::new(),
            events: Vec::new(),
            now: Time::ZERO,
        }
    }

    fn addr(&self, i: usize) -> Addr {
        self.nodes[i].addr()
    }

    fn index_of(&self, addr: Addr) -> Option<usize> {
        self.nodes.iter().position(|n| n.addr() == addr)
    }

    fn neighbors(&self, i: usize) -> Vec<usize> {
        let mut v = Vec::new();
        if i > 0 {
            v.push(i - 1);
        }
        if i + 1 < self.nodes.len() {
            v.push(i + 1);
        }
        v
    }

    fn enqueue_actions(&mut self, from: usize, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Broadcast { msg } => {
                    for to in self.neighbors(from) {
                        self.queue.push_back((from, to, msg.clone()));
                    }
                }
                Action::SendTo { next_hop, msg } => {
                    if let Some(to) = self.index_of(next_hop) {
                        // Only deliver if actually adjacent (unicast over
                        // the line).
                        if self.neighbors(from).contains(&to) {
                            self.queue.push_back((from, to, msg));
                        }
                    }
                }
                Action::Event(e) => self.events.push((from, e)),
            }
        }
    }

    fn drain(&mut self) {
        let mut budget = 100_000;
        while let Some((from, to, msg)) = self.queue.pop_front() {
            budget -= 1;
            assert!(budget > 0, "message storm");
            let from_addr = self.addr(from);
            let actions = self.nodes[to].handle_message(from_addr, msg, self.now);
            self.enqueue_actions(to, actions);
        }
    }

    fn send_data(&mut self, from: usize, to: usize) {
        let dest = self.addr(to);
        let actions = self.nodes[from].send_data(dest, self.now);
        self.enqueue_actions(from, actions);
        self.drain();
    }

    fn tick_all(&mut self, advance: Duration) {
        self.now += advance;
        for i in 0..self.nodes.len() {
            let actions = self.nodes[i].tick(self.now);
            self.enqueue_actions(i, actions);
        }
        self.drain();
    }

    fn delivered_at(&self, i: usize) -> usize {
        self.events
            .iter()
            .filter(|(n, e)| *n == i && matches!(e, Event::DataDelivered(_)))
            .count()
    }
}

#[test]
fn five_hop_line_delivers_end_to_end() {
    let mut line = Line::new(6);
    line.send_data(0, 5);
    assert_eq!(line.delivered_at(5), 1, "events: {:?}", line.events);
    // Forward route installed at the source with the destination's seq.
    let route = line.nodes[0]
        .routes()
        .lookup_usable(Addr(6), line.now)
        .expect("route installed");
    assert_eq!(route.hop_count, 5);
}

#[test]
fn reverse_route_enables_immediate_reply_traffic() {
    let mut line = Line::new(4);
    line.send_data(0, 3);
    assert_eq!(line.delivered_at(3), 1);
    // The destination answers without a new discovery: the reverse route
    // was installed by the flood.
    let before = line
        .events
        .iter()
        .filter(|(_, e)| matches!(e, Event::RouteEstablished { .. }))
        .count();
    line.send_data(3, 0);
    assert_eq!(line.delivered_at(0), 1);
    let after = line
        .events
        .iter()
        .filter(|(_, e)| matches!(e, Event::RouteEstablished { .. }))
        .count();
    assert_eq!(before, after, "no new discovery was needed");
}

#[test]
fn intermediate_answers_from_cache_on_second_discovery() {
    let mut line = Line::new(5);
    line.send_data(0, 4); // everyone on the path learns a route to 5
                          // A different node (1) now asks for the same destination: node 2 (its
                          // neighbor with a cached route) may answer directly.
    line.send_data(1, 4);
    assert_eq!(line.delivered_at(4), 2);
}

#[test]
fn cache_reply_count_is_bounded_by_dedup() {
    let mut line = Line::new(6);
    line.send_data(0, 5);
    let rrep_events = line
        .events
        .iter()
        .filter(|(n, e)| *n == 0 && matches!(e, Event::RrepReceived { .. }))
        .count();
    // The source saw at least one RREP but not an explosion (dedup caps
    // flood amplification).
    assert!(rrep_events >= 1);
    assert!(rrep_events <= 3, "got {rrep_events} RREPs");
}

#[test]
fn hello_silence_breaks_links_and_rerr_reaches_the_source() {
    let mut line = Line::new(4);
    line.send_data(0, 3);
    assert_eq!(line.delivered_at(3), 1);

    // Beacon a few rounds so neighbor tables are warm.
    for _ in 0..3 {
        line.tick_all(Duration::from_secs(1));
    }
    // Node 3 vanishes: remove it from the topology by replacing it with a
    // fresh instance that never speaks (simplest "gone" model: we stop
    // delivering to/from index 3 by draining its queue activity — here we
    // simply stop ticking it and let its neighbors time out).
    let silent = 3usize;
    for _ in 0..4 {
        line.now += Duration::from_secs(1);
        for i in 0..line.nodes.len() {
            if i == silent {
                continue; // it no longer beacons
            }
            let actions = line.nodes[i].tick(line.now);
            // Drop anything addressed to the vanished node.
            let filtered: Vec<Action> = actions
                .into_iter()
                .filter(|a| !matches!(a, Action::SendTo { next_hop, .. } if *next_hop == Addr(4)))
                .collect();
            line.enqueue_actions(i, filtered);
        }
        // Also drop queued deliveries to the silent node.
        line.queue.retain(|(_, to, _)| *to != silent);
        line.drain();
    }
    // Node 2 must have declared the link broken…
    assert!(
        line.events
            .iter()
            .any(|(n, e)| *n == 2
                && matches!(e, Event::LinkBroken { neighbor } if *neighbor == Addr(4))),
        "no link-break at node 2: {:?}",
        line.events
    );
    // …and the source's route to 4 must be gone.
    assert!(
        line.nodes[0]
            .routes()
            .lookup_usable(Addr(4), line.now)
            .is_none(),
        "stale route survived at the source"
    );
}

#[test]
fn data_to_unreachable_destination_fails_cleanly() {
    let mut line = Line::new(3);
    // Destination address that nobody owns.
    let phantom = Addr(999);
    let actions = line.nodes[0].send_data(phantom, line.now);
    line.enqueue_actions(0, actions);
    line.drain();
    // Walk time forward until the discovery exhausts its retries.
    for _ in 0..200 {
        line.tick_all(Duration::from_millis(200));
    }
    assert!(
        line.events.iter().any(|(n, e)| *n == 0
            && matches!(
                e,
                Event::DataDropped {
                    reason: DropReason::NoRoute,
                    ..
                }
            )),
        "the buffered packet must be dropped with NoRoute: {:?}",
        line.events
            .iter()
            .filter(|(n, _)| *n == 0)
            .collect::<Vec<_>>()
    );
}

#[test]
fn duplicate_data_packets_each_get_forwarded() {
    let mut line = Line::new(3);
    line.send_data(0, 2);
    line.send_data(0, 2);
    line.send_data(0, 2);
    assert_eq!(line.delivered_at(2), 3);
}
