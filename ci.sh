#!/usr/bin/env sh
# One-command CI gate: build, full test suite, then the two release-mode
# shape gates (paper figures + fault-recovery). Each gate exits non-zero
# on violation, so `./ci.sh` failing means a real regression.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
# The vendored offline stand-ins (crates/rand, crates/proptest,
# crates/criterion) are workspace members and held to the same bar.
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> paper shape gate (validate_shapes quick)"
cargo run --release -p blackdp-bench --bin validate_shapes -- quick

echo "==> fault-recovery gate (faults quick)"
cargo run --release -p blackdp-bench --bin faults -- quick

echo "==> perf regression gate (perf smoke)"
# Covers the PR-2 hot paths plus the PR-7 raw-speed track: batch Schnorr
# verification, multi-lane SHA-256, and the zero-allocs-per-event probe.
cargo run --release -p blackdp-bench --bin perf -- smoke
for bench in results/BENCH_pr2.json results/BENCH_pr7.json; do
    if [ ! -f "$bench" ]; then
        echo "ci.sh: $bench missing after perf run" >&2
        exit 1
    fi
done

echo "==> shard scaling gate (scale smoke)"
# N = 100,000 events/s vs shard count: the sharded backend must land on
# the serial oracle's exact EngineStamp/Stats witnesses, beat it by ≥ 3x
# (rebuild avoidance is algorithmic — it must hold on one core), keep a
# non-collapsing scaling curve, and push cross-band sealed envelopes
# through batch-width boundary audits with zero failures.
cargo run --release -p blackdp-bench --bin scale -- smoke
if [ ! -f results/BENCH_pr8.json ]; then
    echo "ci.sh: results/BENCH_pr8.json missing after scale run" >&2
    exit 1
fi

echo "==> windowed executor gate (exec smoke)"
# PR-10: the conservative-window parallel executor at N = 100,000 must be
# bit-identical to the serial executor (EngineStamp + Stats digest),
# beat the PR-8 serial-dispatch baseline by ≥ 2x on event-execution
# throughput via window-boundary batch verification, and push mean
# VerifyQueue flush width strictly past the PR-7 in-sim ceiling of 2.
cargo run --release -p blackdp-bench --bin exec -- smoke
if [ ! -f results/BENCH_pr10.json ]; then
    echo "ci.sh: results/BENCH_pr10.json missing after exec run" >&2
    exit 1
fi

echo "==> bench trend summary"
# Read-only roll-up of every results/BENCH_pr*.json into one table.
cargo run --release -p blackdp-bench --bin trend

echo "==> fuzz / trace-oracle gate (fuzz smoke)"
cargo run --release -p blackdp-bench --bin fuzz -- smoke

echo "==> windowed-executor determinism gate (fuzz smoke, windowed x 8 threads)"
# Reruns the golden-trace replay and corpus under the parallel executor
# forced on: replays compare byte-for-byte against goldens recorded with
# the serial executor, so any thread-count-induced divergence fails here.
# (On hosts with fewer cores the lane count clamps down with a warning;
# the windowed stage/commit path is exercised either way.)
BLACKDP_EXECUTOR=windowed BLACKDP_THREADS=8 \
    cargo run --release -p blackdp-bench --bin fuzz -- smoke

echo "==> crash-resume gate (sweepd smoke)"
# SIGKILLs every worker once mid-batch, then the orchestrator itself
# mid-campaign, and requires the resumed merged output to be
# byte-identical to the uninterrupted serial oracle.
cargo run --release -p blackdp-bench --bin sweepd -- smoke

echo "==> windowed-executor crash-resume gate (sweepd smoke, windowed x 8 threads)"
# One checkpoint/kill/resume round under the parallel executor: the
# resumed merged output must stay byte-identical to the serial oracle.
BLACKDP_EXECUTOR=windowed BLACKDP_THREADS=8 \
    cargo run --release -p blackdp-bench --bin sweepd -- smoke

echo "==> live testbed gate (testbed smoke)"
# Eight real `blackdpd` processes on loopback UDP — TA, RSU, five honest
# vehicles, one black-hole attacker — provisioned over live enrollment
# and run end-to-end at 10x compressed wall time. Fails unless the
# attacker is confirmed, its certificate revoked, AND the canonical
# verdicts match a discrete-event simulator run of the same scenario
# through the trace oracle.
cargo run --release -p blackdp-daemon --bin testbed -- smoke

echo "==> ci.sh: all gates passed"
